"""Sharded parallel execution of run plans on worker sessions.

:func:`run_plan_parallel` splits an expanded :class:`~repro.api.plan.RunPlan`
into shards, runs each shard in its own worker -- a process by default,
threads for in-memory debugging -- and merges the results back into a
:class:`~repro.api.plan.ParallelPlanResult` in plan order. Each worker
owns a fresh :class:`~repro.api.session.SimulationSession` whose seed is
derived deterministically from the plan seed and shard index
(:func:`~repro.api.session.derive_worker_seed`), and whose private
:class:`~repro.engine.cache.CacheSet` gives the shard the same
memoization semantics a serial run has -- just scoped to the shard.

**Determinism contract.** For the same plan and seed, a parallel run
produces experiment results bit-identical to ``run_plan`` on one
session: registered experiments are pure functions of their parameters
(none consumes session RNG), and memoization only skips recomputation
of values that are equal by construction. What legitimately differs is
the cache *attribution* -- a worker cannot reuse an entry another shard
computed -- which is why :class:`~repro.api.plan.ParallelPlanResult`
reports per-shard counters instead of pretending the plan ran on one
cache set. See :class:`~repro.api.plan.PlanResult` for the invariants
that do survive sharding.

**Fault tolerance.** Execution is *supervised*: each shard attempt is
bounded by an optional per-shard ``timeout_s``, failed / crashed /
timed-out shards are retried up to ``max_shard_retries`` times (a
broken process pool is rebuilt first; persistent breakage degrades
process -> thread -> inline), a repeatedly failing multi-scenario
shard is split into single-scenario units to isolate the poison
scenario, and with ``raise_on_failure=False`` completed shards are
salvaged into a partial result carrying typed
:class:`~repro.api.plan.ShardFailure` records. Retries reuse the
shard's derived seed, so a recovered run is still bit-identical to a
serial one; what changes under retries is only *reporting* -- a split
shard contributes one :class:`~repro.api.plan.ShardReport` per
surviving unit (same shard index), and cache attribution reflects the
sessions that actually ran. Failure paths are deterministically
testable through :mod:`repro.testing.faults`, which workers consult
before every scenario.

Shard strategies (``shard_by``):

* ``"round-robin"`` -- scenario *i* goes to shard ``i % workers``;
  the default, even and oblivious.
* ``"by-experiment"`` -- scenarios of one experiment id stay on one
  shard (maximising intra-shard cache reuse for sweeps), groups
  balanced across shards by total cost hint.
* ``"by-cost"`` -- longest-processing-time greedy packing on the
  registry's per-experiment cost hints
  (:func:`~repro.experiments.registry.experiment_cost`), for plans
  mixing cheap figure sweeps with expensive ablations.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import ConfigurationError, ReproError
from ..experiments.registry import experiment_cost
from ..testing.faults import maybe_inject
from .plan import (
    ParallelPlanResult,
    RunPlan,
    ScenarioResult,
    ShardFailure,
    ShardReport,
    merge_shard_results,
    run_scenario,
)
from .scenario import Scenario
from .session import SimulationSession, derive_worker_seed

#: The shard strategies :func:`shard_plan` understands.
SHARD_STRATEGIES = ("round-robin", "by-experiment", "by-cost")

#: The worker pool kinds :func:`run_plan_parallel` understands.
EXECUTOR_KINDS = ("process", "thread")

#: Consecutive pool breakages tolerated before the supervisor degrades
#: to the next executor mode (process -> thread -> inline).
POOL_BREAKS_BEFORE_DEGRADE = 2


class ShardExecutionError(ReproError):
    """A shard exhausted its retry budget under ``raise_on_failure=True``.

    Carries the :class:`~repro.api.plan.ShardFailure` record as
    ``failure`` (shard index, failed scenario ids, attempts, cause) and
    chains the final underlying worker exception as ``__cause__``.
    Configuration errors are *not* wrapped in this type -- they re-raise
    as :class:`~repro.errors.ConfigurationError` with the same shard
    context, since no amount of retrying fixes a bad plan.
    """

    def __init__(
        self, message: str, failure: "ShardFailure | None" = None
    ) -> None:
        super().__init__(message)
        self.failure = failure


@dataclass(frozen=True)
class Shard:
    """One worker's slice of an expanded plan.

    Attributes
    ----------
    index:
        Shard number (0-based); also the spawn key of the worker
        session's derived seed.
    items:
        ``(position, scenario)`` pairs, where ``position`` is the
        scenario's index in ``plan.expanded()`` -- kept so the merge
        can restore plan order.
    """

    index: int
    items: "tuple[tuple[int, Scenario], ...]"

    @property
    def cost(self) -> float:
        """Total registry cost hint of the shard's scenarios."""
        return sum(scenario_cost(s) for _, s in self.items)


def scenario_cost(scenario: Scenario) -> float:
    """The cost estimate of one concrete scenario.

    Currently the registry's per-experiment hint
    (:func:`~repro.experiments.registry.experiment_cost`); override
    granularity (e.g. scaling with ``n_points``) can refine this later
    without touching the shard strategies.
    """
    return experiment_cost(scenario.experiment_id)


def shard_plan(
    plan: RunPlan, workers: int, shard_by: str = "round-robin"
) -> "tuple[Shard, ...]":
    """Partition a plan's expanded scenarios into at most ``workers`` shards.

    Every expanded scenario lands in exactly one shard; empty shards
    are dropped, so fewer than ``workers`` shards come back when the
    plan is small (or ``by-experiment`` has fewer experiment ids than
    workers). Shard indices are contiguous from 0 and the partition is
    a pure function of ``(plan, workers, shard_by)`` -- no randomness,
    so a re-run shards (and therefore seeds workers) identically.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if shard_by not in SHARD_STRATEGIES:
        known = ", ".join(SHARD_STRATEGIES)
        raise ConfigurationError(
            f"unknown shard strategy {shard_by!r}; available: {known}"
        )
    indexed = list(enumerate(plan.expanded()))
    buckets: "list[list[tuple[int, Scenario]]]" = [[] for _ in range(workers)]

    if shard_by == "round-robin":
        for position, scenario in indexed:
            buckets[position % workers].append((position, scenario))
    elif shard_by == "by-experiment":
        groups: "dict[str, list[tuple[int, Scenario]]]" = {}
        for position, scenario in indexed:
            groups.setdefault(scenario.experiment_id, []).append(
                (position, scenario)
            )
        # Heaviest group first onto the lightest bucket (LPT on groups);
        # ties broken by first appearance to stay deterministic.
        order = sorted(
            groups,
            key=lambda k: (-sum(scenario_cost(s) for _, s in groups[k]),
                           groups[k][0][0]),
        )
        loads = [0.0] * workers
        for key in order:
            target = loads.index(min(loads))
            buckets[target].extend(groups[key])
            loads[target] += sum(scenario_cost(s) for _, s in groups[key])
        for bucket in buckets:
            bucket.sort()  # a bucket holding several groups: plan order
    else:  # by-cost: LPT greedy on per-scenario hints
        order = sorted(
            indexed, key=lambda pair: (-scenario_cost(pair[1]), pair[0])
        )
        loads = [0.0] * workers
        for position, scenario in order:
            target = loads.index(min(loads))
            buckets[target].append((position, scenario))
            loads[target] += scenario_cost(scenario)
        for bucket in buckets:
            bucket.sort()  # run each shard's scenarios in plan order

    shards = []
    for bucket in buckets:
        if bucket:
            shards.append(Shard(index=len(shards), items=tuple(bucket)))
    return tuple(shards)


def run_shard(
    shard: Shard,
    seed: int = 0,
    defaults: "Mapping[str, Any] | None" = None,
    attempt: int = 0,
    allow_crash: bool = False,
) -> "tuple[ShardReport, tuple[tuple[int, ScenarioResult], ...]]":
    """Execute one shard on a fresh worker session; the worker entry point.

    Builds a :class:`~repro.api.session.SimulationSession` seeded with
    :func:`~repro.api.session.derive_worker_seed`, runs the shard's
    scenarios in order through :func:`~repro.api.plan.run_scenario`,
    and returns the shard report plus position-tagged results. Module
    level and fully picklable, so it runs unchanged on a process pool,
    a thread pool, or inline.

    Before each scenario the worker consults the fault injector
    (:func:`repro.testing.faults.maybe_inject`) with its coordinates --
    a no-op unless the chaos harness installed specs in the
    environment. ``attempt`` is the supervisor's retry counter for
    this unit (so faults can target one attempt exactly);
    ``allow_crash`` is ``True`` only on process-pool workers, where an
    injected ``crash`` may genuinely ``os._exit``.
    """
    session = SimulationSession(
        seed=derive_worker_seed(seed, shard.index), defaults=defaults
    )
    start = time.perf_counter()
    results = []
    for offset, (position, scenario) in enumerate(shard.items):
        maybe_inject(
            shard.index,
            attempt,
            position,
            first_position=(offset == 0),
            allow_crash=allow_crash,
        )
        results.append((position, run_scenario(session, scenario)))
    elapsed = time.perf_counter() - start
    report = ShardReport(
        index=shard.index,
        positions=tuple(position for position, _ in shard.items),
        seed=session.seed,
        elapsed_s=elapsed,
        cache_stats=session.cache_stats(),
    )
    return report, tuple(results)


@dataclass
class _Unit:
    """A shard (or split sub-shard) the supervisor is tracking.

    Attempts accumulate across retries; a unit split off a failing
    shard inherits the parent's attempt count (and shard index, hence
    derived seed), so the overall retry budget is bounded.
    """

    shard: Shard
    attempts: int = 0
    elapsed_s: float = 0.0
    started: float = 0.0


class _ShardSupervisor:
    """Drives shard units to completion with retries and deadlines.

    The supervision policy (see :func:`run_plan_parallel` for the
    user-facing contract):

    * Units run on a pool of the current *mode* -- ``process``,
      ``thread``, or ``inline`` -- starting at the requested executor
      kind.
    * Completion is collected in completion order
      (``concurrent.futures.wait``), not submission order, so one slow
      shard never delays failure handling for the others.
    * A failed attempt (worker exception, ``BrokenProcessPool`` crash,
      or per-shard deadline expiry) is retried until the unit has
      failed ``max_shard_retries + 1`` times, except
      :class:`~repro.errors.ConfigurationError`, which no retry can
      fix and fails fast.
    * On its last retry, a multi-scenario unit is (optionally) split
      into single-scenario units so one poison scenario cannot take
      its shard-mates down with it.
    * A broken pool is rebuilt; ``POOL_BREAKS_BEFORE_DEGRADE``
      consecutive breakages degrade the mode
      (process -> thread -> inline).
    * A timed-out unit's pool is *tainted* (its worker may still be
      wedged): no new work is submitted to it, and once its remaining
      futures settle it is abandoned -- worker processes terminated --
      and a fresh pool takes over. Inline execution enforces no
      deadline (there is nothing to abandon the work to).
    * Exhausted units either raise (``raise_on_failure=True``;
      outstanding futures are cancelled and the pool abandoned) or are
      recorded as :class:`~repro.api.plan.ShardFailure` for a partial
      merge.
    """

    def __init__(
        self,
        shards: "tuple[Shard, ...]",
        *,
        seed: int,
        defaults: "Mapping[str, Any] | None",
        modes: "tuple[str, ...]",
        timeout_s: "float | None",
        max_shard_retries: int,
        raise_on_failure: bool,
        split_failed_shards: bool,
    ) -> None:
        self.shards = shards
        self.seed = seed
        self.defaults = defaults
        self.modes = modes
        self.timeout_s = timeout_s
        self.max_shard_retries = max_shard_retries
        self.raise_on_failure = raise_on_failure
        self.split_failed_shards = split_failed_shards
        self.max_pool_size = max(1, len(shards))
        self._mode_index = 0
        self._breaks = 0
        self._tainted = False
        self._pool: "ProcessPoolExecutor | ThreadPoolExecutor | None" = None
        self._inflight: "dict[Future, _Unit]" = {}
        self._deadlines: "dict[Future, float]" = {}

    # ----- public entry --------------------------------------------------

    def run(self):
        """Run every shard; returns ``(outputs, failures)`` tuples."""
        outputs: "list" = []
        failures: "list[ShardFailure]" = []
        queue = deque(_Unit(shard=shard) for shard in self.shards)
        try:
            self._drive(queue, outputs, failures)
        finally:
            terminate = bool(self._inflight) or self._tainted
            for future in list(self._inflight):
                future.cancel()
            self._inflight.clear()
            self._deadlines.clear()
            self._abandon_pool(terminate=terminate)
        return tuple(outputs), tuple(failures)

    # ----- supervision loop ----------------------------------------------

    def _mode(self) -> str:
        return self.modes[self._mode_index]

    def _drive(self, queue, outputs, failures) -> None:
        while queue or self._inflight:
            if not self._inflight and self._should_degrade():
                self._degrade()
            if self._mode() == "inline" and not self._inflight:
                self._abandon_pool(terminate=self._tainted)
                self._run_inline(queue.popleft(), queue, outputs, failures)
                continue
            if queue and not self._tainted and self._mode() != "inline":
                self._submit_ready(queue)
            if not self._inflight:
                # A tainted (or just-broken) pool with nothing left
                # running: abandon it and rebuild on the next pass.
                self._abandon_pool(terminate=self._tainted)
                continue
            self._collect(queue, outputs, failures)

    def _should_degrade(self) -> bool:
        return (
            self._breaks >= POOL_BREAKS_BEFORE_DEGRADE
            and self._mode_index < len(self.modes) - 1
        )

    def _degrade(self) -> None:
        self._abandon_pool(terminate=True)
        self._mode_index += 1
        self._breaks = 0

    def _ensure_pool(self, pending_count: int):
        if self._pool is None:
            size = max(1, min(pending_count, self.max_pool_size))
            pool_cls = (
                ProcessPoolExecutor
                if self._mode() == "process"
                else ThreadPoolExecutor
            )
            self._pool = pool_cls(max_workers=size)
        return self._pool

    def _submit_ready(self, queue) -> None:
        pool = self._ensure_pool(len(queue))
        while queue:
            unit = queue.popleft()
            unit.started = time.perf_counter()
            try:
                future = pool.submit(
                    run_shard,
                    unit.shard,
                    self.seed,
                    self.defaults,
                    unit.attempts,
                    self._mode() == "process",
                )
            except Exception:
                # The pool broke between waves; requeue and let the
                # next pass drain survivors and rebuild.
                unit.started = 0.0
                queue.appendleft(unit)
                self._breaks += 1
                self._tainted = True
                return
            self._inflight[future] = unit
            if self.timeout_s is not None:
                self._deadlines[future] = unit.started + self.timeout_s

    def _collect(self, queue, outputs, failures) -> None:
        tick = None
        if self._deadlines:
            now = time.perf_counter()
            tick = max(0.0, min(self._deadlines.values()) - now) + 0.01
        done, _ = wait(
            list(self._inflight), timeout=tick, return_when=FIRST_COMPLETED
        )
        broke = False
        for future in done:
            unit = self._inflight.pop(future)
            self._deadlines.pop(future, None)
            try:
                outputs.append(future.result())
                self._breaks = 0
            except (BrokenExecutor, CancelledError) as exc:
                broke = True
                self._attempt_failed(unit, "crash", exc, queue, failures)
            except Exception as exc:
                self._attempt_failed(unit, "error", exc, queue, failures)
        if broke:
            self._breaks += 1
            self._drain_broken(queue, outputs, failures)
            self._abandon_pool(terminate=True)
            return
        self._expire_deadlines(queue, failures)

    def _drain_broken(self, queue, outputs, failures) -> None:
        # A broken pool settles every outstanding future promptly;
        # salvage the ones that finished before the break, fail the
        # rest as crashes so they retry on the rebuilt pool.
        for future in list(self._inflight):
            unit = self._inflight.pop(future)
            self._deadlines.pop(future, None)
            try:
                outputs.append(future.result(timeout=30.0))
            except (
                BrokenExecutor,
                CancelledError,
                FuturesTimeoutError,
            ) as exc:
                self._attempt_failed(unit, "crash", exc, queue, failures)
            except Exception as exc:
                self._attempt_failed(unit, "error", exc, queue, failures)

    def _expire_deadlines(self, queue, failures) -> None:
        if not self._deadlines:
            return
        now = time.perf_counter()
        for future, deadline in list(self._deadlines.items()):
            if now < deadline:
                continue
            unit = self._inflight.pop(future)
            self._deadlines.pop(future)
            if not future.cancel():
                # Already running: the worker may be wedged, so stop
                # feeding this pool and replace it once it drains.
                self._tainted = True
            exc = FuturesTimeoutError(
                f"shard exceeded the {self.timeout_s}s per-shard deadline"
            )
            self._attempt_failed(unit, "timeout", exc, queue, failures)

    def _run_inline(self, unit, queue, outputs, failures) -> None:
        unit.started = time.perf_counter()
        try:
            outputs.append(
                run_shard(
                    unit.shard, self.seed, self.defaults, unit.attempts, False
                )
            )
        except Exception as exc:
            self._attempt_failed(unit, "error", exc, queue, failures)

    # ----- failure policy -------------------------------------------------

    def _attempt_failed(self, unit, cause, exc, queue, failures) -> None:
        unit.attempts += 1
        if unit.started:
            unit.elapsed_s += max(0.0, time.perf_counter() - unit.started)
            unit.started = 0.0
        retryable = not isinstance(exc, ConfigurationError)
        if retryable and unit.attempts <= self.max_shard_retries:
            if (
                self.split_failed_shards
                and len(unit.shard.items) > 1
                and unit.attempts >= self.max_shard_retries
            ):
                # Last chance: isolate the poison scenario by retrying
                # every scenario as its own single-item unit.
                for item in unit.shard.items:
                    queue.append(
                        _Unit(
                            shard=Shard(
                                index=unit.shard.index, items=(item,)
                            ),
                            attempts=unit.attempts,
                        )
                    )
            else:
                queue.append(unit)
            return

        failure = ShardFailure(
            index=unit.shard.index,
            positions=tuple(p for p, _ in unit.shard.items),
            scenario_ids=tuple(s.name for _, s in unit.shard.items),
            attempts=unit.attempts,
            cause=cause,
            message=f"{type(exc).__name__}: {exc}",
            elapsed_s=unit.elapsed_s,
        )
        if not self.raise_on_failure:
            failures.append(failure)
            return
        experiments = sorted({s.experiment_id for _, s in unit.shard.items})
        detail = (
            f"shard {unit.shard.index} failed ({cause}) after "
            f"{unit.attempts} attempt(s); experiments {experiments}; "
            f"scenarios {list(failure.scenario_ids)}: {exc}"
        )
        if isinstance(exc, ConfigurationError):
            raise ConfigurationError(detail) from exc
        raise ShardExecutionError(detail, failure=failure) from exc

    # ----- pool lifecycle -------------------------------------------------

    def _abandon_pool(self, terminate: bool = False) -> None:
        pool, self._pool = self._pool, None
        self._tainted = False
        if pool is None:
            return
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        if terminate:
            # Hung or crashed workers would otherwise linger (and a
            # wedged process pool would block interpreter exit); the
            # process handles are a private attribute, so guard it.
            processes = getattr(pool, "_processes", None)
            if processes:
                for proc in list(processes.values()):
                    try:
                        proc.terminate()
                    except Exception:
                        pass


def run_plan_parallel(
    plan: RunPlan,
    *,
    workers: "int | None" = None,
    shard_by: str = "round-robin",
    seed: int = 0,
    defaults: "Mapping[str, Any] | None" = None,
    executor: str = "process",
    timeout_s: "float | None" = None,
    max_shard_retries: int = 2,
    raise_on_failure: bool = True,
    split_failed_shards: bool = True,
) -> ParallelPlanResult:
    """Run every scenario of a plan across supervised worker shards.

    The plan is expanded, split by :func:`shard_plan`, executed one
    shard per worker (``executor="process"`` by default;
    ``executor="thread"`` keeps everything in-process for debugging --
    the ContextVar-scoped cache activation keeps worker sessions
    isolated either way), and merged back in plan order by
    :func:`~repro.api.plan.merge_shard_results`.

    ``workers`` defaults to 4; empty shards are dropped, so a plan
    smaller than the worker count naturally uses fewer workers (and no
    process is forked per scenario on large plans) -- pass ``workers``
    explicitly for real sweeps. A single shard with no deadline runs
    inline with no pool at all, so ``workers=1`` is a cheap way to get
    serial execution with parallel-run reporting.

    **Supervision.** Shards are driven by a supervisor rather than a
    bare result loop: completions are collected in completion order; a
    failed, crashed (``BrokenProcessPool``), or timed-out shard is
    retried -- on a rebuilt pool when the old one broke -- until it has
    failed ``max_shard_retries + 1`` times; on the last retry a
    multi-scenario shard is split into single-scenario units (disable
    with ``split_failed_shards=False``) to isolate a poison scenario;
    and persistent pool breakage degrades the executor mode
    process -> thread -> inline. Because a worker session's seed
    depends only on the plan seed and shard index, a retried or split
    unit recomputes results bit-identical to the failed attempt's
    intent -- supervision never changes values, only who computes them.

    ``timeout_s`` bounds each shard attempt's wall clock. A pool whose
    worker blew the deadline is quarantined (its processes terminated
    once drained) and the shard retries on a fresh pool; thread
    workers cannot be killed, so a hung thread lingers until it
    returns, and inline execution enforces no deadline at all.

    With ``raise_on_failure=True`` (default, today's contract) the
    first exhausted shard raises: :class:`ShardExecutionError` -- shard
    index, experiment ids, scenario ids, attempts, cause, with the
    final worker error chained -- or :class:`ConfigurationError` with
    the same context (and no retries) when the underlying error is one.
    Outstanding futures are cancelled. With ``raise_on_failure=False``
    the run always returns, possibly partial: completed scenarios are
    salvaged into ``scenario_results`` and every exhausted unit is a
    typed :class:`~repro.api.plan.ShardFailure` in ``failures``.
    """
    if executor not in EXECUTOR_KINDS:
        known = ", ".join(EXECUTOR_KINDS)
        raise ConfigurationError(
            f"unknown executor {executor!r}; available: {known}"
        )
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigurationError(
            f"timeout_s must be positive, got {timeout_s}"
        )
    if max_shard_retries < 0:
        raise ConfigurationError(
            f"max_shard_retries must be >= 0, got {max_shard_retries}"
        )
    if workers is None:
        workers = 4
    shards = shard_plan(plan, workers, shard_by)

    if len(shards) == 1 and timeout_s is None:
        modes: "tuple[str, ...]" = ("inline",)
    elif executor == "process":
        modes = ("process", "thread", "inline")
    else:
        modes = ("thread", "inline")

    supervisor = _ShardSupervisor(
        shards,
        seed=seed,
        defaults=defaults,
        modes=modes,
        timeout_s=timeout_s,
        max_shard_retries=max_shard_retries,
        raise_on_failure=raise_on_failure,
        split_failed_shards=split_failed_shards,
    )
    outputs, failures = supervisor.run()
    return merge_shard_results(plan, outputs, failures=failures)
