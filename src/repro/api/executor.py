"""Sharded parallel execution of run plans on worker sessions.

:func:`run_plan_parallel` splits an expanded :class:`~repro.api.plan.RunPlan`
into shards, runs each shard in its own worker -- a process by default,
threads for in-memory debugging -- and merges the results back into a
:class:`~repro.api.plan.ParallelPlanResult` in plan order. Each worker
owns a fresh :class:`~repro.api.session.SimulationSession` whose seed is
derived deterministically from the plan seed and shard index
(:func:`~repro.api.session.derive_worker_seed`), and whose private
:class:`~repro.engine.cache.CacheSet` gives the shard the same
memoization semantics a serial run has -- just scoped to the shard.

**Determinism contract.** For the same plan and seed, a parallel run
produces experiment results bit-identical to ``run_plan`` on one
session: registered experiments are pure functions of their parameters
(none consumes session RNG), and memoization only skips recomputation
of values that are equal by construction. What legitimately differs is
the cache *attribution* -- a worker cannot reuse an entry another shard
computed -- which is why :class:`~repro.api.plan.ParallelPlanResult`
reports per-shard counters instead of pretending the plan ran on one
cache set. See :class:`~repro.api.plan.PlanResult` for the invariants
that do survive sharding.

Shard strategies (``shard_by``):

* ``"round-robin"`` -- scenario *i* goes to shard ``i % workers``;
  the default, even and oblivious.
* ``"by-experiment"`` -- scenarios of one experiment id stay on one
  shard (maximising intra-shard cache reuse for sweeps), groups
  balanced across shards by total cost hint.
* ``"by-cost"`` -- longest-processing-time greedy packing on the
  registry's per-experiment cost hints
  (:func:`~repro.experiments.registry.experiment_cost`), for plans
  mixing cheap figure sweeps with expensive ablations.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import ConfigurationError
from ..experiments.registry import experiment_cost
from .plan import (
    ParallelPlanResult,
    RunPlan,
    ScenarioResult,
    ShardReport,
    merge_shard_results,
    run_scenario,
)
from .scenario import Scenario
from .session import SimulationSession, derive_worker_seed

#: The shard strategies :func:`shard_plan` understands.
SHARD_STRATEGIES = ("round-robin", "by-experiment", "by-cost")

#: The worker pool kinds :func:`run_plan_parallel` understands.
EXECUTOR_KINDS = ("process", "thread")


@dataclass(frozen=True)
class Shard:
    """One worker's slice of an expanded plan.

    Attributes
    ----------
    index:
        Shard number (0-based); also the spawn key of the worker
        session's derived seed.
    items:
        ``(position, scenario)`` pairs, where ``position`` is the
        scenario's index in ``plan.expanded()`` -- kept so the merge
        can restore plan order.
    """

    index: int
    items: "tuple[tuple[int, Scenario], ...]"

    @property
    def cost(self) -> float:
        """Total registry cost hint of the shard's scenarios."""
        return sum(scenario_cost(s) for _, s in self.items)


def scenario_cost(scenario: Scenario) -> float:
    """The cost estimate of one concrete scenario.

    Currently the registry's per-experiment hint
    (:func:`~repro.experiments.registry.experiment_cost`); override
    granularity (e.g. scaling with ``n_points``) can refine this later
    without touching the shard strategies.
    """
    return experiment_cost(scenario.experiment_id)


def shard_plan(
    plan: RunPlan, workers: int, shard_by: str = "round-robin"
) -> "tuple[Shard, ...]":
    """Partition a plan's expanded scenarios into at most ``workers`` shards.

    Every expanded scenario lands in exactly one shard; empty shards
    are dropped, so fewer than ``workers`` shards come back when the
    plan is small (or ``by-experiment`` has fewer experiment ids than
    workers). Shard indices are contiguous from 0 and the partition is
    a pure function of ``(plan, workers, shard_by)`` -- no randomness,
    so a re-run shards (and therefore seeds workers) identically.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if shard_by not in SHARD_STRATEGIES:
        known = ", ".join(SHARD_STRATEGIES)
        raise ConfigurationError(
            f"unknown shard strategy {shard_by!r}; available: {known}"
        )
    indexed = list(enumerate(plan.expanded()))
    buckets: "list[list[tuple[int, Scenario]]]" = [[] for _ in range(workers)]

    if shard_by == "round-robin":
        for position, scenario in indexed:
            buckets[position % workers].append((position, scenario))
    elif shard_by == "by-experiment":
        groups: "dict[str, list[tuple[int, Scenario]]]" = {}
        for position, scenario in indexed:
            groups.setdefault(scenario.experiment_id, []).append(
                (position, scenario)
            )
        # Heaviest group first onto the lightest bucket (LPT on groups);
        # ties broken by first appearance to stay deterministic.
        order = sorted(
            groups,
            key=lambda k: (-sum(scenario_cost(s) for _, s in groups[k]),
                           groups[k][0][0]),
        )
        loads = [0.0] * workers
        for key in order:
            target = loads.index(min(loads))
            buckets[target].extend(groups[key])
            loads[target] += sum(scenario_cost(s) for _, s in groups[key])
        for bucket in buckets:
            bucket.sort()  # a bucket holding several groups: plan order
    else:  # by-cost: LPT greedy on per-scenario hints
        order = sorted(
            indexed, key=lambda pair: (-scenario_cost(pair[1]), pair[0])
        )
        loads = [0.0] * workers
        for position, scenario in order:
            target = loads.index(min(loads))
            buckets[target].append((position, scenario))
            loads[target] += scenario_cost(scenario)
        for bucket in buckets:
            bucket.sort()  # run each shard's scenarios in plan order

    shards = []
    for bucket in buckets:
        if bucket:
            shards.append(Shard(index=len(shards), items=tuple(bucket)))
    return tuple(shards)


def run_shard(
    shard: Shard,
    seed: int = 0,
    defaults: "Mapping[str, Any] | None" = None,
) -> "tuple[ShardReport, tuple[tuple[int, ScenarioResult], ...]]":
    """Execute one shard on a fresh worker session; the worker entry point.

    Builds a :class:`~repro.api.session.SimulationSession` seeded with
    :func:`~repro.api.session.derive_worker_seed`, runs the shard's
    scenarios in order through :func:`~repro.api.plan.run_scenario`,
    and returns the shard report plus position-tagged results. Module
    level and fully picklable, so it runs unchanged on a process pool,
    a thread pool, or inline.
    """
    session = SimulationSession(
        seed=derive_worker_seed(seed, shard.index), defaults=defaults
    )
    start = time.perf_counter()
    results = tuple(
        (position, run_scenario(session, scenario))
        for position, scenario in shard.items
    )
    elapsed = time.perf_counter() - start
    report = ShardReport(
        index=shard.index,
        positions=tuple(position for position, _ in shard.items),
        seed=session.seed,
        elapsed_s=elapsed,
        cache_stats=session.cache_stats(),
    )
    return report, results


def run_plan_parallel(
    plan: RunPlan,
    *,
    workers: "int | None" = None,
    shard_by: str = "round-robin",
    seed: int = 0,
    defaults: "Mapping[str, Any] | None" = None,
    executor: str = "process",
) -> ParallelPlanResult:
    """Run every scenario of a plan across sharded worker sessions.

    The plan is expanded, split by :func:`shard_plan`, executed one
    shard per worker (``executor="process"`` by default;
    ``executor="thread"`` keeps everything in-process for debugging --
    the ContextVar-scoped cache activation keeps worker sessions
    isolated either way), and merged back in plan order by
    :func:`~repro.api.plan.merge_shard_results`.

    ``workers`` defaults to 4; empty shards are dropped, so a plan
    smaller than the worker count naturally uses fewer workers (and no
    process is forked per scenario on large plans) -- pass ``workers``
    explicitly for real sweeps. For a single shard the pool is skipped
    entirely and the shard runs inline, so ``workers=1`` is a cheap way
    to get serial execution with parallel-run reporting.

    Worker failures propagate: the first scenario error (e.g. an
    unknown experiment id) is re-raised in the caller after the pool
    shuts down.
    """
    if executor not in EXECUTOR_KINDS:
        known = ", ".join(EXECUTOR_KINDS)
        raise ConfigurationError(
            f"unknown executor {executor!r}; available: {known}"
        )
    if workers is None:
        workers = 4
    shards = shard_plan(plan, workers, shard_by)

    if len(shards) == 1:
        outputs = (run_shard(shards[0], seed, defaults),)
        return merge_shard_results(plan, outputs)

    pool_cls = (
        ProcessPoolExecutor if executor == "process" else ThreadPoolExecutor
    )
    with pool_cls(max_workers=len(shards)) as pool:
        futures = [
            pool.submit(run_shard, shard, seed, defaults) for shard in shards
        ]
        outputs = tuple(future.result() for future in futures)
    return merge_shard_results(plan, outputs)
