"""Canonical scenario/plan hashing: the result store's content addresses.

A scenario's hash is the identity under which its result is cached,
shared and served (:mod:`repro.service`), so it must be *stable*:
the same physical work must produce the same hash in every process,
on every platform, for every way of writing the same scenario.
:func:`scenario_hash` therefore hashes a **canonical record**:

* the JSON-safe form of the scenario (``experiment_id``, ``overrides``,
  ``sweep``) with every NumPy scalar normalised to its builtin
  equivalent (:func:`repro.io._jsonable` converts ``np.float64`` /
  ``np.int64`` / ``np.bool_`` before serialisation),
* serialised with **sorted keys** and minimal separators, so dict
  insertion order never leaks into the digest,
* salted with the **code version** (:func:`code_version`): package
  version plus a result-format revision, so a release that changes
  result semantics invalidates every stale store entry at once,
* optionally extended with the session ``defaults`` in effect, because
  a default override (``temperature_k=400``) changes the computed
  result just as an explicit override does.

The scenario ``label`` is deliberately **excluded**: it is presentation
metadata, and two scenarios differing only in label must share one
cached result. See ``docs/API.md`` ("Simulation service & result
store") for the full hash contract.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from .plan import RunPlan
    from .scenario import Scenario

#: Revision of the stored-result format/semantics. Bump when a change
#: makes previously stored results wrong (new physics, changed solver
#: tolerances, reworked experiment defaults): every store entry keyed
#: under the old revision becomes unreachable, never silently wrong.
RESULT_FORMAT_REVISION = 1


def code_version() -> str:
    """The code-version salt baked into every scenario hash.

    Combines the package version with :data:`RESULT_FORMAT_REVISION`,
    so both a release bump and an explicit format-revision bump retire
    stale store entries.
    """
    from .. import __version__

    return f"{__version__}/r{RESULT_FORMAT_REVISION}"


def canonical_scenario_record(scenario: "Scenario") -> "dict[str, Any]":
    """The scenario fields that define its computational identity.

    The JSON-safe ``experiment_id`` / ``overrides`` / ``sweep`` record
    (NumPy scalars normalised by :func:`repro.io.scenario_to_dict`),
    with the presentation-only ``label`` dropped.
    """
    from .. import io

    record = io.scenario_to_dict(scenario)
    record.pop("label", None)
    return record


def canonical_json(record: "Mapping[str, Any]") -> str:
    """Serialise a JSON-safe record to its one canonical text form.

    Sorted keys, minimal separators, ASCII-only escapes: any two dicts
    that compare equal (after NumPy normalisation) serialise to the
    same bytes, so the digest never depends on insertion order,
    platform, or which process built the record.
    """
    return json.dumps(
        record,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def scenario_hash(
    scenario: "Scenario",
    *,
    defaults: "Mapping[str, Any] | None" = None,
    salt: "str | None" = None,
) -> str:
    """The content address of one concrete scenario's result.

    SHA-256 over the canonical JSON of the scenario record, the
    session ``defaults`` in effect (they change computed results
    exactly like overrides do), and the code-version ``salt``
    (:func:`code_version` unless given). Stable across processes,
    platforms and NumPy scalar types; hex digest, 64 characters.
    """
    from .. import io

    record = {
        "salt": salt if salt is not None else code_version(),
        "scenario": canonical_scenario_record(scenario),
        "defaults": {
            k: io._jsonable(v) for k, v in dict(defaults or {}).items()
        },
    }
    text = canonical_json(record)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def plan_hash(
    plan: "RunPlan",
    *,
    defaults: "Mapping[str, Any] | None" = None,
    salt: "str | None" = None,
) -> str:
    """The content address of a whole plan: its expanded scenario hashes.

    SHA-256 over the ordered list of :func:`scenario_hash` digests of
    ``plan.expanded()`` -- *not* over the plan name, so renaming a plan
    (or regrouping the same concrete scenarios into different sweep
    families) keeps the hash, while any change to the actual work
    changes it.
    """
    digests = [
        scenario_hash(s, defaults=defaults, salt=salt)
        for s in plan.expanded()
    ]
    text = canonical_json({"scenarios": digests})
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
