"""Simulation sessions: the stateful owner of caches, seeds and config.

A :class:`SimulationSession` is the unit of isolation of the public API:
it owns a private :class:`~repro.engine.cache.CacheSet` (so concurrent
or sequential sessions never share memoized state), a deterministic RNG
seed, and a set of default parameter overrides applied to every
experiment it runs. A :class:`SimulationContext` is the read-only view
handed to experiment ``run(ctx, **params)`` functions; it builds devices
and sweep settings from overrides so experiments stay declarative.

Zero-argument compatibility: experiments called without a context (the
pre-redesign protocol) resolve :func:`ensure_context` to a process-wide
default session that shares the engine's default cache set, so legacy
calls behave exactly as before the API redesign.
"""

from __future__ import annotations

import inspect
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

import numpy as np

from ..device.bias import BiasCondition, ERASE_BIAS, PROGRAM_BIAS, READ_BIAS
from ..device.floating_gate import FloatingGateTransistor
from ..engine.cache import CacheSet, CacheStats, default_caches, use_caches
from ..errors import ConfigurationError
from ..experiments.base import ExperimentResult
from ..experiments.registry import resolve_experiment
from ..experiments.sweeps import SweepSettings
from ..units import nm_to_m

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..memory.cell import CellKernel
    from ..memory.workload import WorkloadSpec, WriteRequest
    from .plan import PlanResult, RunPlan, ScenarioResult
    from .scenario import Scenario

_BIASES = {
    "program": PROGRAM_BIAS,
    "erase": ERASE_BIAS,
    "read": READ_BIAS,
}


class SimulationSession:
    """One isolated simulation environment: caches + seed + defaults.

    Attributes
    ----------
    seed:
        Root seed of the session's deterministic RNG streams.
    defaults:
        Parameter overrides applied to every experiment run that
        accepts them (e.g. ``{"temperature_k": 400.0}`` heats every
        figure sweep of the session).
    caches:
        The session-private :class:`~repro.engine.cache.CacheSet`; all
        work routed through :meth:`run`, :meth:`run_plan` or
        :meth:`activate` shares it, and nothing else does.
    """

    def __init__(
        self,
        seed: int = 0,
        defaults: "Mapping[str, Any] | None" = None,
        caches: "CacheSet | None" = None,
    ) -> None:
        """Create a session with its own cache set unless one is given."""
        self.seed = int(seed)
        self.defaults: "dict[str, Any]" = dict(defaults or {})
        self.caches = caches if caches is not None else CacheSet()
        self._kernels: "dict[tuple, Any]" = {}
        self._rng_streams = 0

    # ----- cache ownership ----------------------------------------------

    def activate(self):
        """Context manager routing engine lookups through this session.

        Everything executed inside the ``with`` block -- figure sweeps,
        transients, optimizer evaluations -- hits this session's cache
        set instead of the process default.
        """
        return use_caches(self.caches)

    def cache_stats(self) -> CacheStats:
        """Per-session hit/miss counters (not the global ones)."""
        return self.caches.stats()

    def clear_caches(self) -> None:
        """Drop this session's memoized intermediates only."""
        self.caches.clear()

    # ----- configuration ------------------------------------------------

    def context(self) -> "SimulationContext":
        """The read-only view experiments receive as ``ctx``."""
        return SimulationContext(session=self)

    def rng(self) -> np.random.Generator:
        """A fresh deterministic RNG stream derived from the seed.

        Consecutive calls return independent streams, so two workloads
        drawn from one session never correlate, while two sessions with
        equal seeds replay identically.
        """
        stream = self._rng_streams
        self._rng_streams += 1
        return np.random.default_rng((self.seed, stream))

    def device(self, **overrides: float) -> FloatingGateTransistor:
        """Session-configured device; see :meth:`SimulationContext.device`."""
        return self.context().device(**overrides)

    def cell_kernel(self, pulse_duration_s: float = 1e-4) -> "CellKernel":
        """Array cell kernel calibrated under this session's caches.

        The calibration transients run through the session cache set and
        the result is memoized per (device, pulse) configuration, so
        array benchmarks that share a session pay the device transients
        once.
        """
        from ..memory.cell import calibrate_kernel

        device = self.device()
        key = (device, float(pulse_duration_s))
        if key not in self._kernels:
            with self.activate():
                self._kernels[key] = calibrate_kernel(
                    device, pulse_duration_s=pulse_duration_s
                )
        return self._kernels[key]

    def workload(self, spec: "WorkloadSpec") -> "Iterator[WriteRequest]":
        """Materialise a host workload seeded from this session.

        Specs without an explicit seed derive one from the session RNG,
        so repeated sessions with equal seeds replay the same traffic.
        """
        from ..memory.workload import build_workload

        if spec.seed is None:
            spec = replace(spec, seed=int(self.rng().integers(0, 2**31)))
        return build_workload(spec)

    # ----- running experiments ------------------------------------------

    def run(self, experiment_id: str, **params: Any) -> ExperimentResult:
        """Run one registered experiment inside this session.

        Session defaults are applied first (where the experiment accepts
        them), explicit ``params`` override them, and unknown parameter
        names raise :class:`~repro.errors.ConfigurationError` listing
        the experiment's accepted overrides.
        """
        fn = resolve_experiment(experiment_id)
        merged = merge_parameters(fn, self.defaults, params, experiment_id)
        with self.activate():
            return fn(self.context(), **merged)

    def run_scenario(self, scenario: "Scenario") -> "ScenarioResult":
        """Run one concrete scenario; see :mod:`repro.api.plan`."""
        from .plan import run_scenario

        return run_scenario(self, scenario)

    def run_plan(self, plan: "RunPlan") -> "PlanResult":
        """Run every scenario of a plan through this one session."""
        from .plan import run_plan

        return run_plan(self, plan)

    def run_plan_parallel(self, plan: "RunPlan", **options: Any):
        """Run a plan on sharded worker sessions; see :mod:`repro.api.executor`.

        Convenience wrapper over
        :func:`~repro.api.executor.run_plan_parallel` that forwards this
        session's seed and defaults. The work does *not* run on this
        session's cache set: each shard executes in a fresh worker
        session seeded by :func:`derive_worker_seed`, so this session's
        caches and counters are untouched (the returned
        :class:`~repro.api.plan.ParallelPlanResult` carries the
        per-shard attribution instead).
        """
        from .executor import run_plan_parallel

        return run_plan_parallel(
            plan, seed=self.seed, defaults=self.defaults, **options
        )


class SimulationContext:
    """What an experiment's ``run(ctx, **params)`` receives.

    A thin, read-only facade over the owning session: experiments use it
    to build parameterized devices, sweep settings, biases and RNG
    streams without knowing about caches or plans.
    """

    def __init__(self, session: SimulationSession) -> None:
        """Bind the context to its owning session."""
        self._session = session

    @property
    def session(self) -> SimulationSession:
        """The owning session (cache stats, seed, defaults)."""
        return self._session

    def rng(self) -> np.random.Generator:
        """A deterministic RNG stream from the session seed."""
        return self._session.rng()

    def device(
        self,
        tunnel_oxide_nm: "float | None" = None,
        control_oxide_nm: "float | None" = None,
        gcr: "float | None" = None,
    ) -> FloatingGateTransistor:
        """The paper's reference device with optional geometry overrides.

        ``tunnel_oxide_nm`` / ``control_oxide_nm`` replace the oxide
        thicknesses; ``gcr`` resizes the control-gate wrap to realise a
        gate coupling ratio (the physical form of the paper's GCR
        sweeps). Omitted overrides keep the reference values.
        """
        device = FloatingGateTransistor()
        geometry = device.geometry
        if tunnel_oxide_nm is not None:
            geometry = replace(
                geometry, tunnel_oxide_thickness_m=nm_to_m(tunnel_oxide_nm)
            )
        if control_oxide_nm is not None:
            geometry = replace(
                geometry, control_oxide_thickness_m=nm_to_m(control_oxide_nm)
            )
        if geometry is not device.geometry:
            device = replace(device, geometry=geometry)
        if gcr is not None:
            device = device.with_gate_coupling_ratio(gcr)
        return device

    def endurance_model(
        self,
        pulse_duration_s: float = 1e-4,
        tunnel_oxide_nm: "float | None" = None,
        gcr: "float | None" = None,
    ):
        """A cycling wear model for the session-configured device.

        Builds an :class:`~repro.reliability.endurance.EnduranceModel`
        around :meth:`device` (with the same optional geometry
        overrides), so the reliability experiments construct their wear
        models the same declarative way they construct devices. The
        returned model's ``simulate_batch`` is the batched entry point
        for whole endurance corner sweeps.
        """
        from ..reliability.endurance import EnduranceModel

        return EnduranceModel(
            self.device(tunnel_oxide_nm=tunnel_oxide_nm, gcr=gcr),
            pulse_duration_s=pulse_duration_s,
        )

    def sweep_settings(
        self,
        barrier_height_ev: "float | None" = None,
        mass_ratio: "float | None" = None,
        temperature_k: "float | None" = None,
    ) -> SweepSettings:
        """Figure-sweep settings with optional barrier overrides."""
        overrides = {
            name: value
            for name, value in (
                ("barrier_height_ev", barrier_height_ev),
                ("mass_ratio", mass_ratio),
                ("temperature_k", temperature_k),
            )
            if value is not None
        }
        return SweepSettings(**overrides)

    def bias(
        self, name: str = "program", vgs_v: "float | None" = None
    ) -> BiasCondition:
        """A named bias condition, optionally at another gate voltage."""
        try:
            bias = _BIASES[name]
        except KeyError:
            known = ", ".join(sorted(_BIASES))
            raise ConfigurationError(
                f"unknown bias {name!r}; available: {known}"
            ) from None
        if vgs_v is not None:
            bias = bias.with_gate_voltage(float(vgs_v))
        return bias


def derive_worker_seed(seed: int, shard_index: int) -> int:
    """A deterministic, well-mixed seed for one parallel worker session.

    Routes ``(root seed, shard index)`` through
    :class:`numpy.random.SeedSequence`, whose entropy-mixing hash is
    documented as stable across NumPy versions and platforms -- so a
    plan re-run anywhere derives the same per-shard seeds, while nearby
    shard indices (0, 1, 2, ...) still land on statistically independent
    streams (plain ``seed + shard_index`` would make shard *i* of one
    plan collide with shard *i+1* of a plan seeded one higher).
    """
    # Mask to unsigned 64-bit words: SeedSequence entropy must be
    # non-negative, and a negative session seed should still derive.
    mask = (1 << 64) - 1
    mixed = np.random.SeedSequence(
        [int(seed) & mask, int(shard_index) & mask]
    )
    return int(mixed.generate_state(1, dtype=np.uint64)[0])


_DEFAULT_SESSION: "SimulationSession | None" = None


def default_session() -> SimulationSession:
    """The process-wide session backing zero-argument experiment calls.

    Shares the engine's *default* cache set, so legacy ``run()`` calls
    keep exactly their pre-redesign caching behaviour.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = SimulationSession(caches=default_caches())
    return _DEFAULT_SESSION


def ensure_context(
    ctx: "SimulationContext | None",
) -> SimulationContext:
    """The backwards-compatibility shim of the experiment protocol.

    Experiment ``run`` functions accept ``ctx=None`` and route it here:
    ``None`` (a pre-redesign zero-argument call) resolves to the default
    session's context, so old call sites keep working bit-for-bit while
    session-aware callers pass their own context.
    """
    if ctx is None:
        return default_session().context()
    if not isinstance(ctx, SimulationContext):
        raise ConfigurationError(
            f"ctx must be a SimulationContext or None, got {type(ctx).__name__}"
        )
    return ctx


def accepted_parameters(fn: "Callable[..., ExperimentResult]") -> "tuple[str, ...]":
    """The override names an experiment's ``run`` function accepts."""
    names = []
    for name, parameter in inspect.signature(fn).parameters.items():
        if name == "ctx":
            continue
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            names.append(name)
    return tuple(names)


def merge_parameters(
    fn: "Callable[..., ExperimentResult]",
    defaults: "Mapping[str, Any]",
    params: "Mapping[str, Any]",
    experiment_id: str,
) -> "dict[str, Any]":
    """Session defaults (where accepted) overlaid with explicit params.

    Unknown explicit parameter names raise
    :class:`~repro.errors.ConfigurationError` naming the experiment's
    accepted overrides; unknown *defaults* are silently skipped (a
    session default like ``temperature_k`` should apply only to the
    experiments that understand it).
    """
    accepted = set(accepted_parameters(fn))
    merged = {k: v for k, v in defaults.items() if k in accepted}
    for name, value in params.items():
        if name not in accepted:
            known = ", ".join(sorted(accepted)) or "(none)"
            raise ConfigurationError(
                f"experiment {experiment_id!r} does not accept parameter "
                f"{name!r}; accepted overrides: {known}"
            )
        merged[name] = value
    return merged
