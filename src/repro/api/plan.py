"""Run plans: batches of scenarios executed through one session.

A :class:`RunPlan` is an ordered collection of :class:`Scenario`
families. :func:`run_plan` expands them and executes every concrete
scenario inside a single :class:`~repro.api.session.SimulationSession`,
so memoized intermediates (FN coefficient pairs, compiled cells) carry
across scenarios; the returned :class:`PlanResult` attributes the
session's cache hits and misses to individual scenarios, making the
cross-scenario reuse visible (`repro-experiments --plan plan.json
--cache-stats`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..engine.cache import CacheStats
from ..errors import ConfigurationError
from ..experiments.base import ExperimentResult
from .scenario import Scenario
from .session import SimulationSession


@dataclass(frozen=True)
class RunPlan:
    """A named, serializable batch of scenarios.

    Attributes
    ----------
    scenarios:
        Scenario families, executed in order after expansion.
    name:
        Plan name carried into reports and exports.
    """

    scenarios: "tuple[Scenario, ...]"
    name: str = "plan"

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if not self.scenarios:
            raise ConfigurationError("a run plan needs at least one scenario")

    def expanded(self) -> "tuple[Scenario, ...]":
        """Every concrete scenario, with sweep families expanded."""
        return tuple(
            concrete
            for scenario in self.scenarios
            for concrete in scenario.expand()
        )

    # ----- JSON round trip (via repro.io) --------------------------------

    def to_dict(self) -> "dict[str, Any]":
        """JSON-safe record; inverse of :meth:`from_dict`."""
        from .. import io

        return io.run_plan_to_dict(self)

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any]") -> "RunPlan":
        """Rebuild a plan from its JSON record."""
        from .. import io

        return io.run_plan_from_dict(data)

    def save(self, path: "str | Path") -> Path:
        """Write the plan as a JSON file; returns the path."""
        from .. import io

        return io.save_json(self.to_dict(), path)

    @classmethod
    def load(cls, path: "str | Path") -> "RunPlan":
        """Read a plan back from a JSON file."""
        from .. import io

        return io.run_plan_from_dict(io.load_json(path))


@dataclass(frozen=True)
class ScenarioResult:
    """One executed scenario and its attribution.

    Attributes
    ----------
    scenario:
        The concrete (expanded) scenario that ran.
    result:
        The experiment's output.
    elapsed_s:
        Wall-clock time of this scenario [s].
    cache_stats:
        Session cache counters accumulated *during this scenario* (the
        delta against the session state when the scenario started;
        ``currsize`` is the number of entries the scenario added).
    reused_hits:
        Lookups served by cache entries that already existed when the
        scenario started -- genuine reuse of earlier scenarios' (or the
        session's prior) work, as opposed to the scenario re-hitting an
        entry it created itself.
    """

    scenario: Scenario
    result: ExperimentResult
    elapsed_s: float
    cache_stats: CacheStats = field(repr=False)
    reused_hits: int = 0

    @property
    def all_checks_pass(self) -> bool:
        """Whether every shape check of the experiment passed."""
        return self.result.all_checks_pass


@dataclass(frozen=True)
class PlanResult:
    """Outcome of one plan run through one session.

    Attributes
    ----------
    plan:
        The executed plan.
    scenario_results:
        One :class:`ScenarioResult` per concrete scenario, in order.
    cache_stats:
        Counters the whole plan accumulated on the session cache set.
    """

    plan: RunPlan
    scenario_results: "tuple[ScenarioResult, ...]"
    cache_stats: CacheStats = field(repr=False)

    @property
    def results(self) -> "tuple[ExperimentResult, ...]":
        """The bare experiment results, in scenario order."""
        return tuple(s.result for s in self.scenario_results)

    @property
    def all_checks_pass(self) -> bool:
        """Whether every shape check of every scenario passed."""
        return all(s.all_checks_pass for s in self.scenario_results)

    @property
    def cross_scenario_hits(self) -> int:
        """Lookups served by entries that predate their scenario.

        Summed ``reused_hits``: each scenario counts only hits on cache
        entries that existed before it started, so a scenario re-hitting
        an entry it created itself does not inflate the number -- this
        is the reuse a multi-scenario plan exists to exploit. (On a
        fresh session the first scenario necessarily contributes zero.)
        """
        return sum(s.reused_hits for s in self.scenario_results)


def run_scenario(
    session: SimulationSession, scenario: Scenario
) -> ScenarioResult:
    """Execute one concrete scenario inside a session.

    Scenario families (with sweep axes) must be expanded first; passing
    one here raises :class:`~repro.errors.ConfigurationError`.
    """
    if scenario.sweep:
        raise ConfigurationError(
            f"scenario {scenario.name!r} has sweep axes; expand() it or "
            "run it through a RunPlan"
        )
    before = session.cache_stats()
    session.caches.mark()
    start = time.perf_counter()
    result = session.run(scenario.experiment_id, **scenario.overrides)
    elapsed = time.perf_counter() - start
    delta = session.cache_stats().delta(before)
    return ScenarioResult(
        scenario=scenario,
        result=result,
        elapsed_s=elapsed,
        cache_stats=delta,
        reused_hits=session.caches.reused_hits_since_mark(),
    )


def run_plan(session: SimulationSession, plan: RunPlan) -> PlanResult:
    """Execute every scenario of a plan through one session.

    Scenarios run in order on the session's cache set; the result
    reports both per-scenario and whole-plan cache counters.
    """
    before = session.cache_stats()
    scenario_results = tuple(
        run_scenario(session, concrete) for concrete in plan.expanded()
    )
    total = session.cache_stats().delta(before)
    return PlanResult(
        plan=plan, scenario_results=scenario_results, cache_stats=total
    )
