"""Run plans: batches of scenarios executed through one session.

A :class:`RunPlan` is an ordered collection of :class:`Scenario`
families. :func:`run_plan` expands them and executes every concrete
scenario inside a single :class:`~repro.api.session.SimulationSession`,
so memoized intermediates (FN coefficient pairs, compiled cells) carry
across scenarios; the returned :class:`PlanResult` attributes the
session's cache hits and misses to individual scenarios, making the
cross-scenario reuse visible (`repro-experiments --plan plan.json
--cache-stats`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..engine.cache import CacheStats
from ..errors import ConfigurationError
from ..experiments.base import ExperimentResult
from .scenario import Scenario
from .session import SimulationSession


@dataclass(frozen=True)
class RunPlan:
    """A named, serializable batch of scenarios.

    Attributes
    ----------
    scenarios:
        Scenario families, executed in order after expansion.
    name:
        Plan name carried into reports and exports.
    """

    scenarios: "tuple[Scenario, ...]"
    name: str = "plan"

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if not self.scenarios:
            raise ConfigurationError("a run plan needs at least one scenario")

    def expanded(self) -> "tuple[Scenario, ...]":
        """Every concrete scenario, with sweep families expanded."""
        return tuple(
            concrete
            for scenario in self.scenarios
            for concrete in scenario.expand()
        )

    # ----- JSON round trip (via repro.io) --------------------------------

    def to_dict(self) -> "dict[str, Any]":
        """JSON-safe record; inverse of :meth:`from_dict`."""
        from .. import io

        return io.run_plan_to_dict(self)

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any]") -> "RunPlan":
        """Rebuild a plan from its JSON record."""
        from .. import io

        return io.run_plan_from_dict(data)

    def save(self, path: "str | Path") -> Path:
        """Write the plan as a JSON file; returns the path."""
        from .. import io

        return io.save_json(self.to_dict(), path)

    @classmethod
    def load(cls, path: "str | Path") -> "RunPlan":
        """Read a plan back from a JSON file."""
        from .. import io

        return io.run_plan_from_dict(io.load_json(path))


@dataclass(frozen=True)
class ScenarioResult:
    """One executed scenario and its attribution.

    Attributes
    ----------
    scenario:
        The concrete (expanded) scenario that ran.
    result:
        The experiment's output.
    elapsed_s:
        Wall-clock time of this scenario [s].
    cache_stats:
        Session cache counters accumulated *during this scenario* (the
        delta against the session state when the scenario started;
        ``currsize`` is the number of entries the scenario added).
    reused_hits:
        Lookups served by cache entries that already existed when the
        scenario started -- genuine reuse of earlier scenarios' (or the
        session's prior) work, as opposed to the scenario re-hitting an
        entry it created itself.
    """

    scenario: Scenario
    result: ExperimentResult
    elapsed_s: float
    cache_stats: CacheStats = field(repr=False)
    reused_hits: int = 0

    @property
    def all_checks_pass(self) -> bool:
        """Whether every shape check of the experiment passed."""
        return self.result.all_checks_pass


@dataclass(frozen=True)
class PlanResult:
    """Outcome of one plan run through one session.

    Cache attribution is **order-dependent** by design: a scenario's
    ``cache_stats`` delta and ``reused_hits`` depend on which scenarios
    ran before it on the same cache set, so reordering a plan (or
    splitting it across parallel workers) moves counts between the
    "miss", "own hit" and "reused hit" buckets. What is *invariant*
    under any ordering or sharding of the same plan is the work itself:
    each scenario performs the same lookups, so its per-scenario
    ``hits + misses`` total -- and therefore the plan-wide lookup total
    -- is identical however the plan is executed, and the experiment
    results themselves are bit-identical (memoization never changes
    values). The executor's merge preserves exactly this contract; see
    :class:`ParallelPlanResult` and :attr:`cross_scenario_hits`.

    Attributes
    ----------
    plan:
        The executed plan.
    scenario_results:
        One :class:`ScenarioResult` per concrete scenario, in order.
    cache_stats:
        Counters the whole plan accumulated on the session cache set.
    """

    plan: RunPlan
    scenario_results: "tuple[ScenarioResult, ...]"
    cache_stats: CacheStats = field(repr=False)

    @property
    def results(self) -> "tuple[ExperimentResult, ...]":
        """The bare experiment results, in scenario order."""
        return tuple(s.result for s in self.scenario_results)

    @property
    def all_checks_pass(self) -> bool:
        """Whether every shape check of every scenario passed."""
        return all(s.all_checks_pass for s in self.scenario_results)

    @property
    def cross_scenario_hits(self) -> int:
        """Lookups served by entries that predate their scenario.

        Summed ``reused_hits``: each scenario counts only hits on cache
        entries that existed before it started, so a scenario re-hitting
        an entry it created itself does not inflate the number -- this
        is the reuse a multi-scenario plan exists to exploit. (On a
        fresh session the first scenario necessarily contributes zero.)

        **Contract: this total is order-dependent.** "Predates the
        scenario" is defined against the execution order on one cache
        set, so reordering the plan redistributes reuse (the first
        scenario in any order contributes zero), and a parallel run --
        where each shard's worker session only ever sees its own prior
        scenarios -- reports at most the serial total, reaching it only
        when sharding keeps co-reusing scenarios together. Serial and
        parallel runs of the same plan *do* agree on the conserved
        totals: per-scenario ``hits + misses`` and the experiment
        results themselves (see :class:`PlanResult`).
        """
        return sum(s.reused_hits for s in self.scenario_results)


def run_scenario(
    session: SimulationSession, scenario: Scenario
) -> ScenarioResult:
    """Execute one concrete scenario inside a session.

    Scenario families (with sweep axes) must be expanded first; passing
    one here raises :class:`~repro.errors.ConfigurationError`.
    """
    if scenario.sweep:
        raise ConfigurationError(
            f"scenario {scenario.name!r} has sweep axes; expand() it or "
            "run it through a RunPlan"
        )
    before = session.cache_stats()
    session.caches.mark()
    start = time.perf_counter()
    result = session.run(scenario.experiment_id, **scenario.overrides)
    elapsed = time.perf_counter() - start
    delta = session.cache_stats().delta(before)
    return ScenarioResult(
        scenario=scenario,
        result=result,
        elapsed_s=elapsed,
        cache_stats=delta,
        reused_hits=session.caches.reused_hits_since_mark(),
    )


@dataclass(frozen=True)
class ShardReport:
    """What one executor shard did: scenarios, seed, time, cache work.

    Attributes
    ----------
    index:
        Shard number (0-based) within its plan run.
    positions:
        Indices into ``plan.expanded()`` of the scenarios this shard
        ran, in the order the worker ran them.
    seed:
        The worker session's derived seed
        (:func:`~repro.api.session.derive_worker_seed` of the plan seed
        and shard index).
    elapsed_s:
        Wall-clock time of the whole shard on its worker [s].
    cache_stats:
        Counters the shard accumulated on its worker's cache set.
    """

    index: int
    positions: "tuple[int, ...]"
    seed: int
    elapsed_s: float
    cache_stats: CacheStats = field(repr=False)


@dataclass(frozen=True)
class ShardFailure:
    """One shard (or split sub-shard) that exhausted its retry budget.

    Attributes
    ----------
    index:
        Shard number (0-based) within its plan run. Sub-shards split
        off a failing shard keep the parent's index, so the number
        always names a shard of the original partition.
    positions:
        Indices into ``plan.expanded()`` of the scenarios whose results
        are missing because of this failure.
    scenario_ids:
        The :attr:`~repro.api.scenario.Scenario.name` of each failed
        scenario, aligned with ``positions``.
    attempts:
        How many attempts were made before giving up.
    cause:
        ``"error"`` (the shard raised), ``"crash"`` (the worker process
        died -- ``BrokenProcessPool``), or ``"timeout"`` (the shard
        exceeded the supervisor's per-shard deadline).
    message:
        Text of the final underlying error.
    elapsed_s:
        Wall-clock time spent across this unit's failed attempts [s].
    """

    index: int
    positions: "tuple[int, ...]"
    scenario_ids: "tuple[str, ...]"
    attempts: int
    cause: str
    message: str = ""
    elapsed_s: float = 0.0


@dataclass(frozen=True)
class ParallelPlanResult(PlanResult):
    """A :class:`PlanResult` assembled from parallel shard runs.

    Everything a :class:`PlanResult` promises holds here too:
    ``scenario_results`` are in plan (expansion) order regardless of
    which shard ran what, per-scenario cache deltas attribute each
    worker's counters to its scenarios, and ``cache_stats`` is the sum
    over the (disjoint) worker cache sets. The extra ``shard_reports``
    expose the parallel structure -- who ran what, with which derived
    seed, how long, and with what cache efficiency.

    A result may be **partial**: when the supervisor ran with
    ``raise_on_failure=False`` and some shard exhausted its retries,
    ``scenario_results`` holds only the completed scenarios (still in
    plan order) and ``failures`` names what is missing. ``complete``
    distinguishes the two cases; :meth:`results_by_position` recovers
    the position of each surviving result.

    Attributes
    ----------
    shard_reports:
        One :class:`ShardReport` per shard, ordered by shard index.
    failures:
        :class:`ShardFailure` records for shards whose scenarios never
        completed; empty on a fully successful run.
    """

    shard_reports: "tuple[ShardReport, ...]" = ()
    failures: "tuple[ShardFailure, ...]" = ()

    @property
    def worker_count(self) -> int:
        """How many shards (= worker sessions) the plan ran on."""
        return len(self.shard_reports)

    @property
    def complete(self) -> bool:
        """Whether every expanded scenario produced a result."""
        return not self.failures

    @property
    def failed_positions(self) -> "tuple[int, ...]":
        """Expanded-plan positions with no result, sorted."""
        return tuple(
            sorted(p for f in self.failures for p in f.positions)
        )

    def results_by_position(self) -> "dict[int, ScenarioResult]":
        """Completed results keyed by expanded-plan position.

        On a complete run this is simply ``{i: scenario_results[i]}``;
        on a partial run the failed positions are absent and the
        surviving results keep their original plan positions.
        """
        failed = set(self.failed_positions)
        positions = [
            i for i in range(len(self.plan.expanded())) if i not in failed
        ]
        return dict(zip(positions, self.scenario_results))


def merge_shard_results(
    plan: RunPlan,
    shard_outputs: "tuple[tuple[ShardReport, tuple[tuple[int, ScenarioResult], ...]], ...]",
    failures: "tuple[ShardFailure, ...]" = (),
) -> ParallelPlanResult:
    """Reassemble shard outputs into one in-order plan result.

    ``shard_outputs`` pairs each shard's report with its
    ``(position, result)`` list, where ``position`` indexes the
    scenario's place in ``plan.expanded()``. The merge restores plan
    order, verifies that completed results plus the positions named by
    ``failures`` cover every expanded scenario exactly once (a
    partition -- anything else raises
    :class:`~repro.errors.ConfigurationError`), and sums the per-shard
    cache counters into the plan-wide total. With non-empty
    ``failures`` the result is partial: failed positions are simply
    absent from ``scenario_results``.
    """
    expected = len(plan.expanded())
    failed: "set[int]" = set()
    for failure in failures:
        for position in failure.positions:
            if position in failed:
                raise ConfigurationError(
                    f"shard merge saw scenario position {position} twice"
                )
            failed.add(position)
    indexed: "dict[int, ScenarioResult]" = {}
    for _, results in shard_outputs:
        for position, result in results:
            if position in indexed or position in failed:
                raise ConfigurationError(
                    f"shard merge saw scenario position {position} twice"
                )
            indexed[position] = result
    if sorted(set(indexed) | failed) != list(range(expected)):
        missing = sorted(set(range(expected)) - set(indexed) - failed)
        raise ConfigurationError(
            f"shard merge is not a partition of the plan: expected "
            f"{expected} scenarios, missing positions {missing}, "
            f"got {sorted(set(indexed) | failed)}"
        )
    reports = tuple(
        sorted((report for report, _ in shard_outputs), key=lambda r: r.index)
    )
    total = CacheStats(hits=0, misses=0, currsize=0, per_cache=())
    for report in reports:
        total = total.merged(report.cache_stats)
    return ParallelPlanResult(
        plan=plan,
        scenario_results=tuple(indexed[i] for i in sorted(indexed)),
        cache_stats=total,
        shard_reports=reports,
        failures=tuple(
            sorted(failures, key=lambda f: (f.index, f.positions))
        ),
    )


def run_plan(session: SimulationSession, plan: RunPlan) -> PlanResult:
    """Execute every scenario of a plan through one session.

    Scenarios run in order on the session's cache set; the result
    reports both per-scenario and whole-plan cache counters.
    """
    before = session.cache_stats()
    scenario_results = tuple(
        run_scenario(session, concrete) for concrete in plan.expanded()
    )
    total = session.cache_stats().delta(before)
    return PlanResult(
        plan=plan, scenario_results=scenario_results, cache_stats=total
    )
