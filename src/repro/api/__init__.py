"""`repro.api`: the single public surface for running anything.

The session layer turns the figure-regeneration harness into a
programmable simulation service:

* :class:`SimulationSession` owns an isolated engine cache set, a
  deterministic seed, and default parameter overrides; every experiment,
  scenario or plan run through it shares (only) that session's state.
* :class:`Scenario` declares *what* to run -- an experiment id, its
  parameter overrides, and optional sweep axes -- and round-trips
  through JSON via :mod:`repro.io`.
* :class:`RunPlan` batches scenario families through one session with
  structured :class:`ScenarioResult` / :class:`PlanResult` outputs and
  per-scenario cache attribution.

Quickstart::

    from repro.api import RunPlan, Scenario, SimulationSession

    session = SimulationSession(seed=7)
    hot = session.run("fig6", temperature_k=400.0)   # one-off override

    plan = RunPlan(
        name="oxide-study",
        scenarios=(
            Scenario("fig7", sweep={"gcr": [0.5, 0.6, 0.7]}),
            Scenario("fig9", overrides={"n_points": 24}),
        ),
    )
    outcome = session.run_plan(plan)
    print(outcome.cross_scenario_hits, session.cache_stats().hit_rate)

See ``docs/API.md`` for the full walkthrough.
"""

from .plan import PlanResult, RunPlan, ScenarioResult, run_plan, run_scenario
from .scenario import Scenario
from .session import (
    SimulationContext,
    SimulationSession,
    accepted_parameters,
    default_session,
    ensure_context,
    merge_parameters,
)

__all__ = [
    "SimulationSession",
    "SimulationContext",
    "Scenario",
    "RunPlan",
    "ScenarioResult",
    "PlanResult",
    "run_scenario",
    "run_plan",
    "default_session",
    "ensure_context",
    "accepted_parameters",
    "merge_parameters",
]
