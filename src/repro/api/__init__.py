"""`repro.api`: the single public surface for running anything.

The session layer turns the figure-regeneration harness into a
programmable simulation service:

* :class:`SimulationSession` owns an isolated engine cache set, a
  deterministic seed, and default parameter overrides; every experiment,
  scenario or plan run through it shares (only) that session's state.
* :class:`Scenario` declares *what* to run -- an experiment id, its
  parameter overrides, and optional sweep axes -- and round-trips
  through JSON via :mod:`repro.io`.
* :class:`RunPlan` batches scenario families through one session with
  structured :class:`ScenarioResult` / :class:`PlanResult` outputs and
  per-scenario cache attribution.
* :func:`run_plan_parallel` (:mod:`repro.api.executor`) shards a plan
  across worker sessions -- process pool by default -- with
  deterministically derived per-shard seeds, and merges the results
  back bit-identical to the serial run (:class:`ParallelPlanResult`
  adds per-shard :class:`ShardReport` timing/cache attribution).

Quickstart::

    from repro.api import RunPlan, Scenario, SimulationSession

    session = SimulationSession(seed=7)
    hot = session.run("fig6", temperature_k=400.0)   # one-off override

    plan = RunPlan(
        name="oxide-study",
        scenarios=(
            Scenario("fig7", sweep={"gcr": [0.5, 0.6, 0.7]}),
            Scenario("fig9", overrides={"n_points": 24}),
        ),
    )
    outcome = session.run_plan(plan)
    print(outcome.cross_scenario_hits, session.cache_stats().hit_rate)

See ``docs/API.md`` for the full walkthrough.
"""

from .executor import (
    Shard,
    ShardExecutionError,
    run_plan_parallel,
    run_shard,
    scenario_cost,
    shard_plan,
)
from .hashing import (
    canonical_json,
    canonical_scenario_record,
    code_version,
    plan_hash,
    scenario_hash,
)
from .plan import (
    ParallelPlanResult,
    PlanResult,
    RunPlan,
    ScenarioResult,
    ShardFailure,
    ShardReport,
    merge_shard_results,
    run_plan,
    run_scenario,
)
from .scenario import Scenario
from .session import (
    SimulationContext,
    SimulationSession,
    accepted_parameters,
    default_session,
    derive_worker_seed,
    ensure_context,
    merge_parameters,
)

__all__ = [
    "SimulationSession",
    "SimulationContext",
    "Scenario",
    "RunPlan",
    "ScenarioResult",
    "PlanResult",
    "ParallelPlanResult",
    "ShardReport",
    "ShardFailure",
    "ShardExecutionError",
    "Shard",
    "run_scenario",
    "run_plan",
    "run_plan_parallel",
    "run_shard",
    "shard_plan",
    "scenario_cost",
    "merge_shard_results",
    "default_session",
    "derive_worker_seed",
    "ensure_context",
    "accepted_parameters",
    "merge_parameters",
    "scenario_hash",
    "plan_hash",
    "code_version",
    "canonical_json",
    "canonical_scenario_record",
]
