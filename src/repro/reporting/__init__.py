"""Terminal reporting: ASCII plots, tables and CSV export."""

from .ascii_plot import PlotSeries, ascii_plot, decades_spanned
from .export import export_series_csv
from .table import format_table

__all__ = [
    "PlotSeries",
    "ascii_plot",
    "decades_spanned",
    "format_table",
    "export_series_csv",
]
