"""CSV export of experiment series."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .ascii_plot import PlotSeries


def export_series_csv(
    path: "str | Path",
    series: Sequence[PlotSeries],
    x_label: str = "x",
    y_label: str = "y",
) -> Path:
    """Write series to a long-format CSV: series,x,y.

    Returns the written path.
    """
    if not series:
        raise ConfigurationError("need at least one series")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", x_label, y_label])
        for s in series:
            x = np.asarray(s.x, dtype=float)
            y = np.asarray(s.y, dtype=float)
            for xv, yv in zip(x, y):
                writer.writerow([s.label, repr(float(xv)), repr(float(yv))])
    return path
