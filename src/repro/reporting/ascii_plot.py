"""Terminal line plots for experiment series (no plotting dependency)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError

_MARKERS = "ox+*#@%&"


@dataclass(frozen=True)
class PlotSeries:
    """One labelled (x, y) series."""

    label: str
    x: np.ndarray
    y: np.ndarray


def ascii_plot(
    series: Sequence[PlotSeries],
    width: int = 72,
    height: int = 20,
    log_y: bool = False,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render series on a character canvas.

    ``log_y`` plots ``log10(|y|)`` -- tunneling currents span ~30 decades
    and are unreadable on a linear axis. Non-positive values are dropped
    in log mode.
    """
    if not series:
        raise ConfigurationError("need at least one series")
    if width < 16 or height < 6:
        raise ConfigurationError("canvas too small")

    xs, ys = [], []
    for s in series:
        x = np.asarray(s.x, dtype=float)
        y = np.asarray(s.y, dtype=float)
        if x.size != y.size or x.size == 0:
            raise ConfigurationError(f"series {s.label!r} is malformed")
        if log_y:
            mask = np.abs(y) > 0.0
            x, y = x[mask], np.log10(np.abs(y[mask]))
        xs.append(x)
        ys.append(y)

    if all(x.size == 0 for x in xs):
        return f"{title}\n(no positive data to plot)"
    x_min = min(float(x.min()) for x in xs if x.size)
    x_max = max(float(x.max()) for x in xs if x.size)
    y_min = min(float(y.min()) for y in ys if y.size)
    y_max = max(float(y.max()) for y in ys if y.size)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, (x, y) in enumerate(zip(xs, ys)):
        marker = _MARKERS[idx % len(_MARKERS)]
        for xv, yv in zip(x, y):
            col = int((xv - x_min) / (x_max - x_min) * (width - 1))
            row = int((yv - y_min) / (y_max - y_min) * (height - 1))
            canvas[height - 1 - row][col] = marker

    y_top = f"{y_max:.3g}"
    y_bot = f"{y_min:.3g}"
    gutter = max(len(y_top), len(y_bot)) + 1
    lines = []
    if title:
        lines.append(title)
    if y_label:
        axis = f"{y_label}" + (" [log10]" if log_y else "")
        lines.append(axis)
    for i, row_chars in enumerate(canvas):
        if i == 0:
            prefix = y_top.rjust(gutter)
        elif i == height - 1:
            prefix = y_bot.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(prefix + "|" + "".join(row_chars))
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{x_min:.3g}".ljust(width // 2) + f"{x_max:.3g}".rjust(
        width - width // 2
    )
    lines.append(" " * (gutter + 1) + x_axis)
    if x_label:
        lines.append(" " * (gutter + 1) + x_label.center(width))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.label}" for i, s in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def decades_spanned(values: np.ndarray) -> float:
    """Number of decades between the smallest and largest |value| > 0."""
    magnitudes = np.abs(np.asarray(values, dtype=float))
    magnitudes = magnitudes[magnitudes > 0.0]
    if magnitudes.size < 2:
        return 0.0
    return float(math.log10(magnitudes.max() / magnitudes.min()))
