"""Fixed-width text tables for experiment output."""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.4g}",
) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted with ``float_format``; everything else with
    ``str``. Column widths auto-fit the content.
    """
    if not headers:
        raise ConfigurationError("need at least one column")

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    text_rows = [[render(v) for v in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} does not match header width "
                f"{len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in text_rows:
        lines.append(
            " | ".join(v.rjust(w) for v, w in zip(row, widths))
        )
    return "\n".join(lines)
