"""Unit conversion helpers."""

import pytest

from repro import units
from repro.constants import ELEMENTARY_CHARGE


def test_nm_round_trip():
    assert units.m_to_nm(units.nm_to_m(5.0)) == pytest.approx(5.0)


def test_nm_to_m_scale():
    assert units.nm_to_m(1.0) == 1e-9


def test_um_to_m_scale():
    assert units.um_to_m(2.0) == pytest.approx(2e-6)


def test_ev_round_trip():
    assert units.j_to_ev(units.ev_to_j(3.2)) == pytest.approx(3.2)


def test_ev_to_j_uses_elementary_charge():
    assert units.ev_to_j(1.0) == ELEMENTARY_CHARGE


def test_field_conversion_mv_per_cm():
    # 10 MV/cm is the canonical SiO2 breakdown: 1e9 V/m.
    assert units.mv_per_cm_to_v_per_m(10.0) == pytest.approx(1e9)
    assert units.v_per_m_to_mv_per_cm(1e9) == pytest.approx(10.0)


def test_current_density_conversion():
    assert units.a_per_cm2_to_a_per_m2(1.0) == pytest.approx(1e4)
    assert units.a_per_m2_to_a_per_cm2(1e4) == pytest.approx(1.0)


def test_capacitance_density_conversion_round_trip():
    assert units.f_per_m2_to_f_per_cm2(
        units.f_per_cm2_to_f_per_m2(3.45e-7)
    ) == pytest.approx(3.45e-7)
