"""NAND strings and page operations."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MemoryOperationError
from repro.memory import (
    CellState,
    IsppPolicy,
    SenseAmplifier,
    StringOperations,
    build_string,
)


@pytest.fixture()
def operations(cell_kernel, rng):
    strings = [
        build_string(cell_kernel, n_wordlines=8, rng=rng) for _ in range(16)
    ]
    window = cell_kernel.window_v
    return StringOperations(
        strings=strings,
        ispp=IsppPolicy(
            verify_level_v=cell_kernel.erased_vt_v + 0.67 * window,
            step_v=max(0.05 * window, 0.1),
            first_pulse_shift_v=max(0.1 * window, 0.2),
        ),
        sense=SenseAmplifier(
            reference_v=cell_kernel.erased_vt_v + 0.5 * window
        ),
    )


class TestStringStructure:
    def test_build_string_dimensions(self, cell_kernel, rng):
        s = build_string(cell_kernel, n_wordlines=64, rng=rng)
        assert s.n_wordlines == 64

    def test_wordline_bounds_checked(self, cell_kernel, rng):
        s = build_string(cell_kernel, n_wordlines=8, rng=rng)
        with pytest.raises(MemoryOperationError):
            s.cell(8)

    def test_conduction_rule(self, cell_kernel, rng):
        s = build_string(cell_kernel, n_wordlines=4, rng=rng)
        mid = cell_kernel.erased_vt_v + 0.5 * cell_kernel.window_v
        assert s.is_conducting(0, mid)  # erased cell conducts
        s.cell(0).apply_program_pulse(cell_kernel.window_v)
        assert not s.is_conducting(0, mid)

    def test_rejects_empty_string(self):
        from repro.memory import NandString

        with pytest.raises(ConfigurationError):
            NandString(cells=[])


class TestPageOperations:
    def test_program_read_round_trip(self, operations, rng):
        bits = rng.integers(0, 2, operations.n_bitlines).astype(np.uint8)
        operations.program_page(3, bits, rng)
        back = operations.read_page(3, rng)
        assert (back == bits).all()

    def test_program_marks_states(self, operations, rng):
        bits = np.zeros(operations.n_bitlines, dtype=np.uint8)  # program all
        operations.program_page(1, bits, rng)
        assert all(
            s is CellState.PROGRAMMED for s in operations.page_states(1)
        )

    def test_other_pages_unaffected_without_disturb(self, operations, rng):
        before = [c.vt_v for c in operations.page_cells(5)]
        operations.program_page(
            2, np.zeros(operations.n_bitlines, dtype=np.uint8), rng
        )
        after = [c.vt_v for c in operations.page_cells(5)]
        assert before == after

    def test_erase_all_resets_everything(self, operations, rng):
        operations.program_page(
            0, np.zeros(operations.n_bitlines, dtype=np.uint8), rng
        )
        operations.erase_all(rng)
        bits = operations.read_page(0, rng)
        assert (bits == 1).all()

    def test_read_count_tracked(self, operations, rng):
        operations.read_page(4, rng)
        operations.read_page(4, rng)
        assert operations.read_count[4] == 2

    def test_wrong_bit_width_rejected(self, operations, rng):
        with pytest.raises(MemoryOperationError):
            operations.program_page(0, np.zeros(3, dtype=np.uint8), rng)


class TestStructuralValidation:
    def test_rejects_mixed_string_lengths(self, cell_kernel, rng):
        s1 = build_string(cell_kernel, n_wordlines=8, rng=rng)
        s2 = build_string(cell_kernel, n_wordlines=4, rng=rng)
        with pytest.raises(ConfigurationError):
            StringOperations(
                strings=[s1, s2],
                ispp=IsppPolicy(verify_level_v=0.0),
                sense=SenseAmplifier(reference_v=0.0),
            )
