"""Block/page array semantics."""

import numpy as np
import pytest

from repro.errors import MemoryOperationError
from repro.memory import ArrayConfig, build_array


@pytest.fixture()
def array(cell_kernel):
    return build_array(
        cell_kernel,
        ArrayConfig(n_blocks=3, wordlines_per_block=4, bitlines=16),
    )


class TestPageLifecycle:
    def test_program_and_read(self, array, rng):
        bits = rng.integers(0, 2, 16).astype(np.uint8)
        array.program_page(0, 0, bits)
        assert (array.read_page(0, 0) == bits).all()

    def test_reprogram_without_erase_rejected(self, array, rng):
        bits = rng.integers(0, 2, 16).astype(np.uint8)
        array.program_page(1, 2, bits)
        with pytest.raises(MemoryOperationError):
            array.program_page(1, 2, bits)

    def test_erase_enables_reprogram(self, array, rng):
        bits = rng.integers(0, 2, 16).astype(np.uint8)
        array.program_page(1, 2, bits)
        array.erase_block(1)
        array.program_page(1, 2, bits)  # no raise
        assert (array.read_page(1, 2) == bits).all()

    def test_fresh_pages_read_all_ones(self, array):
        assert (array.read_page(2, 3) == 1).all()


class TestBlockSemantics:
    def test_erase_counts_tracked(self, array):
        array.erase_block(0)
        array.erase_block(0)
        array.erase_block(2)
        assert array.block_erase_counts() == [2, 0, 1]

    def test_erase_clears_whole_block_only(self, array, rng):
        bits = np.zeros(16, dtype=np.uint8)
        array.program_page(0, 0, bits)
        array.program_page(1, 0, bits)
        array.erase_block(0)
        assert (array.read_page(0, 0) == 1).all()  # erased
        assert (array.read_page(1, 0) == 0).all()  # untouched

    def test_out_of_range_block_rejected(self, array):
        with pytest.raises(MemoryOperationError):
            array.read_page(5, 0)


class TestDistributions:
    def test_page_thresholds_bimodal_after_program(self, array, rng):
        bits = np.array([0, 1] * 8, dtype=np.uint8)
        array.program_page(0, 1, bits)
        vts = array.page_thresholds(0, 1)
        programmed = vts[bits == 0]
        erased = vts[bits == 1]
        assert programmed.min() > erased.max()
