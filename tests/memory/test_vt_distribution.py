"""Threshold distributions and error-rate estimates."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.memory import (
    VtDistribution,
    optimal_read_reference,
    raw_bit_error_rate,
)


@pytest.fixture()
def erased():
    return VtDistribution(mean_v=-2.0, sigma_v=0.3)


@pytest.fixture()
def programmed():
    return VtDistribution(mean_v=4.0, sigma_v=0.3)


class TestDistribution:
    def test_cdf_half_at_mean(self, erased):
        assert erased.cdf(-2.0) == pytest.approx(0.5)

    def test_cdf_monotonic(self, erased):
        assert erased.cdf(-1.0) > erased.cdf(-3.0)

    def test_percentile_inverts_cdf(self, erased):
        for p in (0.01, 0.5, 0.99):
            vt = erased.percentile(p)
            assert erased.cdf(vt) == pytest.approx(p, abs=1e-9)

    def test_sampling_statistics(self, erased, rng):
        samples = erased.sample(20000, rng)
        assert np.mean(samples) == pytest.approx(-2.0, abs=0.02)
        assert np.std(samples) == pytest.approx(0.3, abs=0.02)

    def test_shifted_moves_mean_only(self, erased):
        s = erased.shifted(0.7)
        assert s.mean_v == pytest.approx(-1.3)
        assert s.sigma_v == erased.sigma_v

    def test_broadened_adds_in_quadrature(self, erased):
        b = erased.broadened(0.4)
        assert b.sigma_v == pytest.approx(np.hypot(0.3, 0.4))

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ConfigurationError):
            VtDistribution(0.0, 0.0)


class TestBitErrorRate:
    def test_ber_tiny_for_wide_window(self, erased, programmed):
        ber = raw_bit_error_rate(erased, programmed, 1.0)
        assert ber < 1e-12

    def test_ber_half_for_reference_far_outside(self, erased, programmed):
        """Reference above both distributions: every programmed cell
        misreads; average error 0.5."""
        ber = raw_bit_error_rate(erased, programmed, 20.0)
        assert ber == pytest.approx(0.5)

    def test_ber_grows_as_distributions_close(self, erased):
        near = VtDistribution(mean_v=-1.0, sigma_v=0.3)
        far = VtDistribution(mean_v=4.0, sigma_v=0.3)
        ref_near = optimal_read_reference(erased, near)
        ref_far = optimal_read_reference(erased, far)
        assert raw_bit_error_rate(
            erased, near, ref_near
        ) > raw_bit_error_rate(erased, far, ref_far)

    def test_rejects_inverted_states(self, erased):
        lower = VtDistribution(mean_v=-5.0, sigma_v=0.3)
        with pytest.raises(ConfigurationError):
            raw_bit_error_rate(erased, lower, 0.0)


class TestOptimalReference:
    def test_midpoint_for_equal_sigmas(self, erased, programmed):
        ref = optimal_read_reference(erased, programmed)
        assert ref == pytest.approx(1.0, abs=0.05)

    def test_skews_toward_tighter_distribution(self, erased):
        tight_prog = VtDistribution(mean_v=4.0, sigma_v=0.05)
        ref = optimal_read_reference(erased, tight_prog)
        assert ref > 1.0  # pushed toward the tight programmed state

    def test_reference_beats_naive_choices(self, erased, programmed):
        ref = optimal_read_reference(erased, programmed)
        best = raw_bit_error_rate(erased, programmed, ref)
        for naive in (-1.0, 0.0, 2.5):
            assert best <= raw_bit_error_rate(
                erased, programmed, naive
            ) * (1.0 + 1e-9)
