"""ECC-protected memory controller."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MemoryOperationError
from repro.memory import (
    ArrayConfig,
    HammingCode,
    MemoryController,
    PageMappedFtl,
    build_array,
)


@pytest.fixture()
def controller(cell_kernel):
    array = build_array(
        cell_kernel,
        ArrayConfig(n_blocks=3, wordlines_per_block=4, bitlines=39),
    )
    ftl = PageMappedFtl(array, overprovision_blocks=1)
    return MemoryController(ftl, HammingCode(32), host_page_bits=32)


class TestRoundTrip:
    def test_write_read(self, controller, rng):
        payload = rng.integers(0, 2, 32).astype(np.uint8)
        controller.write(0, payload)
        assert (controller.read(0) == payload).all()
        assert controller.stats.pages_written == 1
        assert controller.stats.pages_read == 1

    def test_multiple_pages_independent(self, controller, rng):
        payloads = {
            i: rng.integers(0, 2, 32).astype(np.uint8) for i in range(4)
        }
        for page, bits in payloads.items():
            controller.write(page, bits)
        for page, bits in payloads.items():
            assert (controller.read(page) == bits).all()

    def test_overwrites_survive_gc(self, controller, rng):
        last = None
        for _ in range(20):
            last = rng.integers(0, 2, 32).astype(np.uint8)
            controller.write(1, last)
        assert (controller.read(1) == last).all()


class TestEccPath:
    def test_single_flipped_cell_corrected(self, controller, rng):
        payload = rng.integers(0, 2, 32).astype(np.uint8)
        controller.write(2, payload)
        # Reach inside the physical array and flip one stored cell of
        # the mapped page.
        ppage = controller.ftl._map[2]
        block, wl = controller.ftl._physical_address(ppage)
        cell = controller.ftl.array.blocks[block].operations.page_cells(wl)[5]
        kernel = cell.kernel
        if cell.vt_v > kernel.erased_vt_v + 0.5 * kernel.window_v:
            cell.vt_v = kernel.erased_vt_v  # programmed -> erased flip
        else:
            cell.vt_v = kernel.programmed_vt_v
        decoded = controller.read(2)
        assert (decoded == payload).all()
        assert controller.stats.bits_corrected == 1


class TestValidation:
    def test_rejects_wrong_payload_width(self, controller, rng):
        with pytest.raises(MemoryOperationError):
            controller.write(0, rng.integers(0, 2, 31).astype(np.uint8))

    def test_rejects_code_too_big_for_page(self, cell_kernel):
        array = build_array(
            cell_kernel,
            ArrayConfig(n_blocks=2, wordlines_per_block=2, bitlines=16),
        )
        ftl = PageMappedFtl(array, overprovision_blocks=1)
        with pytest.raises(ConfigurationError):
            MemoryController(ftl, HammingCode(32), host_page_bits=32)
