"""Physics-calibrated disturb model."""

import pytest

from repro.errors import ConfigurationError
from repro.memory import DisturbModel


class TestDriftPerEvent:
    def test_drift_positive_but_tiny(self, paper_device):
        """Pass-voltage stress gains charge slowly: far below 1 mV per
        event for a 6 V pass bias on a 5 nm oxide."""
        model = DisturbModel(paper_device, pass_voltage_v=6.0)
        drift = model.drift_per_event_v()
        assert 0.0 <= drift < 1e-3

    def test_higher_pass_voltage_more_disturb(self, paper_device):
        low = DisturbModel(paper_device, pass_voltage_v=4.0)
        high = DisturbModel(paper_device, pass_voltage_v=8.0)
        assert high.drift_per_event_v() > low.drift_per_event_v()

    def test_drift_scales_with_event_duration(self, paper_device):
        short = DisturbModel(
            paper_device, pass_voltage_v=7.0, event_duration_s=1e-5
        )
        long = DisturbModel(
            paper_device, pass_voltage_v=7.0, event_duration_s=1e-4
        )
        assert long.drift_per_event_v() == pytest.approx(
            10.0 * short.drift_per_event_v(), rel=1e-6
        )

    def test_zero_pass_voltage_no_disturb(self, paper_device):
        model = DisturbModel(paper_device, pass_voltage_v=0.0)
        assert model.drift_per_event_v() == 0.0


class TestBudget:
    def test_events_to_drift_inverse_of_per_event(self, paper_device):
        model = DisturbModel(paper_device, pass_voltage_v=8.0)
        per_event = model.drift_per_event_v()
        if per_event > 0.0:
            assert model.events_to_drift(1.0) == pytest.approx(
                1.0 / per_event, rel=1e-9
            )

    def test_infinite_budget_when_no_disturb(self, paper_device):
        model = DisturbModel(paper_device, pass_voltage_v=0.0)
        assert model.events_to_drift(0.5) == float("inf")

    def test_rejects_nonpositive_budget(self, paper_device):
        with pytest.raises(ConfigurationError):
            DisturbModel(paper_device).events_to_drift(0.0)


class TestValidation:
    def test_rejects_negative_pass_voltage(self, paper_device):
        with pytest.raises(ConfigurationError):
            DisturbModel(paper_device, pass_voltage_v=-1.0)

    def test_rejects_nonpositive_duration(self, paper_device):
        with pytest.raises(ConfigurationError):
            DisturbModel(paper_device, event_duration_s=0.0)
