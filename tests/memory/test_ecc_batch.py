"""Exhaustive ECC contract: the GF(2) matmul path vs the bit loops.

The matrix-parity Hamming path (``encode_batch`` / ``decode_batch`` and
the page-level interleave wrappers) must agree with the seed bit-by-bit
loops on *every* reachable error pattern, not just on sampled ones.
This suite enumerates, per (data_bits, extended) layout:

* every clean codeword round trip over a full random page,
* every single-bit flip position of every codeword of a page,
* every double-bit flip pair of one codeword (SECDED detection), and
* the exception contract of the interleave wrappers,

pinning payloads, correction counts and uncorrectability against the
scalar ``decode`` -- including where the scalar path raises.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MemoryOperationError
from repro.memory import (
    HammingCode,
    interleave_decode,
    interleave_decode_batch,
    interleave_encode,
    interleave_encode_batch,
)

#: Layouts under exhaustive test: degenerate 1-bit payload, the
#: SECDED-13/8 byte code, and a 64-bit page-word, with and without the
#: extended parity bit.
LAYOUTS = [
    (1, True),
    (1, False),
    (8, True),
    (8, False),
    (64, True),
    (64, False),
]


def _random_page(code: HammingCode, n_words: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=n_words * code.data_bits).astype(np.uint8)


def _scalar_decode_outcome(code, word):
    """Scalar decode folded into the batch tuple convention."""
    try:
        payload, corrected = code.decode(word)
        return payload, corrected, False
    except MemoryOperationError:
        return None, 0, True


@pytest.mark.parametrize("data_bits,extended", LAYOUTS)
class TestExhaustiveSingleBit:
    def test_clean_round_trip(self, data_bits, extended):
        code = HammingCode(data_bits, extended=extended)
        page = _random_page(code, 5, seed=data_bits)
        words = page.reshape(5, data_bits)
        encoded_b = code.encode_batch(words)
        for i in range(5):
            np.testing.assert_array_equal(
                encoded_b[i], code.encode(words[i])
            )
        payloads, corrected, uncorrectable = code.decode_batch(encoded_b)
        np.testing.assert_array_equal(payloads, words)
        assert (corrected == 0).all()
        assert not uncorrectable.any()

    def test_every_single_bit_flip_corrects(self, data_bits, extended):
        """All single-bit positions of a full page, batch == scalar."""
        code = HammingCode(data_bits, extended=extended)
        n_words = 3
        words = _random_page(code, n_words, seed=97 + data_bits).reshape(
            n_words, data_bits
        )
        clean = code.encode_batch(words)
        n = code.codeword_bits
        # One corrupted stack per flip position: word w gets bit b
        # flipped, all (words x positions) patterns covered.
        for bit in range(n):
            corrupted = clean.copy()
            corrupted[:, bit] ^= 1
            payloads, corrected, uncorrectable = code.decode_batch(
                corrupted
            )
            assert not uncorrectable.any(), (
                f"bit {bit} flip marked uncorrectable"
            )
            assert (corrected == 1).all(), f"bit {bit} flip not corrected"
            np.testing.assert_array_equal(payloads, words)
            for w in range(n_words):
                payload_s, corrected_s = code.decode(corrupted[w])
                np.testing.assert_array_equal(payloads[w], payload_s)
                assert corrected[w] == corrected_s

    def test_every_double_bit_flip_matches_scalar(
        self, data_bits, extended
    ):
        """All C(n, 2) double flips of one word, batch == scalar.

        Extended layouts must detect every pair as uncorrectable; plain
        Hamming miscorrects some pairs -- the contract is only that both
        paths agree bit-exactly on the (wrong) payload and counts.
        """
        code = HammingCode(data_bits, extended=extended)
        word = _random_page(code, 1, seed=7 + data_bits)
        clean = code.encode(word)
        n = code.codeword_bits
        patterns = []
        for i in range(n):
            for j in range(i + 1, n):
                corrupted = clean.copy()
                corrupted[i] ^= 1
                corrupted[j] ^= 1
                patterns.append(corrupted)
        stack = np.array(patterns)
        payloads, corrected, uncorrectable = code.decode_batch(stack)
        for k, corrupted in enumerate(patterns):
            payload_s, corrected_s, raised = _scalar_decode_outcome(
                code, corrupted
            )
            assert bool(uncorrectable[k]) == raised, (
                f"pattern {k}: batch uncorrectable={bool(uncorrectable[k])} "
                f"but scalar raised={raised}"
            )
            if not raised:
                np.testing.assert_array_equal(payloads[k], payload_s)
                assert corrected[k] == corrected_s
        if extended:
            # SECDED: every double error inside the codeword is detected.
            assert uncorrectable.all()


@pytest.mark.parametrize("data_bits,extended", LAYOUTS)
class TestInterleaveContract:
    PAGE_BITS = 70  # deliberately not a multiple of any layout's k

    def test_round_trip_matches_scalar(self, data_bits, extended):
        code = HammingCode(data_bits, extended=extended)
        page = _random_page(code, 1, seed=3)[: self.PAGE_BITS]
        page = np.resize(page, self.PAGE_BITS).astype(np.uint8)
        encoded_b = interleave_encode_batch(code, page)
        encoded_s = interleave_encode(code, page)
        np.testing.assert_array_equal(encoded_b, encoded_s)
        bits_b, corrected_b = interleave_decode_batch(
            code, encoded_b, self.PAGE_BITS
        )
        bits_s, corrected_s = interleave_decode(
            code, encoded_s, self.PAGE_BITS
        )
        np.testing.assert_array_equal(bits_b, page)
        np.testing.assert_array_equal(bits_b, bits_s)
        assert corrected_b == corrected_s == 0

    def test_single_flip_per_codeword_all_corrected(
        self, data_bits, extended
    ):
        """One flip in every codeword of the page still decodes clean."""
        code = HammingCode(data_bits, extended=extended)
        page = np.resize(
            _random_page(code, 2, seed=11), self.PAGE_BITS
        ).astype(np.uint8)
        encoded = interleave_encode_batch(code, page)
        n = code.codeword_bits
        n_words = encoded.size // n
        rng = np.random.default_rng(13)
        corrupted = encoded.copy()
        for w in range(n_words):
            corrupted[w * n + int(rng.integers(0, n))] ^= 1
        bits_b, corrected_b = interleave_decode_batch(
            code, corrupted, self.PAGE_BITS
        )
        bits_s, corrected_s = interleave_decode(
            code, corrupted, self.PAGE_BITS
        )
        np.testing.assert_array_equal(bits_b, page)
        np.testing.assert_array_equal(bits_b, bits_s)
        assert corrected_b == corrected_s == n_words

    def test_length_validation_matches_scalar(self, data_bits, extended):
        code = HammingCode(data_bits, extended=extended)
        bad = np.zeros(code.codeword_bits + 1, dtype=np.uint8)
        with pytest.raises(MemoryOperationError):
            interleave_decode(code, bad, 1)
        with pytest.raises(MemoryOperationError):
            interleave_decode_batch(code, bad, 1)


class TestSecdedPageException:
    def test_double_error_raises_in_both_paths(self):
        """A SECDED double error fails the page identically."""
        code = HammingCode(8, extended=True)
        page = np.resize(
            _random_page(code, 2, seed=17), 16
        ).astype(np.uint8)
        encoded = interleave_encode_batch(code, page)
        encoded[0] ^= 1
        encoded[2] ^= 1
        with pytest.raises(
            MemoryOperationError, match="unrecoverable"
        ):
            interleave_decode(code, encoded, 16)
        with pytest.raises(
            MemoryOperationError, match="unrecoverable"
        ):
            interleave_decode_batch(code, encoded, 16)

    def test_extended_bit_flip_alone_counts_corrected(self):
        """Flipping only the overall parity bit is a correction of 1."""
        code = HammingCode(8, extended=True)
        word = _random_page(code, 1, seed=19)
        encoded = code.encode(word)
        encoded[-1] ^= 1
        payload_b, corrected_b, uncorrectable = code.decode_batch(encoded)
        payload_s, corrected_s = code.decode(encoded)
        np.testing.assert_array_equal(payload_b, word)
        np.testing.assert_array_equal(payload_b, payload_s)
        assert corrected_b == corrected_s == 1
        assert not uncorrectable

    def test_single_word_1d_paths_agree(self):
        """The 1-D convenience lane mirrors the scalar word exactly."""
        code = HammingCode(16, extended=False)
        word = _random_page(code, 1, seed=23)
        encoded = code.encode_batch(word)
        assert encoded.ndim == 1
        np.testing.assert_array_equal(encoded, code.encode(word))
        corrupted = encoded.copy()
        corrupted[5] ^= 1
        payload_b, corrected_b, uncorrectable = code.decode_batch(
            corrupted
        )
        payload_s, corrected_s = code.decode(corrupted)
        np.testing.assert_array_equal(payload_b, payload_s)
        assert corrected_b == corrected_s == 1
        assert not uncorrectable
