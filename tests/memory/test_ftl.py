"""Page-mapped FTL: mapping, GC, wear levelling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MemoryOperationError
from repro.memory import ArrayConfig, PageMappedFtl, build_array


def make_ftl(cell_kernel, blocks=3, pages=4, bits=16, op=1):
    array = build_array(
        cell_kernel,
        ArrayConfig(
            n_blocks=blocks, wordlines_per_block=pages, bitlines=bits
        ),
    )
    return PageMappedFtl(array, overprovision_blocks=op)


class TestBasicMapping:
    def test_write_read_round_trip(self, cell_kernel, rng):
        ftl = make_ftl(cell_kernel)
        bits = rng.integers(0, 2, 16).astype(np.uint8)
        ftl.write(0, bits)
        assert (ftl.read(0) == bits).all()

    def test_overwrite_returns_new_data(self, cell_kernel, rng):
        ftl = make_ftl(cell_kernel)
        first = rng.integers(0, 2, 16).astype(np.uint8)
        second = 1 - first
        ftl.write(3, first)
        ftl.write(3, second)
        assert (ftl.read(3) == second).all()

    def test_unwritten_page_rejected(self, cell_kernel):
        ftl = make_ftl(cell_kernel)
        with pytest.raises(MemoryOperationError):
            ftl.read(1)

    def test_capacity_excludes_overprovisioning(self, cell_kernel):
        ftl = make_ftl(cell_kernel, blocks=4, pages=4, op=1)
        assert ftl.logical_capacity_pages == 12

    def test_out_of_capacity_write_rejected(self, cell_kernel, rng):
        ftl = make_ftl(cell_kernel)
        with pytest.raises(MemoryOperationError):
            ftl.write(
                ftl.logical_capacity_pages,
                rng.integers(0, 2, 16).astype(np.uint8),
            )


class TestGarbageCollection:
    def test_sustained_overwrites_trigger_gc(self, cell_kernel, rng):
        ftl = make_ftl(cell_kernel)
        for i in range(30):
            ftl.write(
                i % 4, rng.integers(0, 2, 16).astype(np.uint8)
            )
        assert ftl.stats.gc_invocations > 0
        assert ftl.stats.block_erases > 0

    def test_data_survives_gc(self, cell_kernel, rng):
        ftl = make_ftl(cell_kernel)
        reference = {}
        for i in range(40):
            page = i % ftl.logical_capacity_pages
            bits = rng.integers(0, 2, 16).astype(np.uint8)
            ftl.write(page, bits)
            reference[page] = bits
        for page, bits in reference.items():
            assert (ftl.read(page) == bits).all()

    def test_write_amplification_above_one_under_churn(
        self, cell_kernel, rng
    ):
        ftl = make_ftl(cell_kernel)
        for i in range(40):
            ftl.write(
                int(rng.integers(0, ftl.logical_capacity_pages)),
                rng.integers(0, 2, 16).astype(np.uint8),
            )
        assert ftl.stats.write_amplification >= 1.0

    def test_sequential_overwrite_of_single_page(self, cell_kernel, rng):
        """Hot single page: GC must keep reclaiming its old copies."""
        ftl = make_ftl(cell_kernel)
        last = None
        for _ in range(25):
            last = rng.integers(0, 2, 16).astype(np.uint8)
            ftl.write(0, last)
        assert (ftl.read(0) == last).all()


class TestGcRelocationRace:
    def test_overwrite_of_page_relocated_by_same_write_gc(
        self, cell_kernel, rng
    ):
        """Regression: writing a page whose allocation triggers a GC
        that relocates *that same page* must not leave a stale reverse
        mapping behind (the stale copy used to be resurrected by a later
        GC, overwriting fresh data with old)."""
        ftl = make_ftl(cell_kernel, blocks=4, pages=4, bits=16)
        reference = {}
        for i in range(300):
            page = int(rng.integers(0, ftl.logical_capacity_pages))
            bits = rng.integers(0, 2, 16).astype(np.uint8)
            ftl.write(page, bits)
            reference[page] = bits
        for page, bits in reference.items():
            assert (ftl.read(page) == bits).all()


class TestWearLevelling:
    def test_wear_spread_stays_small(self, cell_kernel, rng):
        ftl = make_ftl(cell_kernel, blocks=4, pages=4, op=1)
        for i in range(60):
            ftl.write(
                int(rng.integers(0, ftl.logical_capacity_pages)),
                rng.integers(0, 2, 16).astype(np.uint8),
            )
        assert ftl.wear_spread() <= 4.0


class TestValidation:
    def test_rejects_zero_overprovisioning(self, cell_kernel):
        array = build_array(
            cell_kernel, ArrayConfig(n_blocks=2, wordlines_per_block=2, bitlines=8)
        )
        with pytest.raises(ConfigurationError):
            PageMappedFtl(array, overprovision_blocks=0)

    def test_rejects_full_overprovisioning(self, cell_kernel):
        array = build_array(
            cell_kernel, ArrayConfig(n_blocks=2, wordlines_per_block=2, bitlines=8)
        )
        with pytest.raises(ConfigurationError):
            PageMappedFtl(array, overprovision_blocks=2)
