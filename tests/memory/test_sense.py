"""Sense amplifier."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.memory import MemoryCell, SenseAmplifier, fresh_cells


@pytest.fixture()
def sense(cell_kernel):
    mid = cell_kernel.erased_vt_v + 0.5 * cell_kernel.window_v
    return SenseAmplifier(reference_v=mid, noise_sigma_v=0.0)


class TestSensing:
    def test_erased_reads_one(self, cell_kernel, sense):
        cell = MemoryCell(kernel=cell_kernel)
        assert sense.sense(cell) == 1

    def test_programmed_reads_zero(self, cell_kernel, sense):
        cell = MemoryCell(kernel=cell_kernel)
        cell.apply_program_pulse(cell_kernel.window_v)
        assert sense.sense(cell) == 0

    def test_page_read_returns_bit_array(self, cell_kernel, sense, rng):
        cells = fresh_cells(cell_kernel, 16, rng=rng)
        for c in cells[:8]:
            c.apply_program_pulse(cell_kernel.window_v)
        bits = sense.sense_page(cells)
        assert bits.dtype == np.uint8
        assert list(bits[:8]) == [0] * 8
        assert list(bits[8:]) == [1] * 8

    def test_margin_distance_from_reference(self, cell_kernel, sense):
        cell = MemoryCell(kernel=cell_kernel)
        assert sense.margin_v(cell) == pytest.approx(
            abs(cell.vt_v - sense.reference_v)
        )


class TestNoise:
    def test_marginal_cell_flips_with_noise(self, cell_kernel, rng):
        noisy = SenseAmplifier(
            reference_v=cell_kernel.erased_vt_v, noise_sigma_v=0.2
        )
        cell = MemoryCell(kernel=cell_kernel)  # sits exactly at reference
        reads = [noisy.sense(cell, rng) for _ in range(200)]
        assert 0 < sum(reads) < 200  # both outcomes observed

    def test_noiseless_read_deterministic(self, cell_kernel, sense, rng):
        cell = MemoryCell(kernel=cell_kernel)
        reads = {sense.sense(cell, rng) for _ in range(20)}
        assert reads == {1}

    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigurationError):
            SenseAmplifier(reference_v=0.0, noise_sigma_v=-0.1)
