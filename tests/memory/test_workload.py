"""Workload generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.memory import (
    sequential_workload,
    uniform_random_workload,
    zipf_workload,
)


class TestSequential:
    def test_wraps_around_capacity(self):
        pages = [
            r.logical_page for r in sequential_workload(10, 4, 8)
        ]
        assert pages == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_payload_width(self):
        for r in sequential_workload(3, 4, 12):
            assert r.bits.size == 12
            assert set(np.unique(r.bits)).issubset({0, 1})


class TestUniform:
    def test_pages_within_capacity(self):
        for r in uniform_random_workload(50, 7, 8):
            assert 0 <= r.logical_page < 7

    def test_covers_most_pages(self):
        pages = {
            r.logical_page for r in uniform_random_workload(300, 8, 8)
        }
        assert len(pages) == 8

    def test_deterministic_for_seed(self):
        a = [r.logical_page for r in uniform_random_workload(20, 8, 8, seed=5)]
        b = [r.logical_page for r in uniform_random_workload(20, 8, 8, seed=5)]
        assert a == b


class TestZipf:
    def test_skew_concentrates_traffic(self):
        pages = [r.logical_page for r in zipf_workload(2000, 64, 8)]
        counts = np.bincount(pages, minlength=64)
        top_share = np.sort(counts)[::-1][:6].sum() / len(pages)
        uniform_share = 6.0 / 64.0
        assert top_share > 3.0 * uniform_share  # far hotter than uniform

    def test_pages_within_capacity(self):
        for r in zipf_workload(100, 16, 8):
            assert 0 <= r.logical_page < 16

    def test_rejects_skew_at_or_below_one(self):
        with pytest.raises(ConfigurationError):
            list(zipf_workload(10, 16, 8, skew=1.0))


class TestValidation:
    @pytest.mark.parametrize(
        "factory", [sequential_workload, uniform_random_workload]
    )
    def test_rejects_nonpositive_sizes(self, factory):
        with pytest.raises(ConfigurationError):
            list(factory(0, 4, 8))
        with pytest.raises(ConfigurationError):
            list(factory(4, 0, 8))
