"""Hamming SEC / SECDED code."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MemoryOperationError
from repro.memory import HammingCode, interleave_decode, interleave_encode


@pytest.fixture()
def code():
    return HammingCode(data_bits=32, extended=True)


def random_bits(n, rng):
    return rng.integers(0, 2, size=n).astype(np.uint8)


class TestRoundTrip:
    def test_clean_round_trip(self, code, rng):
        data = random_bits(32, rng)
        decoded, corrected = code.decode(code.encode(data))
        assert (decoded == data).all()
        assert corrected == 0

    @pytest.mark.parametrize("data_bits", [4, 8, 11, 26, 57, 64])
    def test_various_payload_sizes(self, data_bits, rng):
        code = HammingCode(data_bits)
        data = random_bits(data_bits, rng)
        decoded, _ = code.decode(code.encode(data))
        assert (decoded == data).all()

    def test_all_zeros_and_ones(self, code):
        for value in (0, 1):
            data = np.full(32, value, dtype=np.uint8)
            decoded, _ = code.decode(code.encode(data))
            assert (decoded == data).all()


class TestSingleErrorCorrection:
    def test_every_single_bit_error_corrected(self, code, rng):
        data = random_bits(32, rng)
        word = code.encode(data)
        for position in range(code.codeword_bits):
            corrupted = word.copy()
            corrupted[position] ^= 1
            decoded, corrected = code.decode(corrupted)
            assert (decoded == data).all(), f"failed at bit {position}"
            assert corrected == 1


class TestDoubleErrorDetection:
    def test_double_error_raises(self, code, rng):
        data = random_bits(32, rng)
        word = code.encode(data)
        corrupted = word.copy()
        corrupted[3] ^= 1
        corrupted[17] ^= 1
        with pytest.raises(MemoryOperationError):
            code.decode(corrupted)

    def test_non_extended_code_has_no_dec(self, rng):
        """Plain Hamming miscorrects double errors instead of raising --
        documents why the extended bit matters."""
        code = HammingCode(8, extended=False)
        data = random_bits(8, rng)
        word = code.encode(data)
        word[0] ^= 1
        word[5] ^= 1
        decoded, _ = code.decode(word)
        assert not (decoded == data).all()


class TestGeometry:
    def test_parity_bit_count(self):
        # 32 data bits need r=6 (2^6 = 64 >= 32 + 6 + 1).
        assert HammingCode(32).parity_bits == 6
        # 64 data bits need r=7.
        assert HammingCode(64).parity_bits == 7

    def test_codeword_length(self, code):
        assert code.codeword_bits == 32 + 6 + 1

    def test_overhead_fraction(self, code):
        assert code.overhead_fraction() == pytest.approx(
            1.0 - 32 / 39
        )

    def test_rejects_zero_data_bits(self):
        with pytest.raises(ConfigurationError):
            HammingCode(0)

    def test_rejects_wrong_payload_length(self, code, rng):
        with pytest.raises(MemoryOperationError):
            code.encode(random_bits(31, rng))

    def test_rejects_wrong_codeword_length(self, code, rng):
        with pytest.raises(MemoryOperationError):
            code.decode(random_bits(38, rng))


class TestInterleaving:
    def test_long_page_round_trip(self, rng):
        code = HammingCode(16)
        page = random_bits(100, rng)
        encoded = interleave_encode(code, page)
        decoded, corrected = interleave_decode(code, encoded, 100)
        assert (decoded == page).all()
        assert corrected == 0

    def test_one_error_per_block_all_corrected(self, rng):
        code = HammingCode(16)
        page = random_bits(64, rng)  # 4 blocks
        encoded = interleave_encode(code, page)
        n = code.codeword_bits
        for block in range(4):
            encoded[block * n + 2] ^= 1
        decoded, corrected = interleave_decode(code, encoded, 64)
        assert (decoded == page).all()
        assert corrected == 4

    def test_rejects_misaligned_stream(self, rng):
        code = HammingCode(16)
        with pytest.raises(MemoryOperationError):
            interleave_decode(code, random_bits(10, rng), 8)
