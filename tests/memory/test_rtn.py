"""Random telegraph noise model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.memory import RtnTrap, read_instability_probability


@pytest.fixture()
def symmetric_trap():
    return RtnTrap(
        amplitude_v=0.05, capture_time_s=1e-3, emission_time_s=1e-3
    )


class TestOccupancy:
    def test_symmetric_trap_half_occupied(self, symmetric_trap):
        assert symmetric_trap.occupancy == pytest.approx(0.5)

    def test_fast_emission_rarely_occupied(self):
        trap = RtnTrap(0.05, capture_time_s=1e-2, emission_time_s=1e-4)
        assert trap.occupancy == pytest.approx(1e-4 / (1e-2 + 1e-4))

    def test_single_electron_amplitude_from_device(self, paper_device):
        from repro.constants import ELEMENTARY_CHARGE

        trap = RtnTrap.single_electron_for_device(paper_device)
        expected = ELEMENTARY_CHARGE / paper_device.capacitances.cfc
        assert trap.amplitude_v == pytest.approx(expected)
        # One electron on a ~nm-scale cell is millivolts of Vt.
        assert 1e-4 < trap.amplitude_v < 1.0


class TestTrajectory:
    def test_two_level_waveform(self, symmetric_trap, rng):
        shifts = symmetric_trap.sample_trajectory(1.0, 1e-4, rng)
        assert set(np.unique(shifts)) <= {0.0, 0.05}

    def test_time_average_matches_occupancy(self, symmetric_trap, rng):
        shifts = symmetric_trap.sample_trajectory(5.0, 1e-4, rng)
        fraction_high = float(np.mean(shifts > 0.0))
        assert fraction_high == pytest.approx(
            symmetric_trap.occupancy, abs=0.05
        )

    def test_asymmetric_occupancy_statistics(self, rng):
        trap = RtnTrap(0.05, capture_time_s=1e-4, emission_time_s=1e-3)
        shifts = trap.sample_trajectory(2.0, 1e-5, rng)
        fraction_high = float(np.mean(shifts > 0.0))
        assert fraction_high == pytest.approx(trap.occupancy, abs=0.05)

    def test_switching_events_present(self, symmetric_trap, rng):
        shifts = symmetric_trap.sample_trajectory(1.0, 1e-4, rng)
        transitions = int(np.sum(np.abs(np.diff(shifts)) > 0.0))
        # ~1 ms time constants over 1 s: hundreds of transitions.
        assert transitions > 50

    def test_rejects_bad_grid(self, symmetric_trap, rng):
        with pytest.raises(ConfigurationError):
            symmetric_trap.sample_trajectory(0.0, 1e-4, rng)
        with pytest.raises(ConfigurationError):
            symmetric_trap.sample_trajectory(1e-5, 1e-4, rng)


class TestReadInstability:
    def test_wide_margin_immune(self, symmetric_trap):
        assert read_instability_probability(symmetric_trap, 0.1) == 0.0

    def test_narrow_margin_exposed_at_occupancy(self, symmetric_trap):
        assert read_instability_probability(
            symmetric_trap, 0.01
        ) == pytest.approx(symmetric_trap.occupancy)

    def test_rejects_negative_margin(self, symmetric_trap):
        with pytest.raises(ConfigurationError):
            read_instability_probability(symmetric_trap, -0.1)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            RtnTrap(0.0, 1e-3, 1e-3)
        with pytest.raises(ConfigurationError):
            RtnTrap(0.05, 0.0, 1e-3)
