"""Device-calibrated array cell kernel and cell state machine."""

import pytest

from repro.errors import ConfigurationError, MemoryOperationError
from repro.memory import CellKernel, CellState, MemoryCell, fresh_cells


class TestKernelCalibration:
    def test_window_positive(self, cell_kernel):
        assert cell_kernel.window_v > 1.0

    def test_erased_below_programmed(self, cell_kernel):
        assert cell_kernel.erased_vt_v < cell_kernel.programmed_vt_v

    def test_pulse_shift_smaller_than_window(self, cell_kernel):
        assert (
            0.0
            < cell_kernel.program_pulse_shift_v
            <= cell_kernel.window_v
        )

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ConfigurationError):
            CellKernel(
                erased_vt_v=2.0,
                programmed_vt_v=1.0,
                program_pulse_shift_v=0.5,
                ispp_step_v=0.3,
                pulse_duration_s=1e-4,
            )


class TestCellLifecycle:
    def test_fresh_cell_starts_erased(self, cell_kernel):
        cell = MemoryCell(kernel=cell_kernel)
        assert cell.state is CellState.ERASED
        assert cell.vt_v == pytest.approx(cell_kernel.erased_vt_v)

    def test_program_pulses_raise_vt(self, cell_kernel):
        cell = MemoryCell(kernel=cell_kernel)
        before = cell.vt_v
        cell.apply_program_pulse(0.5)
        assert cell.vt_v == pytest.approx(before + 0.5)

    def test_vt_capped_at_programmed_ceiling(self, cell_kernel):
        cell = MemoryCell(kernel=cell_kernel)
        for _ in range(100):
            cell.apply_program_pulse(2.0)
        assert cell.vt_v <= cell_kernel.programmed_vt_v + 1e-9

    def test_erase_resets_and_counts_cycles(self, cell_kernel, rng):
        cell = MemoryCell(kernel=cell_kernel)
        cell.apply_program_pulse(3.0)
        cell.mark_programmed()
        cell.erase(rng=rng)
        assert cell.state is CellState.ERASED
        assert cell.pe_cycles == 1
        assert cell.vt_v == pytest.approx(
            cell_kernel.erased_vt_v, abs=0.5
        )

    def test_negative_pulse_rejected(self, cell_kernel):
        cell = MemoryCell(kernel=cell_kernel)
        with pytest.raises(MemoryOperationError):
            cell.apply_program_pulse(-0.5)

    def test_read_state_against_reference(self, cell_kernel):
        cell = MemoryCell(kernel=cell_kernel)
        mid = cell_kernel.erased_vt_v + 0.5 * cell_kernel.window_v
        assert cell.read_state(mid) is CellState.ERASED
        cell.apply_program_pulse(cell_kernel.window_v)
        assert cell.read_state(mid) is CellState.PROGRAMMED

    def test_disturb_shifts_threshold(self, cell_kernel):
        cell = MemoryCell(kernel=cell_kernel)
        before = cell.vt_v
        cell.disturb(0.01)
        assert cell.vt_v == pytest.approx(before + 0.01)


class TestManufacture:
    def test_fresh_cells_have_process_variation(self, cell_kernel, rng):
        cells = fresh_cells(cell_kernel, 500, process_sigma_v=0.1, rng=rng)
        import numpy as np

        thresholds = np.array([c.vt_v for c in cells])
        assert thresholds.std() == pytest.approx(0.1, abs=0.02)

    def test_rejects_zero_cells(self, cell_kernel):
        with pytest.raises(ConfigurationError):
            fresh_cells(cell_kernel, 0)
