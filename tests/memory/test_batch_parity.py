"""Randomized parity contracts: every memory batch kernel vs its twin.

Hypothesis draws geometries, seeds and masks -- including the
degenerate single-cell and single-page lanes -- and pins each
``*_batch`` kernel bit-exactly against its ``*_scalar_reference``
per-cell loop on the identical RNG stream, mirroring
``tests/solver/test_poisson_batch.py`` for the memory layer.

Hypothesis ships in the ``dev`` extra; when it is absent the module
skips as a whole (``pytest.importorskip``) instead of failing
collection, so the tier-1 suite still runs on minimal installs.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip(
    "hypothesis", reason="property tests need the dev extra (hypothesis)"
)

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.memory import (  # noqa: E402
    ArrayConfig,
    CellKernel,
    IsppPolicy,
    MlcLevels,
    RtnTrap,
    SenseAmplifier,
    apply_program_disturb_batch,
    apply_program_disturb_scalar_reference,
    apply_read_disturb_batch,
    apply_read_disturb_scalar_reference,
    build_vector_array,
    program_mlc_page_batch,
    program_mlc_page_scalar_reference,
    program_page_batch,
    program_page_scalar_reference,
)

#: Shared geometry strategy: down to one page of one cell.
pages = st.integers(min_value=1, max_value=4)
cells = st.integers(min_value=1, max_value=24)
seeds = st.integers(min_value=0, max_value=2**32 - 1)

KERNEL = CellKernel(
    erased_vt_v=1.0,
    programmed_vt_v=9.0,
    program_pulse_shift_v=0.5,
    ispp_step_v=0.5,
    pulse_duration_s=1e-4,
)


class TestIsppParity:
    @given(n_pages=pages, n_cells=cells, seed=seeds, density=st.floats(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_program_page_matches_scalar(
        self, n_pages, n_cells, seed, density
    ):
        rng = np.random.default_rng(seed)
        vt = rng.normal(1.0, 0.3, size=(n_pages, n_cells))
        select = rng.random((n_pages, n_cells)) < density
        policy = IsppPolicy(
            verify_level_v=4.0, step_v=0.4, first_pulse_shift_v=0.6
        )
        ceiling = 9.0 + rng.normal(0.0, 0.1, size=(n_pages, n_cells))
        batch = program_page_batch(
            vt, select, policy, np.random.default_rng(seed + 1), ceiling
        )
        scalar = program_page_scalar_reference(
            vt, select, policy, np.random.default_rng(seed + 1), ceiling
        )
        np.testing.assert_array_equal(batch.final_vt_v, scalar.final_vt_v)
        np.testing.assert_array_equal(
            batch.pulses_used, scalar.pulses_used
        )
        np.testing.assert_array_equal(
            batch.failed_mask, scalar.failed_mask
        )
        # Inhibited cells pass through bit-exactly.
        np.testing.assert_array_equal(
            batch.final_vt_v[~select], vt[~select]
        )

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_exhausted_pulses_fail_identically(self, seed):
        """An unreachable verify level fails the same way in both paths."""
        rng = np.random.default_rng(seed)
        vt = rng.normal(1.0, 0.2, size=(2, 5))
        select = np.ones((2, 5), dtype=bool)
        policy = IsppPolicy(
            verify_level_v=50.0, step_v=0.3, max_pulses=6
        )
        batch = program_page_batch(
            vt, select, policy, np.random.default_rng(seed), np.inf
        )
        scalar = program_page_scalar_reference(
            vt, select, policy, np.random.default_rng(seed), np.inf
        )
        assert not batch.success and not scalar.success
        np.testing.assert_array_equal(
            batch.failed_mask, scalar.failed_mask
        )
        np.testing.assert_array_equal(batch.final_vt_v, scalar.final_vt_v)


class TestMlcParity:
    @given(n_pages=pages, n_cells=cells, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_staircase_matches_scalar(self, n_pages, n_cells, seed):
        rng = np.random.default_rng(seed)
        levels = MlcLevels.from_kernel(KERNEL)
        targets = rng.integers(0, 4, size=(n_pages, n_cells))
        vt0 = np.full(targets.shape, KERNEL.erased_vt_v)
        vt_b, pulses_b = program_mlc_page_batch(
            vt0, levels, targets, rng=np.random.default_rng(seed + 7)
        )
        vt_s, pulses_s = program_mlc_page_scalar_reference(
            vt0, levels, targets, rng=np.random.default_rng(seed + 7)
        )
        np.testing.assert_array_equal(vt_b, vt_s)
        np.testing.assert_array_equal(pulses_b, pulses_s)
        # L0 cells are never pulsed.
        np.testing.assert_array_equal(
            vt_b[targets == 0], vt0[targets == 0]
        )


class TestSenseParity:
    @given(
        n_pages=pages,
        n_cells=cells,
        seed=seeds,
        sigma=st.sampled_from([0.0, 0.02, 0.3]),
    )
    @settings(max_examples=40, deadline=None)
    def test_sense_page_matches_scalar(
        self, n_pages, n_cells, seed, sigma
    ):
        rng = np.random.default_rng(seed)
        vt = rng.normal(2.0, 2.0, size=(n_pages, n_cells))
        amp = SenseAmplifier(reference_v=2.0, noise_sigma_v=sigma)
        bits_b = amp.sense_page_batch(vt, np.random.default_rng(seed + 3))
        bits_s = amp.sense_page_scalar_reference(
            vt, np.random.default_rng(seed + 3)
        )
        np.testing.assert_array_equal(bits_b, bits_s)

    @given(n_cells=cells, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_noiseless_sense_is_pure_compare(self, n_cells, seed):
        vt = np.random.default_rng(seed).normal(2.0, 2.0, size=(1, n_cells))
        amp = SenseAmplifier(reference_v=2.0, noise_sigma_v=0.0)
        np.testing.assert_array_equal(
            amp.sense_page_batch(vt, None),
            (vt <= 2.0).astype(np.uint8),
        )


class TestDisturbParity:
    @given(
        n_wordlines=st.integers(min_value=1, max_value=6),
        n_cells=cells,
        seed=seeds,
        n_events=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_program_disturb_matches_scalar(
        self, n_wordlines, n_cells, seed, n_events
    ):
        rng = np.random.default_rng(seed)
        vt = rng.normal(1.0, 0.5, size=(n_wordlines, n_cells))
        wordline = int(rng.integers(0, n_wordlines))
        select = rng.random(n_cells) < 0.5
        drift = float(rng.uniform(1e-6, 1e-3))
        vt_b = vt.copy()
        vt_s = vt.copy()
        apply_program_disturb_batch(
            vt_b, wordline, select, drift, n_events=n_events
        )
        apply_program_disturb_scalar_reference(
            vt_s, wordline, select, drift, n_events=n_events
        )
        np.testing.assert_array_equal(vt_b, vt_s)
        # The aggressor word line and unselected bit lines are untouched.
        np.testing.assert_array_equal(vt_b[wordline], vt[wordline])
        np.testing.assert_array_equal(
            vt_b[:, ~select], vt[:, ~select]
        )

    @given(
        n_wordlines=st.integers(min_value=1, max_value=6),
        n_cells=cells,
        seed=seeds,
        n_events=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_read_disturb_matches_scalar(
        self, n_wordlines, n_cells, seed, n_events
    ):
        rng = np.random.default_rng(seed)
        vt = rng.normal(1.0, 0.5, size=(n_wordlines, n_cells))
        wordline = int(rng.integers(0, n_wordlines))
        drift = float(rng.uniform(1e-6, 1e-3))
        vt_b = vt.copy()
        vt_s = vt.copy()
        apply_read_disturb_batch(vt_b, wordline, drift, n_events=n_events)
        apply_read_disturb_scalar_reference(
            vt_s, wordline, drift, n_events=n_events
        )
        np.testing.assert_array_equal(vt_b, vt_s)
        np.testing.assert_array_equal(vt_b[wordline], vt[wordline])


class TestRtnParity:
    @given(
        n_trajectories=st.integers(min_value=1, max_value=12),
        n_steps=st.integers(min_value=1, max_value=200),
        seed=seeds,
        initially_occupied=st.booleans(),
        times=st.sampled_from(
            [(1e-3, 2e-3), (1e-3, 1e-4), (5e-5, 5e-5), (1e-2, 1e-3)]
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_ensemble_lanes_match_scalar(
        self, n_trajectories, n_steps, seed, initially_occupied, times
    ):
        capture_s, emission_s = times
        trap = RtnTrap(
            amplitude_v=0.05,
            capture_time_s=capture_s,
            emission_time_s=emission_s,
        )
        dt_s = capture_s / 10.0
        # Land the duration mid-step so int(duration / dt) is immune to
        # float truncation (81 * 1e-4 / 1e-4 rounds down to 80).
        duration_s = (n_steps + 0.5) * dt_s
        batch = trap.sample_trajectory_batch(
            duration_s,
            dt_s,
            n_trajectories,
            seed=seed,
            initially_occupied=initially_occupied,
        )
        assert batch.shape == (n_trajectories, n_steps)
        for lane in range(n_trajectories):
            scalar = trap.sample_trajectory_scalar_reference(
                duration_s,
                dt_s,
                lane,
                seed=seed,
                initially_occupied=initially_occupied,
            )
            np.testing.assert_array_equal(batch[lane], scalar)

    @given(seed=seeds, lane=st.integers(min_value=0, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_lane_streams_are_order_independent(self, seed, lane):
        """A lane's trajectory does not depend on the ensemble width."""
        trap = RtnTrap(
            amplitude_v=0.05, capture_time_s=1e-3, emission_time_s=2e-3
        )
        wide = trap.sample_trajectory_batch(0.02, 1e-4, lane + 3, seed=seed)
        alone = trap.sample_trajectory_scalar_reference(
            0.02, 1e-4, lane, seed=seed
        )
        np.testing.assert_array_equal(wide[lane], alone)


class TestArrayBackendParity:
    @given(
        seed=seeds,
        bitlines=st.integers(min_value=1, max_value=24),
        wordlines=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_operation_sequence_is_mode_invariant(
        self, seed, bitlines, wordlines
    ):
        """program/read/erase replay bit-exactly across backend modes."""
        config = ArrayConfig(
            n_blocks=2, wordlines_per_block=wordlines, bitlines=bitlines
        )
        patterns = np.random.default_rng(seed).integers(
            0, 2, size=(wordlines, bitlines)
        )

        def run(scalar_reference):
            array = build_vector_array(
                KERNEL,
                config,
                seed=seed,
                scalar_reference=scalar_reference,
            )
            reads = []
            for wl in range(wordlines):
                array.program_page(0, wl, patterns[wl])
                reads.append(array.read_page(0, wl))
            array.erase_block(0)
            array.program_page(0, 0, patterns[0])
            return array, np.array(reads)

        array_b, reads_b = run(False)
        array_s, reads_s = run(True)
        np.testing.assert_array_equal(reads_b, reads_s)
        np.testing.assert_array_equal(
            array_b.state.vt_v, array_s.state.vt_v
        )
        np.testing.assert_array_equal(
            array_b.state.programmed, array_s.state.programmed
        )
        assert array_b.block_erase_counts() == array_s.block_erase_counts()
        np.testing.assert_array_equal(reads_b, patterns)
