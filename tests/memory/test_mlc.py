"""Multi-level cell programming and readout."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MemoryOperationError
from repro.memory import (
    GRAY_BITS,
    MlcLevels,
    bits_to_level,
    fresh_cells,
    level_to_bits,
    program_mlc_page,
    read_mlc_page,
)


@pytest.fixture()
def levels(cell_kernel):
    return MlcLevels.from_kernel(cell_kernel)


class TestLevelLayout:
    def test_four_ascending_targets(self, levels):
        assert len(levels.targets_v) == 4
        assert all(
            a < b for a, b in zip(levels.targets_v, levels.targets_v[1:])
        )

    def test_references_between_adjacent_targets(self, levels):
        for i, ref in enumerate(levels.references_v):
            assert levels.targets_v[i] < ref < levels.targets_v[i + 1]

    def test_targets_inside_window(self, levels, cell_kernel):
        assert levels.targets_v[0] >= cell_kernel.erased_vt_v
        assert levels.targets_v[-1] <= cell_kernel.programmed_vt_v

    def test_level_of_classifies_targets(self, levels):
        for i, target in enumerate(levels.targets_v):
            assert levels.level_of(target) == i

    def test_rejects_bad_guard(self, cell_kernel):
        with pytest.raises(ConfigurationError):
            MlcLevels.from_kernel(cell_kernel, guard_fraction=0.6)


class TestGrayCode:
    def test_round_trip(self):
        for level in range(4):
            msb, lsb = level_to_bits(level)
            assert bits_to_level(msb, lsb) == level

    def test_adjacent_levels_differ_by_one_bit(self):
        for a, b in zip(GRAY_BITS, GRAY_BITS[1:]):
            assert sum(x != y for x, y in zip(a, b)) == 1

    def test_erased_level_is_all_ones(self):
        assert level_to_bits(0) == (1, 1)

    def test_rejects_bad_inputs(self):
        with pytest.raises(MemoryOperationError):
            level_to_bits(4)
        with pytest.raises(MemoryOperationError):
            bits_to_level(2, 0)


class TestProgramRead:
    def test_page_round_trip_all_levels(self, cell_kernel, levels, rng):
        cells = fresh_cells(cell_kernel, 32, process_sigma_v=0.05, rng=rng)
        targets = [i % 4 for i in range(32)]
        pulses = program_mlc_page(cells, levels, targets, rng=rng)
        assert pulses > 0
        msb, lsb = read_mlc_page(cells, levels)
        for i, level in enumerate(targets):
            assert (int(msb[i]), int(lsb[i])) == level_to_bits(level), (
                f"cell {i} target L{level} read as "
                f"({msb[i]}, {lsb[i]}), vt = {cells[i].vt_v:.2f}"
            )

    def test_doubles_capacity_per_cell(self, cell_kernel, levels, rng):
        """32 cells carry 64 bits."""
        cells = fresh_cells(cell_kernel, 32, process_sigma_v=0.05, rng=rng)
        program_mlc_page(cells, levels, [3] * 32, rng=rng)
        msb, lsb = read_mlc_page(cells, levels)
        assert msb.size + lsb.size == 64

    def test_erased_cells_stay_at_l0(self, cell_kernel, levels, rng):
        cells = fresh_cells(cell_kernel, 8, process_sigma_v=0.05, rng=rng)
        program_mlc_page(cells, levels, [0] * 8, rng=rng)
        msb, lsb = read_mlc_page(cells, levels)
        assert (msb == 1).all() and (lsb == 1).all()

    def test_levels_programmed_in_ascending_passes(
        self, cell_kernel, levels, rng
    ):
        """Mixed page: each cell ends at (or just above) its own target,
        not at the highest target of the page."""
        cells = fresh_cells(cell_kernel, 16, process_sigma_v=0.05, rng=rng)
        targets = [1] * 8 + [3] * 8
        program_mlc_page(cells, levels, targets, rng=rng)
        vts = np.array([c.vt_v for c in cells])
        assert vts[:8].max() < levels.references_v[1]
        assert vts[8:].min() > levels.references_v[2]

    def test_rejects_bad_targets(self, cell_kernel, levels, rng):
        cells = fresh_cells(cell_kernel, 4, rng=rng)
        with pytest.raises(MemoryOperationError):
            program_mlc_page(cells, levels, [0, 1, 2], rng=rng)
        with pytest.raises(MemoryOperationError):
            program_mlc_page(cells, levels, [0, 1, 2, 5], rng=rng)
