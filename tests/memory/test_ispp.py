"""ISPP program-verify loop."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MemoryOperationError
from repro.memory import CellState, IsppPolicy, fresh_cells, program_cells


@pytest.fixture()
def policy(cell_kernel):
    return IsppPolicy(
        verify_level_v=cell_kernel.erased_vt_v + 0.6 * cell_kernel.window_v,
        step_v=0.3,
        first_pulse_shift_v=0.5,
        noise_sigma_v=0.03,
    )


class TestProgramming:
    def test_all_selected_cells_verify(self, cell_kernel, policy, rng):
        cells = fresh_cells(cell_kernel, 32, rng=rng)
        outcome = program_cells(cells, [True] * 32, policy, rng)
        assert outcome.success
        for cell in cells:
            assert cell.state is CellState.PROGRAMMED
            assert cell.vt_v >= policy.verify_level_v

    def test_inhibited_cells_untouched(self, cell_kernel, policy, rng):
        cells = fresh_cells(cell_kernel, 16, rng=rng)
        before = [c.vt_v for c in cells]
        mask = [i % 2 == 0 for i in range(16)]
        program_cells(cells, mask, policy, rng)
        for i, (cell, b) in enumerate(zip(cells, before)):
            if not mask[i]:
                assert cell.vt_v == pytest.approx(b)
                assert cell.state is CellState.ERASED

    def test_verify_tightens_distribution(self, cell_kernel, policy, rng):
        """Post-ISPP spread is set by the step size, not by the (larger)
        process variation."""
        cells = fresh_cells(
            cell_kernel, 200, process_sigma_v=0.3, rng=rng
        )
        before_spread = np.std([c.vt_v for c in cells])
        program_cells(cells, [True] * 200, policy, rng)
        after_spread = np.std([c.vt_v for c in cells])
        assert after_spread < before_spread

    def test_slow_cells_get_more_pulses(self, cell_kernel, rng):
        """A higher verify level costs extra pulses."""
        low = IsppPolicy(
            verify_level_v=cell_kernel.erased_vt_v
            + 0.3 * cell_kernel.window_v,
            first_pulse_shift_v=0.4,
            step_v=0.3,
        )
        high = IsppPolicy(
            verify_level_v=cell_kernel.erased_vt_v
            + 0.8 * cell_kernel.window_v,
            first_pulse_shift_v=0.4,
            step_v=0.3,
        )
        cells_a = fresh_cells(cell_kernel, 16, rng=np.random.default_rng(3))
        cells_b = fresh_cells(cell_kernel, 16, rng=np.random.default_rng(3))
        p_low = program_cells(cells_a, [True] * 16, low, rng)
        p_high = program_cells(cells_b, [True] * 16, high, rng)
        assert p_high.pulses_used > p_low.pulses_used

    def test_unreachable_verify_reports_failures(self, cell_kernel, rng):
        policy = IsppPolicy(
            verify_level_v=cell_kernel.programmed_vt_v + 50.0,
            max_pulses=4,
        )
        cells = fresh_cells(cell_kernel, 8, rng=rng)
        outcome = program_cells(cells, [True] * 8, policy, rng)
        assert not outcome.success
        assert len(outcome.failed_cells) == 8


class TestValidation:
    def test_mask_length_mismatch(self, cell_kernel, policy, rng):
        cells = fresh_cells(cell_kernel, 4, rng=rng)
        with pytest.raises(MemoryOperationError):
            program_cells(cells, [True] * 3, policy, rng)

    def test_rejects_bad_policy(self):
        with pytest.raises(ConfigurationError):
            IsppPolicy(verify_level_v=1.0, step_v=0.0)
        with pytest.raises(ConfigurationError):
            IsppPolicy(verify_level_v=1.0, max_pulses=0)
