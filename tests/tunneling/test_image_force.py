"""Image-force barrier lowering."""

import pytest

from repro.errors import ConfigurationError
from repro.tunneling import (
    TunnelBarrier,
    effective_barrier_ev,
    image_rounded_profile,
    schottky_lowering_ev,
)
from repro.units import ev_to_j, nm_to_m


@pytest.fixture()
def barrier():
    return TunnelBarrier(3.61, nm_to_m(5.0), 0.42, relative_permittivity=3.9)


class TestSchottkyLowering:
    def test_square_root_field_dependence(self):
        d1 = schottky_lowering_ev(1e9, 3.9)
        d2 = schottky_lowering_ev(4e9, 3.9)
        assert d2 == pytest.approx(2.0 * d1, rel=1e-9)

    def test_magnitude_at_programming_field(self):
        """Sub-eV at the paper's 1.8e9 V/m programming field in SiO2:
        a real but secondary correction to the 3.6 eV barrier."""
        delta = schottky_lowering_ev(1.8e9, 3.9)
        assert 0.2 < delta < 1.0

    def test_zero_field_no_lowering(self):
        assert schottky_lowering_ev(0.0, 3.9) == 0.0

    def test_higher_permittivity_lowers_less(self):
        assert schottky_lowering_ev(1e9, 25.0) < schottky_lowering_ev(
            1e9, 3.9
        )

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            schottky_lowering_ev(-1.0, 3.9)
        with pytest.raises(ConfigurationError):
            schottky_lowering_ev(1e9, 0.0)


class TestEffectiveBarrier:
    def test_lowered_but_positive(self, barrier):
        eff = effective_barrier_ev(barrier, 1.5e9)
        assert 0.0 < eff < barrier.barrier_height_ev

    def test_raises_when_barrier_collapses(self, barrier):
        with pytest.raises(ConfigurationError):
            effective_barrier_ev(barrier, 1e13)


class TestRoundedProfile:
    def test_profile_below_triangular(self, barrier):
        field = 1e9
        rounded = image_rounded_profile(barrier, field)
        triangular = barrier.profile_under_bias(field)
        for x_nm in (0.5, 1.0, 2.0):
            x = nm_to_m(x_nm)
            assert rounded(x) < triangular(x)

    def test_peak_below_nominal_barrier(self, barrier):
        rounded = image_rounded_profile(barrier, 1e9)
        peak = max(rounded(nm_to_m(x)) for x in
                   [0.05 * i for i in range(1, 60)])
        assert peak < ev_to_j(barrier.barrier_height_ev)

    def test_rejects_negative_field(self, barrier):
        with pytest.raises(ConfigurationError):
            image_rounded_profile(barrier, -1e8)
