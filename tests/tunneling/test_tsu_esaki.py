"""Tsu-Esaki numerical current vs the FN closed form."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tunneling import (
    FowlerNordheimModel,
    TsuEsakiModel,
    TunnelBarrier,
    transmission_model,
)
from repro.units import nm_to_m


@pytest.fixture(scope="module")
def barrier():
    return TunnelBarrier(
        barrier_height_ev=3.2, thickness_m=nm_to_m(5.0), mass_ratio=0.42
    )


class TestTransmission:
    def test_transmission_increases_with_energy(self, barrier):
        te = TsuEsakiModel(barrier)
        t_low = te.transmission(0.05, 9.0)
        t_high = te.transmission(0.25, 9.0)
        assert 0.0 <= t_low < t_high <= 1.0

    def test_transmission_increases_with_bias(self, barrier):
        te = TsuEsakiModel(barrier)
        assert te.transmission(0.2, 10.0) > te.transmission(0.2, 7.0)

    def test_wkb_and_tm_within_an_order(self, barrier):
        tm = TsuEsakiModel(barrier, method="transfer_matrix")
        wkb = TsuEsakiModel(barrier, method="wkb")
        t1 = tm.transmission(0.2, 9.0)
        t2 = wkb.transmission(0.2, 9.0)
        assert t1 / t2 < 10.0 and t2 / t1 < 10.0

    def test_factory_returns_callable(self, barrier):
        t = transmission_model(barrier, "wkb")
        assert 0.0 <= t(0.2, 9.0) <= 1.0

    def test_rejects_negative_bias(self, barrier):
        te = TsuEsakiModel(barrier)
        with pytest.raises(ConfigurationError):
            te.transmission(0.2, -1.0)


class TestCurrent:
    @pytest.mark.parametrize("v_ox", [7.0, 9.0])
    def test_tracks_fn_within_a_decade(self, barrier, v_ox):
        """The paper's closed form should agree with the full integral
        to within an order of magnitude in the programming window."""
        fn = FowlerNordheimModel(barrier)
        te = TsuEsakiModel(barrier, n_energy=120, n_slabs=40)
        j_fn = fn.current_density_from_voltage(v_ox)
        j_te = te.current_density_from_voltage(v_ox)
        assert j_te > 0.0
        assert 0.1 < j_fn / j_te < 10.0

    def test_current_signed_with_voltage(self, barrier):
        te = TsuEsakiModel(barrier, n_energy=60, n_slabs=30)
        assert te.current_density_from_voltage(-8.0) < 0.0

    def test_zero_bias_zero_current(self, barrier):
        te = TsuEsakiModel(barrier)
        assert te.current_density_from_voltage(0.0) == 0.0

    def test_monotonic_in_voltage(self, barrier):
        te = TsuEsakiModel(barrier, n_energy=80, n_slabs=30)
        j1 = te.current_density_from_voltage(7.0)
        j2 = te.current_density_from_voltage(9.0)
        assert j2 > j1


class TestVectorizedParity:
    """The batched energy integral against the retained scalar loop."""

    @pytest.mark.parametrize("method", ["wkb", "transfer_matrix"])
    def test_current_matches_scalar_reference(self, barrier, method):
        te = TsuEsakiModel(barrier, method=method, n_energy=48, n_slabs=24)
        for v_ox in (-9.0, 0.0, 7.0, 10.0):
            assert te.current_density_from_voltage(v_ox) == pytest.approx(
                te.current_density_scalar_reference(v_ox), rel=1e-9, abs=0.0
            )

    @pytest.mark.parametrize("method", ["wkb", "transfer_matrix"])
    def test_batch_matches_per_voltage(self, barrier, method):
        te = TsuEsakiModel(barrier, method=method, n_energy=48, n_slabs=24)
        voltages = np.array([-8.0, 0.0, 6.5, 9.0])
        batch = te.current_density_batch(voltages)
        per_voltage = np.array(
            [te.current_density_from_voltage(float(v)) for v in voltages]
        )
        np.testing.assert_allclose(
            batch, per_voltage, rtol=1e-9, atol=0.0
        )

    @pytest.mark.parametrize("method", ["wkb", "transfer_matrix"])
    @pytest.mark.parametrize("seed", range(3))
    def test_randomized_barriers(self, method, seed):
        rng = np.random.default_rng(seed)
        random_barrier = TunnelBarrier(
            barrier_height_ev=float(rng.uniform(2.0, 4.5)),
            thickness_m=nm_to_m(float(rng.uniform(2.0, 7.0))),
            mass_ratio=float(rng.uniform(0.2, 0.8)),
        )
        te = TsuEsakiModel(
            random_barrier, method=method, n_energy=32, n_slabs=16
        )
        v_ox = float(rng.uniform(5.0, 11.0))
        assert te.current_density_from_voltage(v_ox) == pytest.approx(
            te.current_density_scalar_reference(v_ox), rel=1e-9
        )

    def test_transmission_batch_matches_scalar(self, barrier):
        te = TsuEsakiModel(barrier, n_slabs=24)
        energies = np.linspace(0.01, 0.4, 11)
        batch = te.transmission_batch(energies, 9.0)
        scalar = np.array(
            [te.transmission(float(e), 9.0) for e in energies]
        )
        np.testing.assert_allclose(batch, scalar, rtol=1e-9, atol=0.0)

    def test_supply_batch_matches_scalar(self, barrier):
        te = TsuEsakiModel(barrier)
        energies = np.linspace(0.01, 0.5, 7)
        batch = te.supply_function_batch(energies, 9.0)
        scalar = np.array(
            [te.supply_function(float(e), 9.0) for e in energies]
        )
        np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=0.0)

    def test_transmission_batch_rejects_negative_bias(self, barrier):
        te = TsuEsakiModel(barrier)
        with pytest.raises(ConfigurationError):
            te.transmission_batch(np.array([0.2]), -1.0)


class TestValidation:
    def test_rejects_bad_settings(self, barrier):
        with pytest.raises(ConfigurationError):
            TsuEsakiModel(barrier, emitter_fermi_ev=0.0)
        with pytest.raises(ConfigurationError):
            TsuEsakiModel(barrier, temperature_k=-5.0)
        with pytest.raises(ConfigurationError):
            TsuEsakiModel(barrier, n_energy=2)
