"""Tsu-Esaki numerical current vs the FN closed form."""

import pytest

from repro.errors import ConfigurationError
from repro.tunneling import (
    FowlerNordheimModel,
    TsuEsakiModel,
    TunnelBarrier,
    transmission_model,
)
from repro.units import nm_to_m


@pytest.fixture(scope="module")
def barrier():
    return TunnelBarrier(
        barrier_height_ev=3.2, thickness_m=nm_to_m(5.0), mass_ratio=0.42
    )


class TestTransmission:
    def test_transmission_increases_with_energy(self, barrier):
        te = TsuEsakiModel(barrier)
        t_low = te.transmission(0.05, 9.0)
        t_high = te.transmission(0.25, 9.0)
        assert 0.0 <= t_low < t_high <= 1.0

    def test_transmission_increases_with_bias(self, barrier):
        te = TsuEsakiModel(barrier)
        assert te.transmission(0.2, 10.0) > te.transmission(0.2, 7.0)

    def test_wkb_and_tm_within_an_order(self, barrier):
        tm = TsuEsakiModel(barrier, method="transfer_matrix")
        wkb = TsuEsakiModel(barrier, method="wkb")
        t1 = tm.transmission(0.2, 9.0)
        t2 = wkb.transmission(0.2, 9.0)
        assert t1 / t2 < 10.0 and t2 / t1 < 10.0

    def test_factory_returns_callable(self, barrier):
        t = transmission_model(barrier, "wkb")
        assert 0.0 <= t(0.2, 9.0) <= 1.0

    def test_rejects_negative_bias(self, barrier):
        te = TsuEsakiModel(barrier)
        with pytest.raises(ConfigurationError):
            te.transmission(0.2, -1.0)


class TestCurrent:
    @pytest.mark.parametrize("v_ox", [7.0, 9.0])
    def test_tracks_fn_within_a_decade(self, barrier, v_ox):
        """The paper's closed form should agree with the full integral
        to within an order of magnitude in the programming window."""
        fn = FowlerNordheimModel(barrier)
        te = TsuEsakiModel(barrier, n_energy=120, n_slabs=40)
        j_fn = fn.current_density_from_voltage(v_ox)
        j_te = te.current_density_from_voltage(v_ox)
        assert j_te > 0.0
        assert 0.1 < j_fn / j_te < 10.0

    def test_current_signed_with_voltage(self, barrier):
        te = TsuEsakiModel(barrier, n_energy=60, n_slabs=30)
        assert te.current_density_from_voltage(-8.0) < 0.0

    def test_zero_bias_zero_current(self, barrier):
        te = TsuEsakiModel(barrier)
        assert te.current_density_from_voltage(0.0) == 0.0

    def test_monotonic_in_voltage(self, barrier):
        te = TsuEsakiModel(barrier, n_energy=80, n_slabs=30)
        j1 = te.current_density_from_voltage(7.0)
        j2 = te.current_density_from_voltage(9.0)
        assert j2 > j1


class TestValidation:
    def test_rejects_bad_settings(self, barrier):
        with pytest.raises(ConfigurationError):
            TsuEsakiModel(barrier, emitter_fermi_ev=0.0)
        with pytest.raises(ConfigurationError):
            TsuEsakiModel(barrier, temperature_k=-5.0)
        with pytest.raises(ConfigurationError):
            TsuEsakiModel(barrier, n_energy=2)
