"""Trap-assisted tunneling model."""

import pytest

from repro.errors import ConfigurationError
from repro.tunneling import TrapAssistedModel, TunnelBarrier
from repro.units import nm_to_m


@pytest.fixture()
def barrier():
    return TunnelBarrier(3.61, nm_to_m(5.0), 0.42)


class TestScaling:
    def test_linear_in_trap_density(self, barrier):
        j1 = TrapAssistedModel(barrier, trap_density_m2=1e13).current_density(
            5e8
        )
        j2 = TrapAssistedModel(barrier, trap_density_m2=2e13).current_density(
            5e8
        )
        assert j2 == pytest.approx(2.0 * j1, rel=1e-9)

    def test_zero_traps_zero_current(self, barrier):
        model = TrapAssistedModel(barrier, trap_density_m2=0.0)
        assert model.current_density(5e8) == 0.0

    def test_increases_with_field(self, barrier):
        model = TrapAssistedModel(barrier)
        assert model.current_density(8e8) > model.current_density(3e8)

    def test_shallower_traps_conduct_more(self, barrier):
        """trap_depth_ev measures how far *below* the oxide conduction
        band the trap sits: deeper traps leave a taller residual barrier
        for both hops."""
        shallow = TrapAssistedModel(barrier, trap_depth_ev=0.8)
        deep = TrapAssistedModel(barrier, trap_depth_ev=2.0)
        assert shallow.current_density(5e8) > deep.current_density(5e8)

    def test_trap_position_changes_rate(self, barrier):
        """In a tilted barrier a trap near the emitter splits the
        forbidden region while the field opens the exit side, so the
        near-emitter trap out-conducts the mid-oxide one."""
        mid = TrapAssistedModel(
            barrier, trap_position_fraction=0.5
        ).current_density(5e8)
        near = TrapAssistedModel(
            barrier, trap_position_fraction=0.1
        ).current_density(5e8)
        assert near > mid > 0.0


class TestValidation:
    def test_rejects_trap_outside_oxide(self, barrier):
        with pytest.raises(ConfigurationError):
            TrapAssistedModel(barrier, trap_position_fraction=1.5)

    def test_rejects_negative_density(self, barrier):
        with pytest.raises(ConfigurationError):
            TrapAssistedModel(barrier, trap_density_m2=-1.0)

    def test_rejects_negative_field(self, barrier):
        with pytest.raises(ConfigurationError):
            TrapAssistedModel(barrier).current_density(-1e8)


class TestBatchParity:
    """The vectorized field path against the scalar trapezoid loop."""

    def test_matches_scalar_over_random_fields(self, barrier):
        import numpy as np

        rng = np.random.default_rng(5)
        model = TrapAssistedModel(barrier, trap_density_m2=1e14)
        fields = rng.uniform(0.0, 2e9, size=12)
        batch = model.current_density_batch(fields)
        scalar = np.array(
            [model.current_density(float(f)) for f in fields]
        )
        np.testing.assert_allclose(batch, scalar, rtol=1e-9, atol=0.0)

    def test_zero_density_shortcut(self, barrier):
        import numpy as np

        model = TrapAssistedModel(barrier, trap_density_m2=0.0)
        np.testing.assert_array_equal(
            model.current_density_batch(np.array([1e8, 1e9])), np.zeros(2)
        )

    def test_shape_preserved(self, barrier):
        import numpy as np

        model = TrapAssistedModel(barrier)
        fields = np.full((2, 3), 8e8)
        assert model.current_density_batch(fields).shape == (2, 3)

    def test_rejects_negative_fields(self, barrier):
        import numpy as np

        with pytest.raises(ConfigurationError):
            TrapAssistedModel(barrier).current_density_batch(
                np.array([1e8, -1.0])
            )
