"""Tunnel barrier descriptions."""

import pytest

from repro.constants import ELECTRON_MASS, ELEMENTARY_CHARGE
from repro.errors import ConfigurationError
from repro.materials import SIO2
from repro.tunneling import TunnelBarrier
from repro.units import ev_to_j, nm_to_m


@pytest.fixture()
def barrier():
    return TunnelBarrier(
        barrier_height_ev=3.2, thickness_m=nm_to_m(5.0), mass_ratio=0.42
    )


class TestConstruction:
    def test_derived_quantities(self, barrier):
        assert barrier.barrier_height_j == pytest.approx(ev_to_j(3.2))
        assert barrier.mass_kg == pytest.approx(0.42 * ELECTRON_MASS)

    def test_from_materials_uses_affinity_rule(self):
        b = TunnelBarrier.from_materials(4.56, SIO2, nm_to_m(5.0))
        assert b.barrier_height_ev == pytest.approx(3.61)
        assert b.mass_ratio == SIO2.tunneling_mass_ratio
        assert b.relative_permittivity == SIO2.relative_permittivity

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(barrier_height_ev=0.0, thickness_m=1e-9),
            dict(barrier_height_ev=3.0, thickness_m=0.0),
            dict(barrier_height_ev=3.0, thickness_m=1e-9, mass_ratio=0.0),
        ],
    )
    def test_rejects_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            TunnelBarrier(**kwargs)


class TestFieldVoltage:
    def test_field_voltage_round_trip(self, barrier):
        v = 9.0
        e = barrier.field_for_voltage(v)
        assert barrier.voltage_drop_for_field(e) == pytest.approx(v)

    def test_paper_operating_point_field(self, barrier):
        """9 V across 5 nm = 1.8e9 V/m (paper Section III numbers)."""
        assert barrier.field_for_voltage(9.0) == pytest.approx(1.8e9)


class TestProfile:
    def test_profile_is_triangular(self, barrier):
        field = 1e9
        profile = barrier.profile_under_bias(field)
        assert profile(0.0) == pytest.approx(barrier.barrier_height_j)
        drop = profile(0.0) - profile(nm_to_m(1.0))
        assert drop == pytest.approx(
            ELEMENTARY_CHARGE * field * nm_to_m(1.0)
        )

    def test_profile_rejects_negative_field(self, barrier):
        with pytest.raises(ConfigurationError):
            barrier.profile_under_bias(-1.0)


class TestApparentThinning:
    def test_exit_thickness_shorter_at_high_field(self, barrier):
        """V_ox > phi_B: electrons exit before the far interface."""
        field = barrier.field_for_voltage(9.0)
        exit_at = barrier.exit_thickness_m(field)
        assert exit_at < barrier.thickness_m
        # phi_B / E = 3.2 / 1.8e9 m
        assert exit_at == pytest.approx(3.2 / 1.8e9, rel=1e-9)

    def test_exit_thickness_full_at_low_field(self, barrier):
        field = barrier.field_for_voltage(1.0)
        assert barrier.exit_thickness_m(field) == barrier.thickness_m

    def test_fn_condition(self, barrier):
        assert barrier.is_fowler_nordheim(9.0)
        assert barrier.is_fowler_nordheim(-9.0)
        assert not barrier.is_fowler_nordheim(2.0)
