"""Direct (trapezoidal-barrier) tunneling model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tunneling import (
    DirectTunnelingModel,
    FowlerNordheimModel,
    TunnelBarrier,
)
from repro.units import nm_to_m


@pytest.fixture()
def thin_barrier():
    return TunnelBarrier(
        barrier_height_ev=3.2, thickness_m=nm_to_m(3.0), mass_ratio=0.42
    )


class TestContinuityWithFn:
    def test_equals_fn_at_barrier_voltage(self, thin_barrier):
        """At V_ox = phi_B the trapezoid degenerates to the triangle."""
        dt = DirectTunnelingModel(thin_barrier)
        fn = FowlerNordheimModel(thin_barrier)
        v = thin_barrier.barrier_height_ev
        assert dt.current_density_from_voltage(v) == pytest.approx(
            fn.current_density_from_voltage(v), rel=1e-12
        )

    def test_equals_fn_above_barrier_voltage(self, thin_barrier):
        dt = DirectTunnelingModel(thin_barrier)
        fn = FowlerNordheimModel(thin_barrier)
        assert dt.current_density_from_voltage(6.0) == pytest.approx(
            fn.current_density_from_voltage(6.0), rel=1e-12
        )

    def test_below_barrier_trapezoid_exceeds_fn_extrapolation(
        self, thin_barrier
    ):
        """For V < phi_B the real barrier ends at the far oxide face, so
        its WKB action is smaller than the full (fictitious) triangle the
        FN formula integrates; the trapezoid passes *more* current than
        the naive FN extrapolation."""
        dt = DirectTunnelingModel(thin_barrier)
        fn = FowlerNordheimModel(thin_barrier)
        v = 1.5
        assert dt.current_density_from_voltage(
            v
        ) > fn.current_density_from_voltage(v)


class TestShape:
    def test_monotonic_in_voltage(self, thin_barrier):
        dt = DirectTunnelingModel(thin_barrier)
        v = np.linspace(0.2, 5.0, 60)
        j = dt.current_density_from_voltage(v)
        assert np.all(np.diff(j) > 0.0)

    def test_odd_in_voltage(self, thin_barrier):
        dt = DirectTunnelingModel(thin_barrier)
        assert dt.current_density_from_voltage(
            -2.0
        ) == pytest.approx(-dt.current_density_from_voltage(2.0))

    def test_zero_at_zero_bias(self, thin_barrier):
        dt = DirectTunnelingModel(thin_barrier)
        assert dt.current_density_from_voltage(0.0) == 0.0

    def test_thinner_oxide_conducts_more(self):
        thick = DirectTunnelingModel(TunnelBarrier(3.2, nm_to_m(5.0)))
        thin = DirectTunnelingModel(TunnelBarrier(3.2, nm_to_m(2.0)))
        assert thin.current_density_from_voltage(
            1.0
        ) > 1e3 * thick.current_density_from_voltage(1.0)


class TestSuppressionFactor:
    def test_zero_at_zero_bias(self, thin_barrier):
        dt = DirectTunnelingModel(thin_barrier)
        assert dt.suppression_vs_fn(0.0) == pytest.approx(0.0)

    def test_one_at_barrier_voltage(self, thin_barrier):
        dt = DirectTunnelingModel(thin_barrier)
        assert dt.suppression_vs_fn(
            thin_barrier.barrier_height_ev
        ) == pytest.approx(1.0)

    def test_monotonic(self, thin_barrier):
        dt = DirectTunnelingModel(thin_barrier)
        values = [dt.suppression_vs_fn(v) for v in (0.5, 1.0, 2.0, 3.0)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_rejects_negative_voltage(self, thin_barrier):
        dt = DirectTunnelingModel(thin_barrier)
        with pytest.raises(ConfigurationError):
            dt.suppression_vs_fn(-1.0)
