"""Fowler-Nordheim model: coefficients, shape and inversion.

The paper's core equations (1), (4)-(7).
"""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tunneling import (
    FowlerNordheimModel,
    TunnelBarrier,
    fn_coefficient_a,
    fn_coefficient_b,
)
from repro.units import nm_to_m


@pytest.fixture()
def model(sio2_barrier):
    return FowlerNordheimModel(sio2_barrier)


class TestCoefficients:
    def test_b_matches_sio2_literature(self):
        """B for Si/SiO2 (phi_B 3.15 eV, m 0.42 m0) is ~2.3-2.6e10 V/m
        (~240 MV/cm), the Lenzlinger-Snow experimental range."""
        b = fn_coefficient_b(3.15, 0.42)
        assert 2.2e10 < b < 2.7e10

    def test_a_inverse_in_barrier_height(self):
        assert fn_coefficient_a(2.0) == pytest.approx(
            2.0 * fn_coefficient_a(4.0), rel=1e-12
        )

    def test_b_scales_as_phi_to_three_halves(self):
        ratio = fn_coefficient_b(4.0, 0.42) / fn_coefficient_b(1.0, 0.42)
        assert ratio == pytest.approx(8.0, rel=1e-12)

    def test_b_scales_as_sqrt_mass(self):
        ratio = fn_coefficient_b(3.0, 0.84) / fn_coefficient_b(3.0, 0.42)
        assert ratio == pytest.approx(math.sqrt(2.0), rel=1e-12)

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            fn_coefficient_a(0.0)
        with pytest.raises(ConfigurationError):
            fn_coefficient_b(3.0, -0.1)


class TestCurrentShape:
    def test_zero_field_zero_current(self, model):
        assert model.current_density(0.0) == 0.0

    def test_monotonic_in_field(self, model):
        fields = np.linspace(5e8, 2e9, 40)
        j = model.current_density(fields)
        assert np.all(np.diff(j) > 0.0)

    def test_exponential_dominates(self, model):
        """Doubling the field gains far more than the quadratic factor."""
        j1 = model.current_density(6e8)
        j2 = model.current_density(1.2e9)
        assert j2 / j1 > 100.0

    def test_exact_formula_value(self, model):
        field = 1.0e9
        a, b = model.coefficient_a, model.coefficient_b
        expected = a * field**2 * math.exp(-b / field)
        assert model.current_density(field) == pytest.approx(expected)

    def test_array_and_scalar_agree(self, model):
        fields = np.array([7e8, 1.1e9])
        j_arr = model.current_density(fields)
        assert j_arr[0] == pytest.approx(model.current_density(7e8))
        assert j_arr[1] == pytest.approx(model.current_density(1.1e9))

    def test_rejects_negative_field(self, model):
        with pytest.raises(ConfigurationError):
            model.current_density(-1e9)


class TestVoltageForm:
    def test_signed_current_follows_voltage_sign(self, model):
        assert model.current_density_from_voltage(9.0) > 0.0
        assert model.current_density_from_voltage(-9.0) < 0.0

    def test_odd_symmetry(self, model):
        j_pos = model.current_density_from_voltage(9.0)
        j_neg = model.current_density_from_voltage(-9.0)
        assert j_pos == pytest.approx(-j_neg)

    def test_equation7_field_mapping(self, model):
        """J(V) must equal J(E = V / X_TO) (paper eqs. (5)-(7))."""
        v = 8.0
        e = v / model.barrier.thickness_m
        assert model.current_density_from_voltage(v) == pytest.approx(
            model.current_density(e)
        )

    def test_thinner_oxide_higher_current_at_same_voltage(self):
        thick = FowlerNordheimModel(
            TunnelBarrier(3.61, nm_to_m(7.0), 0.42)
        )
        thin = FowlerNordheimModel(TunnelBarrier(3.61, nm_to_m(4.0), 0.42))
        v = 9.0
        assert thin.current_density_from_voltage(
            v
        ) > 1e3 * thick.current_density_from_voltage(v)


class TestBarrierDependence:
    def test_higher_barrier_lower_current(self):
        """Paper: 'higher phi_B leads to significantly lower J_FN'."""
        low = FowlerNordheimModel(TunnelBarrier(2.5, nm_to_m(5.0), 0.42))
        high = FowlerNordheimModel(TunnelBarrier(4.0, nm_to_m(5.0), 0.42))
        e = 1e9
        assert low.current_density(e) > 100.0 * high.current_density(e)


class TestInversion:
    def test_field_for_target_current_round_trip(self, model):
        target = 1e4
        field = model.field_for_target_current(target)
        assert model.current_density(field) == pytest.approx(
            target, rel=1e-6
        )

    def test_rejects_nonpositive_target(self, model):
        with pytest.raises(ConfigurationError):
            model.field_for_target_current(0.0)
