"""Channel-hot-electron injection (lucky-electron model)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.tunneling import (
    CheOperatingPoint,
    LuckyElectronModel,
    compare_che_to_fn,
)


@pytest.fixture()
def model():
    return LuckyElectronModel(barrier_height_ev=3.1)


class TestInjectionProbability:
    def test_zero_at_zero_field(self, model):
        assert model.injection_probability(0.0) == 0.0

    def test_monotonic_in_field(self, model):
        assert model.injection_probability(
            2e8
        ) > model.injection_probability(1e8)

    def test_bounded_by_prefactor(self, model):
        assert (
            model.injection_probability(1e12)
            <= model.injection_prefactor
        )

    def test_lucky_electron_exponent(self, model):
        """P(E) must follow exp(-phi/(q lambda E)) exactly."""
        e1, e2 = 1.0e8, 2.0e8
        p1 = model.injection_probability(e1)
        p2 = model.injection_probability(e2)
        phi_over_ql = 3.1 / model.mean_free_path_m  # in V/m units
        expected_log_ratio = phi_over_ql * (1.0 / e1 - 1.0 / e2)
        assert math.log(p2 / p1) == pytest.approx(
            expected_log_ratio, rel=1e-9
        )

    def test_higher_barrier_suppresses_injection(self):
        """At the paper's NOR field (5 V / 40 nm = 1.25e8 V/m) the hot
        electrons carry ~1.1 eV per mean free path, so 0.5 eV of extra
        barrier costs a factor exp(0.5/1.125) ~ 1.6; at weaker fields
        the suppression grows exponentially."""
        low = LuckyElectronModel(barrier_height_ev=3.1)
        high = LuckyElectronModel(barrier_height_ev=3.6)
        nor_field = 1.25e8
        assert low.injection_probability(
            nor_field
        ) > 1.5 * high.injection_probability(nor_field)
        weak_field = 2.0e7
        assert low.injection_probability(
            weak_field
        ) > 10.0 * high.injection_probability(weak_field)

    def test_field_inversion_round_trip(self, model):
        target = 1e-6
        field = model.required_field_for_probability(target)
        assert model.injection_probability(field) == pytest.approx(
            target, rel=1e-9
        )


class TestGateCurrent:
    def test_proportional_to_drain_current(self, model):
        field = 1.25e8
        assert model.gate_current_a(1e-3, field) == pytest.approx(
            2.0 * model.gate_current_a(5e-4, field)
        )

    def test_rejects_negative_drain_current(self, model):
        with pytest.raises(ConfigurationError):
            model.gate_current_a(-1.0, 1e8)


class TestPaperComparison:
    def test_paper_operating_point_field(self):
        """5 V over a 40 nm pinch-off region: 1.25e8 V/m."""
        op = CheOperatingPoint()
        assert op.lateral_field_v_per_m == pytest.approx(1.25e8)

    def test_che_needs_far_more_supply_current_than_fn(self, model):
        """Paper: CHE drives 0.3-1 mA through the cell; FN programs with
        < 1 nA. The supply-current ratio is therefore > 1e5."""
        comparison = compare_che_to_fn(
            model, CheOperatingPoint(), fn_cell_current_a=1e-9
        )
        assert comparison["supply_current_ratio"] > 1e5

    def test_injection_efficiency_far_below_one(self, model):
        comparison = compare_che_to_fn(
            model, CheOperatingPoint(), fn_cell_current_a=1e-9
        )
        assert comparison["che_injection_efficiency"] < 1e-2

    def test_rejects_nonpositive_fn_current(self, model):
        with pytest.raises(ConfigurationError):
            compare_che_to_fn(model, CheOperatingPoint(), 0.0)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            LuckyElectronModel(barrier_height_ev=0.0)
        with pytest.raises(ConfigurationError):
            LuckyElectronModel(3.1, mean_free_path_m=0.0)
        with pytest.raises(ConfigurationError):
            LuckyElectronModel(3.1, injection_prefactor=2.0)

    def test_probability_inversion_range_checked(self, model):
        with pytest.raises(ConfigurationError):
            model.required_field_for_probability(1.0)
