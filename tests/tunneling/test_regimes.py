"""Conduction-regime classification (paper Section II)."""

import pytest

from repro.errors import ConfigurationError
from repro.tunneling import (
    TunnelBarrier,
    TunnelingRegime,
    classify_regime,
    programming_voltage_window,
)
from repro.units import nm_to_m


def barrier(thickness_nm=7.0, phi=3.2):
    return TunnelBarrier(phi, nm_to_m(thickness_nm), 0.42)


class TestClassification:
    def test_fn_regime_thick_oxide_high_bias(self):
        a = classify_regime(barrier(7.0), 9.0)
        assert a.regime is TunnelingRegime.FOWLER_NORDHEIM
        assert a.triangular

    def test_transitional_regime_thin_oxide_high_bias(self):
        """The paper's 4-6 nm debate zone."""
        a = classify_regime(barrier(5.0), 9.0)
        assert a.regime is TunnelingRegime.TRANSITIONAL

    def test_direct_regime_thin_oxide_low_bias(self):
        a = classify_regime(barrier(3.0), 1.0)
        assert a.regime is TunnelingRegime.DIRECT
        assert not a.triangular

    def test_negligible_at_tiny_field(self):
        a = classify_regime(barrier(7.0), 0.05)
        assert a.regime is TunnelingRegime.NEGLIGIBLE

    def test_negligible_subbarrier_thick_oxide(self):
        a = classify_regime(barrier(8.0), 2.0)
        assert a.regime is TunnelingRegime.NEGLIGIBLE

    def test_negative_voltage_treated_by_magnitude(self):
        a = classify_regime(barrier(7.0), -9.0)
        assert a.regime is TunnelingRegime.FOWLER_NORDHEIM

    def test_assessment_carries_rationale(self):
        a = classify_regime(barrier(7.0), 9.0)
        assert "phi_B" in a.rationale or "V_ox" in a.rationale
        assert a.field_v_per_m == pytest.approx(9.0 / 7e-9)


class TestProgrammingWindow:
    def test_paper_point_inside_window(self):
        """VGS = 15 V with GCR 0.6 and 5 nm oxide is a valid FN point."""
        lo, hi = programming_voltage_window(barrier(5.0), 0.6)
        assert lo < 15.0 < hi

    def test_onset_is_barrier_over_gcr(self):
        lo, _ = programming_voltage_window(barrier(5.0, phi=3.0), 0.5)
        assert lo == pytest.approx(6.0)

    def test_higher_gcr_widens_low_end(self):
        lo_low, _ = programming_voltage_window(barrier(5.0), 0.4)
        lo_high, _ = programming_voltage_window(barrier(5.0), 0.7)
        assert lo_high < lo_low

    def test_rejects_bad_gcr(self):
        with pytest.raises(ConfigurationError):
            programming_voltage_window(barrier(5.0), 1.5)

    def test_no_window_when_guard_too_strict(self):
        with pytest.raises(ConfigurationError):
            programming_voltage_window(
                barrier(5.0), 0.6, max_field_v_per_m=1e8
            )
