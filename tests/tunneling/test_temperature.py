"""Finite-temperature FN correction."""

import pytest

from repro.errors import ConfigurationError, RegimeError
from repro.tunneling import (
    FowlerNordheimModel,
    TunnelBarrier,
    current_density_at_temperature,
    temperature_correction_factor,
    temperature_sensitivity_c,
)
from repro.units import nm_to_m


@pytest.fixture()
def barrier():
    return TunnelBarrier(3.61, nm_to_m(5.0), 0.42)


class TestSensitivity:
    def test_c_inverse_in_field(self, barrier):
        c1 = temperature_sensitivity_c(barrier, 1e9)
        c2 = temperature_sensitivity_c(barrier, 2e9)
        assert c1 == pytest.approx(2.0 * c2, rel=1e-12)

    def test_rejects_nonpositive_field(self, barrier):
        with pytest.raises(ConfigurationError):
            temperature_sensitivity_c(barrier, 0.0)


class TestCorrectionFactor:
    def test_unity_at_zero_temperature(self, barrier):
        assert temperature_correction_factor(barrier, 1e9, 0.0) == 1.0

    def test_grows_with_temperature(self, barrier):
        f300 = temperature_correction_factor(barrier, 1e9, 300.0)
        f400 = temperature_correction_factor(barrier, 1e9, 400.0)
        assert 1.0 < f300 < f400

    def test_modest_at_room_temperature(self, barrier):
        """Tunneling is 'a pure electrical phenomenon' (paper): the 300 K
        correction is tens of percent, not orders of magnitude."""
        f = temperature_correction_factor(barrier, 1.8e9, 300.0)
        assert 1.0 < f < 1.3

    def test_raises_in_thermionic_regime(self, barrier):
        """Low field + high temperature exits the FN validity window."""
        with pytest.raises(RegimeError):
            temperature_correction_factor(barrier, 5e7, 900.0)

    def test_rejects_negative_temperature(self, barrier):
        with pytest.raises(ConfigurationError):
            temperature_correction_factor(barrier, 1e9, -10.0)


class TestCorrectedCurrent:
    def test_correction_multiplies_base(self, barrier):
        model = FowlerNordheimModel(barrier)
        field = 1.5e9
        base = model.current_density(field)
        corrected = current_density_at_temperature(model, field, 300.0)
        factor = temperature_correction_factor(barrier, field, 300.0)
        assert corrected == pytest.approx(base * factor, rel=1e-12)
