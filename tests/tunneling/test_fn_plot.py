"""FN-plot construction and parameter extraction (paper refs [1]-[3], [9])."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tunneling import (
    FowlerNordheimModel,
    TunnelBarrier,
    fit_fn_plot,
    fn_plot_coordinates,
)
from repro.units import nm_to_m


def synthetic_fn_data(phi_ev=3.2, mass=0.42, noise=0.0, rng=None):
    barrier = TunnelBarrier(phi_ev, nm_to_m(5.0), mass)
    model = FowlerNordheimModel(barrier)
    fields = np.linspace(8e8, 2e9, 25)
    current = model.current_density(fields)
    if noise > 0.0 and rng is not None:
        current = current * np.exp(rng.normal(0.0, noise, size=fields.size))
    return fields, current


class TestCoordinates:
    def test_fn_plot_is_linear_for_ideal_data(self):
        fields, current = synthetic_fn_data()
        x, y = fn_plot_coordinates(fields, current)
        slope, intercept = np.polyfit(x, y, 1)
        residual = y - (slope * x + intercept)
        assert np.max(np.abs(residual)) < 1e-10

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ConfigurationError):
            fn_plot_coordinates(np.array([1.0, -1.0]), np.array([1.0, 1.0]))
        with pytest.raises(ConfigurationError):
            fn_plot_coordinates(np.array([1.0, 1.0]), np.array([0.0, 1.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            fn_plot_coordinates(np.ones(3), np.ones(4))


class TestExtraction:
    def test_round_trip_recovers_barrier(self):
        fields, current = synthetic_fn_data(phi_ev=3.2, mass=0.42)
        fit = fit_fn_plot(fields, current)
        assert fit.barrier_height_ev == pytest.approx(3.2, rel=1e-6)
        assert fit.mass_ratio == pytest.approx(0.42, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("phi,mass", [(2.8, 0.3), (3.6, 0.5), (4.2, 0.42)])
    def test_round_trip_other_parameters(self, phi, mass):
        fields, current = synthetic_fn_data(phi_ev=phi, mass=mass)
        fit = fit_fn_plot(fields, current)
        assert fit.barrier_height_ev == pytest.approx(phi, rel=1e-6)
        assert fit.mass_ratio == pytest.approx(mass, rel=1e-6)

    def test_noisy_data_recovers_approximately(self, rng):
        fields, current = synthetic_fn_data(noise=0.05, rng=rng)
        fit = fit_fn_plot(fields, current)
        assert fit.barrier_height_ev == pytest.approx(3.2, rel=0.15)
        assert fit.r_squared > 0.99

    def test_rejects_too_few_points(self):
        with pytest.raises(ConfigurationError):
            fit_fn_plot(np.array([1e9, 2e9]), np.array([1.0, 2.0]))

    def test_rejects_non_fn_data(self):
        """Current growing slower than E^2 gives a positive FN-plot
        slope -> not Fowler-Nordheim conduction."""
        fields = np.linspace(8e8, 2e9, 10)
        current = fields.copy()  # J ~ E (ohmic)
        with pytest.raises(ConfigurationError):
            fit_fn_plot(fields, current)
