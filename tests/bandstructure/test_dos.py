"""DOS histogram estimator."""

import numpy as np
import pytest

from repro.bandstructure import (
    build_tight_binding,
    compute_band_structure,
    histogram_dos,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def dos12():
    model = build_tight_binding("armchair", 12)
    bs = compute_band_structure(model, n_k=401)
    return histogram_dos(bs, model.cell.period_m), bs


class TestNormalisation:
    def test_total_states_match_band_count(self, dos12):
        """Integrating the DOS over all energies recovers
        2 (spin) * n_bands states per unit cell."""
        dos, bs = dos12
        model = build_tight_binding("armchair", 12)
        total_per_m = np.trapezoid(dos.dos_per_ev_m, dos.energies_ev)
        states_per_cell = total_per_m * model.cell.period_m
        assert states_per_cell == pytest.approx(2.0 * bs.n_bands, rel=0.02)

    def test_dos_zero_inside_gap(self, dos12):
        dos, bs = dos12
        gap = bs.band_gap_ev()
        assert dos.at(0.0) == pytest.approx(0.0, abs=1e-6)
        assert dos.at(gap / 4.0) == pytest.approx(0.0, abs=1e-6)

    def test_dos_positive_in_bands(self, dos12):
        dos, bs = dos12
        edge = bs.conduction_band_edge_ev()
        assert dos.at(edge + 0.5) > 0.0

    def test_symmetric_about_zero(self, dos12):
        dos, _ = dos12
        states_above = dos.states_between(0.0, 10.0)
        states_below = dos.states_between(-10.0, 0.0)
        assert states_above == pytest.approx(states_below, rel=0.02)


class TestInterface:
    def test_states_between_rejects_bad_window(self, dos12):
        dos, _ = dos12
        with pytest.raises(ConfigurationError):
            dos.states_between(1.0, 0.5)

    def test_states_between_empty_window_is_zero(self, dos12):
        dos, _ = dos12
        assert dos.states_between(100.0, 101.0) == 0.0

    def test_rejects_nonpositive_period(self):
        model = build_tight_binding("armchair", 7)
        bs = compute_band_structure(model, n_k=51)
        with pytest.raises(ConfigurationError):
            histogram_dos(bs, 0.0)
