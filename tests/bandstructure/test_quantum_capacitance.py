"""Quantum capacitance from tabulated DOS."""

import numpy as np
import pytest

from repro.bandstructure import (
    build_tight_binding,
    compute_band_structure,
    fermi_derivative_per_ev,
    histogram_dos,
    quantum_capacitance_per_area,
    quantum_capacitance_per_length,
    series_with_quantum,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def ribbon_dos():
    model = build_tight_binding("armchair", 12)
    bs = compute_band_structure(model, n_k=301)
    return histogram_dos(bs, model.cell.period_m), bs, model


class TestFermiKernel:
    def test_kernel_integrates_to_one(self):
        e = np.linspace(-2.0, 2.0, 4001)
        kernel = fermi_derivative_per_ev(e, 0.0, 300.0)
        assert np.trapezoid(kernel, e) == pytest.approx(1.0, rel=1e-6)

    def test_kernel_peaks_at_fermi_level(self):
        e = np.linspace(-1.0, 1.0, 2001)
        kernel = fermi_derivative_per_ev(e, 0.3, 300.0)
        assert e[np.argmax(kernel)] == pytest.approx(0.3, abs=1e-3)

    def test_kernel_narrows_when_cold(self):
        e = np.linspace(-1.0, 1.0, 2001)
        hot = fermi_derivative_per_ev(e, 0.0, 400.0)
        cold = fermi_derivative_per_ev(e, 0.0, 100.0)
        assert cold.max() > hot.max()

    def test_rejects_nonpositive_temperature(self):
        with pytest.raises(ConfigurationError):
            fermi_derivative_per_ev(np.array([0.0]), 0.0, -1.0)


class TestQuantumCapacitance:
    def test_negligible_inside_gap(self, ribbon_dos):
        dos, bs, _ = ribbon_dos
        cq_gap = quantum_capacitance_per_length(dos, 0.0)
        edge = bs.conduction_band_edge_ev()
        cq_band = quantum_capacitance_per_length(dos, edge + 0.5)
        assert cq_band > 10.0 * cq_gap

    def test_per_area_scales_inverse_width(self, ribbon_dos):
        dos, bs, model = ribbon_dos
        edge = bs.conduction_band_edge_ev()
        w = model.cell.width_m
        per_area = quantum_capacitance_per_area(dos, w, edge + 0.5)
        per_length = quantum_capacitance_per_length(dos, edge + 0.5)
        assert per_area == pytest.approx(per_length / w)

    def test_per_area_rejects_bad_width(self, ribbon_dos):
        dos, _, _ = ribbon_dos
        with pytest.raises(ConfigurationError):
            quantum_capacitance_per_area(dos, 0.0, 0.5)


class TestSeriesCombination:
    def test_metallic_limit_recovers_geometric(self):
        assert series_with_quantum(1e-3, 1e6) == pytest.approx(
            1e-3, rel=1e-6
        )

    def test_small_cq_dominates(self):
        assert series_with_quantum(1.0, 1e-6) == pytest.approx(
            1e-6, rel=1e-3
        )

    def test_series_below_both(self):
        c = series_with_quantum(2e-3, 3e-3)
        assert c < 2e-3 and c < 3e-3

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            series_with_quantum(0.0, 1.0)
