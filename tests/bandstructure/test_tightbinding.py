"""Ribbon geometry construction and Bloch Hamiltonians."""

import numpy as np
import pytest

from repro.bandstructure import build_tight_binding, build_unit_cell
from repro.errors import ConfigurationError


class TestUnitCells:
    def test_armchair_atom_count(self):
        cell = build_unit_cell("armchair", 9)
        assert cell.n_atoms == 18

    def test_zigzag_atom_count(self):
        cell = build_unit_cell("zigzag", 6)
        assert cell.n_atoms == 12

    def test_armchair_period_three_acc(self):
        cell = build_unit_cell("armchair", 8)
        assert cell.period_acc == pytest.approx(3.0)

    def test_zigzag_period_sqrt3_acc(self):
        cell = build_unit_cell("zigzag", 6)
        assert cell.period_acc == pytest.approx(np.sqrt(3.0))

    def test_armchair_width_scales_with_lines(self):
        w8 = build_unit_cell("armchair", 8).width_m
        w16 = build_unit_cell("armchair", 16).width_m
        assert w16 / w8 == pytest.approx(15.0 / 7.0, rel=1e-9)

    def test_rejects_unknown_edge(self):
        with pytest.raises(ConfigurationError):
            build_unit_cell("chiral", 5)  # type: ignore[arg-type]

    def test_rejects_too_few_lines(self):
        with pytest.raises(ConfigurationError):
            build_unit_cell("armchair", 1)


class TestHamiltonians:
    def test_hamiltonian_is_hermitian(self):
        model = build_tight_binding("armchair", 7)
        for k in (0.0, 1e8, 5e8):
            h = model.hamiltonian(k)
            assert np.allclose(h, h.T.conj())

    def test_coordination_at_most_three(self):
        """Every carbon has 2 (edge) or 3 (bulk) nearest neighbours."""
        for edge, n in (("armchair", 9), ("zigzag", 5)):
            model = build_tight_binding(edge, n)
            coordination = (
                (model.h0 != 0).sum(axis=1)
                + (model.h1 != 0).sum(axis=1)
                + (model.h1 != 0).sum(axis=0)
            )
            assert coordination.min() >= 2
            assert coordination.max() == 3

    def test_bands_particle_hole_symmetric(self):
        """Bipartite NN hopping: spectrum symmetric about zero."""
        model = build_tight_binding("armchair", 10)
        bands = model.bands_ev(np.linspace(0, 1e9, 7))
        assert np.allclose(bands, -bands[:, ::-1], atol=1e-9)

    def test_band_width_scales_with_hopping(self):
        weak = build_tight_binding("armchair", 7, hopping_ev=1.0)
        strong = build_tight_binding("armchair", 7, hopping_ev=3.0)
        bw_weak = weak.bands_ev(np.array([0.0])).max()
        bw_strong = strong.bands_ev(np.array([0.0])).max()
        assert bw_strong == pytest.approx(3.0 * bw_weak, rel=1e-9)

    def test_rejects_nonpositive_hopping(self):
        with pytest.raises(ConfigurationError):
            build_tight_binding("armchair", 7, hopping_ev=0.0)
