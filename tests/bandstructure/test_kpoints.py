"""Brillouin-zone sampling."""

import numpy as np
import pytest

from repro.bandstructure import brillouin_zone_1d
from repro.errors import ConfigurationError


class TestFullZone:
    def test_spans_plus_minus_pi_over_a(self):
        a = 3e-10
        k = brillouin_zone_1d(a, 11)
        assert k[0] == pytest.approx(-np.pi / a)
        assert k[-1] == pytest.approx(np.pi / a)

    def test_symmetric_about_gamma(self):
        k = brillouin_zone_1d(1e-9, 21)
        assert np.allclose(k, -k[::-1])

    def test_contains_gamma_for_odd_count(self):
        k = brillouin_zone_1d(1e-9, 21)
        assert 0.0 in k


class TestHalfZone:
    def test_irreducible_half(self):
        a = 5e-10
        k = brillouin_zone_1d(a, 11, full=False)
        assert k[0] == 0.0
        assert k[-1] == pytest.approx(np.pi / a)
        assert np.all(k >= 0.0)


class TestValidation:
    def test_rejects_nonpositive_period(self):
        with pytest.raises(ConfigurationError):
            brillouin_zone_1d(0.0, 10)

    def test_rejects_single_point(self):
        with pytest.raises(ConfigurationError):
            brillouin_zone_1d(1e-9, 1)
