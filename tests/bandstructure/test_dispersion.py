"""Band structure post-processing: gaps, metallicity, mode counting."""

import pytest

from repro.bandstructure import build_tight_binding, compute_band_structure
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def agnr12():
    return compute_band_structure(
        build_tight_binding("armchair", 12), n_k=201
    )


class TestFamilyRule:
    """Armchair GNRs: metallic iff N = 3m + 2 (nearest-neighbour TB)."""

    @pytest.mark.parametrize("n", [5, 8, 11, 14])
    def test_metallic_family(self, n):
        bs = compute_band_structure(
            build_tight_binding("armchair", n), n_k=301
        )
        assert bs.band_gap_ev() < 0.1

    @pytest.mark.parametrize("n", [6, 7, 9, 10, 12, 13])
    def test_semiconducting_family(self, n):
        bs = compute_band_structure(
            build_tight_binding("armchair", n), n_k=201
        )
        assert bs.band_gap_ev() > 0.3

    def test_gap_decreases_with_width_within_family(self):
        gaps = [
            compute_band_structure(
                build_tight_binding("armchair", n), n_k=201
            ).band_gap_ev()
            for n in (7, 10, 13, 16)
        ]
        assert all(a > b for a, b in zip(gaps, gaps[1:]))

    def test_zigzag_always_gapless(self):
        for n in (4, 6, 8):
            bs = compute_band_structure(
                build_tight_binding("zigzag", n), n_k=201
            )
            assert bs.band_gap_ev() < 1e-6


class TestQueries:
    def test_conduction_edge_is_half_gap(self, agnr12):
        assert agnr12.conduction_band_edge_ev() == pytest.approx(
            agnr12.band_gap_ev() / 2.0, rel=1e-6
        )

    def test_mode_count_zero_in_gap(self, agnr12):
        assert agnr12.mode_count(0.0) == 0

    def test_mode_count_increases_with_energy(self, agnr12):
        e1 = agnr12.conduction_band_edge_ev() + 0.1
        m1 = agnr12.mode_count(e1)
        m2 = agnr12.mode_count(e1 + 2.0)
        assert m2 >= m1 >= 1

    def test_is_metallic_uses_tolerance(self, agnr12):
        assert not agnr12.is_metallic()
        assert agnr12.is_metallic(tolerance_ev=10.0)

    def test_fermi_level_outside_bands_raises(self, agnr12):
        with pytest.raises(ConfigurationError):
            agnr12.band_gap_ev(fermi_ev=100.0)
