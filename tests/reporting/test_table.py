"""Text table rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.reporting import format_table


class TestFormatting:
    def test_columns_aligned(self):
        out = format_table(
            ("name", "value"), [("a", 1.0), ("long-name", 123.456)]
        )
        lines = out.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_header_and_separator_present(self):
        out = format_table(("x", "y"), [(1.0, 2.0)])
        lines = out.splitlines()
        assert "x" in lines[0] and "y" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_float_formatting_applied(self):
        out = format_table(("v",), [(1.23456789,)])
        assert "1.235" in out

    def test_non_floats_stringified(self):
        out = format_table(("s", "n"), [("hello", 42)])
        assert "hello" in out and "42" in out

    def test_empty_rows_allowed(self):
        out = format_table(("a", "b"), [])
        assert "a" in out


class TestValidation:
    def test_rejects_no_headers(self):
        with pytest.raises(ConfigurationError):
            format_table((), [])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            format_table(("a", "b"), [(1.0,)])
