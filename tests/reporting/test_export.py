"""CSV export."""

import csv

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.reporting import PlotSeries, export_series_csv


class TestExport:
    def test_round_trip_values(self, tmp_path):
        s = PlotSeries(
            label="a", x=np.array([1.0, 2.0]), y=np.array([10.0, 20.0])
        )
        path = export_series_csv(tmp_path / "out.csv", [s], "x", "y")
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["series", "x", "y"]
        assert rows[1] == ["a", "1.0", "10.0"]
        assert len(rows) == 3

    def test_multiple_series_long_format(self, tmp_path):
        a = PlotSeries(label="a", x=np.arange(2.0), y=np.arange(2.0))
        b = PlotSeries(label="b", x=np.arange(3.0), y=np.arange(3.0))
        path = export_series_csv(tmp_path / "multi.csv", [a, b])
        with path.open() as fh:
            rows = list(csv.reader(fh))
        labels = [r[0] for r in rows[1:]]
        assert labels == ["a", "a", "b", "b", "b"]

    def test_full_precision_preserved(self, tmp_path):
        value = 1.2345678901234567e-30
        s = PlotSeries(
            label="tiny", x=np.array([0.0]), y=np.array([value])
        )
        path = export_series_csv(tmp_path / "tiny.csv", [s])
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert float(rows[1][2]) == value

    def test_creates_parent_directories(self, tmp_path):
        s = PlotSeries(label="a", x=np.arange(2.0), y=np.arange(2.0))
        path = export_series_csv(tmp_path / "deep" / "dir" / "f.csv", [s])
        assert path.exists()

    def test_rejects_empty_series(self, tmp_path):
        with pytest.raises(ConfigurationError):
            export_series_csv(tmp_path / "x.csv", [])
