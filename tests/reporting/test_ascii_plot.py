"""ASCII plotting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.reporting import PlotSeries, ascii_plot, decades_spanned


def series(label="s", n=20):
    x = np.linspace(0.0, 1.0, n)
    return PlotSeries(label=label, x=x, y=np.exp(5.0 * x))


class TestRendering:
    def test_contains_title_labels_and_legend(self):
        out = ascii_plot(
            [series("growth")],
            title="my plot",
            x_label="time",
            y_label="J",
        )
        assert "my plot" in out
        assert "time" in out
        assert "growth" in out

    def test_log_mode_annotated(self):
        out = ascii_plot([series()], log_y=True, y_label="J")
        assert "log10" in out

    def test_multiple_series_distinct_markers(self):
        a = series("a")
        b = PlotSeries(label="b", x=a.x, y=a.y * 2.0)
        out = ascii_plot([a, b])
        assert "o a" in out and "x b" in out

    def test_log_mode_drops_nonpositive(self):
        s = PlotSeries(
            label="mixed",
            x=np.array([0.0, 1.0, 2.0]),
            y=np.array([0.0, 10.0, 100.0]),
        )
        out = ascii_plot([s], log_y=True)
        assert "mixed" in out  # renders without error

    def test_constant_series_handled(self):
        s = PlotSeries(label="flat", x=np.arange(5.0), y=np.ones(5))
        out = ascii_plot([s])
        assert "flat" in out


class TestValidation:
    def test_rejects_empty_series_list(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([])

    def test_rejects_mismatched_xy(self):
        bad = PlotSeries(label="bad", x=np.arange(3.0), y=np.arange(4.0))
        with pytest.raises(ConfigurationError):
            ascii_plot([bad])

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([series()], width=4, height=2)


class TestDecades:
    def test_known_span(self):
        assert decades_spanned(np.array([1.0, 1000.0])) == pytest.approx(3.0)

    def test_zeros_ignored(self):
        assert decades_spanned(np.array([0.0, 10.0, 100.0])) == pytest.approx(
            1.0
        )

    def test_single_value_spans_zero(self):
        assert decades_spanned(np.array([5.0])) == 0.0
