"""End-to-end HTTP service tests: the PR's acceptance contracts.

A real :class:`ServiceApp` on an ephemeral port, driven by the real
:class:`SimulationServiceClient` over loopback TCP. Pins the three
acceptance criteria of the service PR:

* results fetched through the client are **bit-identical** to a plain
  serial ``SimulationSession.run_plan`` of the same plan;
* killing the service and restarting it on the same store directory
  serves an identical resubmission with **zero** recomputes;
* N concurrent submissions of the same plan trigger exactly **one**
  computation (single-flight dedupe across jobs).

Everything runs with ``executor="thread"``/1 worker and tiny point
counts so the suite stays fast on a single-CPU container.
"""

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.api import RunPlan, Scenario, SimulationSession
from repro.io import run_plan_to_dict, scenario_result_to_dict
from repro.service import (
    ResultStore,
    ServiceApp,
    ServiceError,
    ServiceThread,
    SimulationServiceClient,
)


def _plan(n_points=6):
    return RunPlan(
        name="e2e",
        scenarios=(
            Scenario("fig6", overrides={"n_points": n_points}),
            Scenario("fig7", overrides={"n_points": n_points}),
        ),
    )


def _app(store_dir, **kwargs):
    kwargs.setdefault("executor", "thread")
    kwargs.setdefault("workers", 1)
    return ServiceApp(ResultStore(store_dir), **kwargs)


@pytest.fixture
def service(tmp_path):
    """A running service on an ephemeral port, torn down after the test."""
    with ServiceThread(_app(tmp_path / "store")) as thread:
        yield thread


def _client(service, **kwargs):
    kwargs.setdefault("retries", 3)
    kwargs.setdefault("backoff_s", 0.01)
    return SimulationServiceClient(service.url, **kwargs)


class TestEndpoints:
    def test_healthz(self, service):
        assert _client(service).health() == {"status": "ok"}

    def test_stats_shape(self, service):
        stats = _client(service).stats()
        assert set(stats) == {
            "jobs",
            "store",
            "rate_limit",
            "journal",
            "recovery",
        }
        assert stats["jobs"]["jobs_submitted"] == 0
        assert stats["store"]["entries"] == 0
        assert stats["journal"]["jobs"] == 0
        assert stats["recovery"]["mode"] == "fresh"

    def test_unknown_job_is_404(self, service):
        with pytest.raises(ServiceError) as err:
            _client(service).job("job-999")
        assert err.value.status == 404

    def test_unknown_result_is_404_and_bad_hash_is_400(self, service):
        client = _client(service)
        with pytest.raises(ServiceError) as err:
            client.result("ab" * 32)
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client.result("not-a-hash")
        assert err.value.status == 400

    def test_unknown_endpoint_is_404_and_wrong_method_is_405(self, service):
        for path, expected in (("/nope", 404), ("/stats", 405)):
            request = urllib.request.Request(
                f"{service.url}{path}", data=b"{}", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == expected

    def test_malformed_body_is_400(self, service):
        request = urllib.request.Request(
            f"{service.url}/plans", data=b"{ not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400
        payload = json.loads(err.value.read())
        assert "not JSON" in payload["error"]

    def test_non_object_body_is_400(self, service):
        request = urllib.request.Request(
            f"{service.url}/plans", data=b"[1, 2]", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400


class TestBitIdentity:
    def test_service_results_match_serial_run_exactly(self, service):
        """The headline contract: client results == serial results."""
        plan = _plan()
        serial = SimulationSession(seed=0).run_plan(plan)
        results, record = _client(service).run_plan(plan)
        assert record.status == "done"
        assert record.sources == ("computed", "computed")
        assert len(results) == len(serial.scenario_results)
        for got, ref in zip(results, serial.scenario_results):
            assert got.scenario == ref.scenario
            assert len(got.result.series) == len(ref.result.series)
            for a, b in zip(got.result.series, ref.result.series):
                assert np.array_equal(a.x, b.x)
                assert np.array_equal(a.y, b.y)
            # Whole-record identity on the canonical export form (JSON
            # has no tuples, so compare both sides post-normalisation).
            # Only wall-clock timing may differ between the two runs.
            got_record = scenario_result_to_dict(got)
            ref_record = scenario_result_to_dict(ref)
            got_record.pop("elapsed_s")
            ref_record.pop("elapsed_s")
            assert got_record == ref_record

    def test_resubmission_is_served_entirely_from_store(self, service):
        client = _client(service)
        plan = _plan()
        first_results, first = client.run_plan(plan)
        second_results, second = client.run_plan(plan)
        assert first.sources == ("computed", "computed")
        assert second.sources == ("store", "store")
        assert second.store_hits == 2 and second.computed == 0
        for a, b in zip(first_results, second_results):
            for sa, sb in zip(a.result.series, b.result.series):
                assert np.array_equal(sa.y, sb.y)
        stats = client.stats()
        assert stats["jobs"]["computed"] == 2  # scenarios, first job only
        assert stats["store"]["entries"] == 2


class TestRestartPersistence:
    def test_restart_on_same_store_serves_without_recompute(self, tmp_path):
        """Kill the server, restart on the same dir: zero recomputes."""
        store_dir = tmp_path / "store"
        plan = _plan()
        with ServiceThread(_app(store_dir)) as thread:
            first_results, first = _client(thread).run_plan(plan)
            assert first.computed == 2
        # Process gone; a fresh app on the same directory takes over.
        with ServiceThread(_app(store_dir)) as thread:
            client = _client(thread)
            results, record = client.run_plan(plan)
            assert record.sources == ("store", "store")
            assert record.computed == 0
            stats = client.stats()
            assert stats["jobs"]["computed"] == 0
            for a, b in zip(first_results, results):
                for sa, sb in zip(a.result.series, b.result.series):
                    assert np.array_equal(sa.y, sb.y)


class TestSingleFlightOverHttp:
    def test_concurrent_identical_submissions_compute_once(self, tmp_path):
        """4 threads submit the same plan; exactly one computation runs."""
        app = _app(
            tmp_path / "store",
            max_pending=16,
            max_concurrent=8,
            rate_per_s=1000.0,
            burst=1000.0,
        )
        plan = _plan()
        barrier = threading.Barrier(4)
        outcomes = [None] * 4

        def submit(i):
            client = SimulationServiceClient(
                thread.url, client_id=f"client-{i}", backoff_s=0.01
            )
            barrier.wait(timeout=30)
            outcomes[i] = client.run_plan(plan)

        with ServiceThread(app) as thread:
            workers = [
                threading.Thread(target=submit, args=(i,)) for i in range(4)
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join(timeout=120)
            stats = SimulationServiceClient(thread.url).stats()

        assert all(o is not None for o in outcomes)
        # Exactly one computation per scenario across ALL jobs.
        assert stats["jobs"]["computed"] == 2
        assert stats["store"]["entries"] == 2
        reference = outcomes[0][0]
        for results, record in outcomes:
            assert record.status == "done"
            for got, ref in zip(results, reference):
                for a, b in zip(got.result.series, ref.result.series):
                    assert np.array_equal(a.y, b.y)


class TestRateLimitAndQueue:
    def test_rate_limit_returns_429_with_retry_after(self, tmp_path):
        app = _app(tmp_path / "store", rate_per_s=1.0, burst=1.0)
        body = json.dumps(run_plan_to_dict(_plan())).encode()
        with ServiceThread(app) as thread:
            def post():
                request = urllib.request.Request(
                    f"{thread.url}/plans",
                    data=body,
                    method="POST",
                    headers={"X-Client-Id": "hammer"},
                )
                return urllib.request.urlopen(request, timeout=10)

            first = post()
            assert first.status == 202
            with pytest.raises(urllib.error.HTTPError) as err:
                post()
            assert err.value.code == 429
            assert int(err.value.headers["Retry-After"]) >= 1
            payload = json.loads(err.value.read())
            assert "rate limit" in payload["error"]

    def test_healthz_is_never_rate_limited(self, tmp_path):
        app = _app(tmp_path / "store", rate_per_s=1.0, burst=1.0)
        with ServiceThread(app) as thread:
            client = SimulationServiceClient(thread.url, retries=0)
            for _ in range(20):
                assert client.health() == {"status": "ok"}

    def test_full_queue_returns_503_with_retry_after(
        self, tmp_path, monkeypatch
    ):
        from repro.service.jobs import JobQueueFull

        app = _app(tmp_path / "store")
        monkeypatch.setattr(
            app.manager,
            "submit",
            lambda plan: (_ for _ in ()).throw(JobQueueFull("queue full")),
        )
        body = json.dumps(run_plan_to_dict(_plan())).encode()
        with ServiceThread(app) as thread:
            request = urllib.request.Request(
                f"{thread.url}/plans", data=body, method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == 503
            assert err.value.headers["Retry-After"] == "1"

    def test_client_retries_through_429_and_succeeds(self, tmp_path):
        """The retrying client rides out its own rate limit."""
        app = _app(tmp_path / "store", rate_per_s=50.0, burst=1.0)
        plan = _plan()
        with ServiceThread(app) as thread:
            client = SimulationServiceClient(
                thread.url, retries=10, backoff_s=0.05
            )
            first = client.submit(plan)
            second = client.submit(plan)  # bucket empty: retried inside
            assert first.status in ("queued", "running", "done")
            assert second.status in ("queued", "running", "done")
            final = client.wait(second.id)
            assert final.status == "done"


class TestCancelAndPruneEndpoints:
    def test_cancel_unknown_job_is_404(self, service):
        with pytest.raises(ServiceError) as err:
            _client(service).cancel("job-999")
        assert err.value.status == 404

    def test_cancel_finished_job_is_idempotent(self, service):
        client = _client(service)
        _, record = client.run_plan(_plan())
        assert client.cancel(record.id).status == "done"

    def test_admin_prune_report_shape(self, service):
        client = _client(service)
        _, record = client.run_plan(_plan())
        report = client.prune()  # no budgets: a no-op with a report
        assert set(report) == {"pruned", "hashes", "protected", "entries"}
        assert report["pruned"] == 0
        assert report["entries"] == 2
        assert report["protected"] >= len(set(record.scenario_hashes))

    def test_admin_prune_rejects_unknown_and_bad_budgets(self, service):
        for body in (
            b'{"frequency": 2}',  # unknown budget key
            b'{"max_entries": "many"}',  # uncastable value
            b"[1, 2]",  # not an object
            b"{ not json",
        ):
            request = urllib.request.Request(
                f"{service.url}/admin/prune", data=body, method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == 400

    def test_bad_priority_is_400(self, service):
        body = dict(run_plan_to_dict(_plan()), priority="urgent")
        request = urllib.request.Request(
            f"{service.url}/plans",
            data=json.dumps(body).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_evicted_job_answers_expired_over_http(self, tmp_path):
        app = _app(tmp_path / "store", job_ttl_s=0.05)
        with ServiceThread(app) as thread:
            client = _client(thread)
            _, first = client.run_plan(_plan())
            time.sleep(0.1)
            client.submit(_plan(n_points=7))  # submission runs eviction
            record = client.job(first.id)
            assert record.status == "expired"
            assert record.id == first.id

    def test_background_prune_reaps_orphans_never_live_results(
        self, tmp_path, make_scenario_result
    ):
        """The TOCTOU acceptance: GC runs under a zero-entry budget
        while a finished job's results are still retained -- the orphan
        goes, the job's pinned results never 404."""
        app = _app(
            tmp_path / "store", prune_interval_s=0.05, prune_max_entries=0
        )
        orphan = "ab" * 32
        app.store.put(orphan, make_scenario_result())
        with ServiceThread(app) as thread:
            client = _client(thread)
            _, record = client.run_plan(_plan())
            deadline = time.monotonic() + 30
            while orphan in app.store and time.monotonic() < deadline:
                time.sleep(0.05)
            assert orphan not in app.store  # unpinned: reaped
            for h in record.scenario_hashes:
                assert client.result(h).hash == h  # pinned: served


class TestAdminVerifyEndpoint:
    def test_clean_store_verifies_ok_over_http(self, service):
        client = _client(service)
        _, record = client.run_plan(_plan())
        report = client.verify()
        assert report["ok"] is True
        assert report["scanned"] == len(record.scenario_hashes)
        assert report["corrupt"] == []
        assert report["quarantined"] == []

    def test_corrupt_object_is_reported_then_quarantined(self, tmp_path):
        app = _app(tmp_path / "store")
        with ServiceThread(app) as thread:
            client = _client(thread)
            _, record = client.run_plan(_plan())
            victim = record.scenario_hashes[0]
            path = app.store.object_path(victim)
            data = json.loads(path.read_text())
            data["scenario_result"]["elapsed_s"] = 1e9  # bit rot
            path.write_text(json.dumps(data))
            report = client.verify()  # report-only
            assert report["ok"] is False
            assert report["corrupt"][0]["name"] == victim
            assert path.exists()
            repaired = client.verify(repair=True)
            assert len(repaired["quarantined"]) == 1
            assert not path.exists()
            # The quarantined hash now reads as a plain miss.
            with pytest.raises(ServiceError) as err:
                client.result(victim)
            assert err.value.status == 404
            # /stats surfaces the quarantine counters.
            store_stats = client.stats()["store"]
            assert store_stats["quarantined"] == 1

    def test_corrupt_object_read_is_quarantined_not_served(self, tmp_path):
        """GET /results/{hash} on a damaged object 404s -- never a 500
        and never a corrupt payload."""
        app = _app(tmp_path / "store")
        with ServiceThread(app) as thread:
            client = _client(thread)
            _, record = client.run_plan(_plan())
            victim = record.scenario_hashes[0]
            path = app.store.object_path(victim)
            path.write_text(path.read_text()[:30])  # torn write
            with pytest.raises(ServiceError) as err:
                client.result(victim)
            assert err.value.status == 404
            assert "quarantined" in str(err.value)
            assert not path.exists()

    def test_admin_verify_rejects_unknown_and_bad_bodies(self, service):
        for body in (
            b'{"scrub": true}',  # unknown option
            b"[1]",  # not an object
            b"{ not json",
        ):
            request = urllib.request.Request(
                f"{service.url}/admin/verify", data=body, method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == 400


class TestLifecycleOverHttp:
    def test_mixed_priorities_cancel_and_reconciled_stats(
        self, tmp_path, monkeypatch
    ):
        """The PR's e2e acceptance scenario, over real HTTP.

        One slot, plugged by a blocking first job; mixed-priority
        submissions behind it must complete high-first, a mid-queue
        cancel must report ``cancelled`` (not ``failed``), a duplicate
        of the high-priority plan must converge without recomputing,
        the ``/stats`` counters must reconcile exactly with
        ``jobs_by_status``, and a harshest-budget prune must not 404
        any live job's results.
        """
        compute_order = []
        started = threading.Event()
        release = threading.Event()

        def gated_compute(scenarios, **kwargs):
            compute_order.append(scenarios[0].overrides["n_points"])
            if len(compute_order) == 1:
                started.set()
                assert release.wait(timeout=60)
            from repro.service.jobs import RunPlan, run_plan_parallel

            return run_plan_parallel(
                RunPlan(name="service-job", scenarios=tuple(scenarios)),
                workers=1,
                executor="thread",
            ).scenario_results

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", gated_compute
        )

        def one(n):
            return RunPlan(
                name=f"prio-{n}",
                scenarios=(Scenario("fig6", overrides={"n_points": n}),),
            )

        app = _app(
            tmp_path / "store",
            max_pending=16,
            max_concurrent=1,
            rate_per_s=1000.0,
            burst=1000.0,
        )
        with ServiceThread(app) as thread:
            client = _client(thread)
            plug = client.submit(one(4))  # plugs the only slot
            assert started.wait(timeout=60)
            low = client.submit(one(5), priority="low")
            normal = client.submit(one(6), priority="normal")
            high = client.submit(one(7), priority="high")
            twin = client.submit(one(7), priority="high")
            victim = client.submit(one(8), priority="low")
            cancelled = client.cancel(victim.id)
            assert cancelled.status == "cancelled"
            assert cancelled.error is None
            release.set()
            finals = [
                client.wait(j.id, timeout_s=120)
                for j in (plug, low, normal, high, twin)
            ]
            assert [f.status for f in finals] == ["done"] * 5
            # Dispatch honoured class order; the cancelled job and the
            # duplicate never computed at all.
            assert compute_order == [4, 7, 6, 5]
            assert finals[4].sources[0] in ("store", "inflight")
            stats = client.stats()["jobs"]
            by_status = stats["jobs_by_status"]
            terminal = (
                by_status["done"]
                + by_status["failed"]
                + by_status["cancelled"]
            )
            cumulative = (
                stats["jobs_done"]
                + stats["jobs_failed"]
                + stats["jobs_cancelled"]
            )
            assert cumulative == terminal + stats["jobs_evicted"]
            assert stats["jobs_cancelled"] == 1
            assert stats["jobs_failed"] == 0
            assert stats["jobs_done"] == 5
            # Everything in the store is pinned by a retained job, so
            # even a zero-entry budget removes nothing.
            report = client.prune(max_entries=0)
            assert report["pruned"] == 0
            for final in finals:
                for h in final.scenario_hashes:
                    assert client.result(h).hash == h
