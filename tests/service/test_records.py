"""Property-based round trips for the service record converters.

Hypothesis generates adversarial-but-valid :class:`StoreRecord` and
:class:`JobRecord` payloads and checks they survive a *real* JSON
serialize/parse cycle through the :mod:`repro.io` converters -- the
same fidelity the HTTP service and the on-disk store depend on.

Hypothesis ships in the ``dev`` extra; when absent the module skips
as a whole (``pytest.importorskip``) instead of failing collection.
"""

from __future__ import annotations

import json

import pytest

hypothesis = pytest.importorskip(
    "hypothesis", reason="property tests need the dev extra (hypothesis)"
)

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.api import Scenario, ScenarioResult  # noqa: E402
from repro.engine.cache import CacheStats  # noqa: E402
from repro.errors import ConfigurationError  # noqa: E402
from repro.experiments.base import ExperimentResult, ShapeCheck  # noqa: E402
from repro.api.plan import ShardFailure  # noqa: E402
from repro.io import (  # noqa: E402
    job_record_from_dict,
    job_record_to_dict,
    journal_entry_from_dict,
    journal_entry_to_dict,
    lease_record_from_dict,
    lease_record_to_dict,
    shard_failure_from_dict,
    shard_failure_to_dict,
    store_record_from_dict,
    store_record_to_dict,
)
from repro.reporting.ascii_plot import PlotSeries  # noqa: E402
from repro.service.jobs import (  # noqa: E402
    JOB_STATUSES,
    MAX_PRIORITY,
    MIN_PRIORITY,
    RESULT_SOURCES,
    JobRecord,
    expired_job_record,
)
from repro.service.journal import (  # noqa: E402
    JOURNAL_KINDS,
    JournalEntry,
    LeaseRecord,
)
from repro.service.store import StoreRecord  # noqa: E402

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=10
)
hex_hashes = st.text(alphabet="0123456789abcdef", min_size=64, max_size=64)
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
counts = st.integers(min_value=0, max_value=10_000)


@st.composite
def scenario_results(draw):
    """A small concrete ScenarioResult with JSON-faithful payloads."""
    n = draw(st.integers(min_value=1, max_value=4))
    result = ExperimentResult(
        experiment_id=draw(names),
        title=draw(st.text(max_size=12)),
        x_label="x",
        y_label="y",
        series=(
            PlotSeries(
                label=draw(st.text(max_size=8)),
                x=[draw(finite) for _ in range(n)],
                y=[draw(finite) for _ in range(n)],
            ),
        ),
        parameters={draw(names): draw(finite)},
        checks=(
            ShapeCheck(
                claim=draw(st.text(max_size=12)),
                passed=draw(st.booleans()),
                detail="",
            ),
        ),
        log_y=draw(st.booleans()),
    )
    return ScenarioResult(
        scenario=Scenario(
            experiment_id=result.experiment_id,
            overrides={draw(names): draw(finite)},
            label=draw(st.one_of(st.none(), st.text(max_size=12))),
        ),
        result=result,
        elapsed_s=draw(st.floats(min_value=0.0, max_value=1e6)),
        cache_stats=CacheStats(
            hits=draw(counts),
            misses=draw(counts),
            currsize=draw(counts),
            per_cache=((draw(names), (1, 2, 3)),),
        ),
        reused_hits=draw(counts),
    )


@st.composite
def store_records(draw):
    """A StoreRecord wrapping a synthetic scenario result."""
    return StoreRecord(
        hash=draw(hex_hashes),
        code_version=draw(st.text(max_size=16)),
        created_at=draw(st.floats(min_value=0.0, max_value=4e9)),
        scenario_result=draw(scenario_results()),
        checksum=draw(
            st.one_of(st.just(""), st.just("sha256:" + "0" * 64))
        ),
    )


@st.composite
def job_records(draw):
    """A JobRecord whose per-scenario vectors stay aligned."""
    hashes = tuple(
        draw(st.lists(hex_hashes, min_size=0, max_size=5, unique=True))
    )
    sources = tuple(
        draw(st.sampled_from(RESULT_SOURCES)) for _ in hashes
    )
    status = draw(st.sampled_from(JOB_STATUSES))
    return JobRecord(
        id=f"job-{draw(st.integers(min_value=0, max_value=10_000))}",
        status=status,
        plan_name=draw(st.text(max_size=12)),
        plan_hash=draw(hex_hashes),
        scenario_hashes=hashes,
        sources=sources,
        store_hits=sum(1 for s in sources if s == "store"),
        computed=sum(1 for s in sources if s == "computed"),
        deduped=sum(1 for s in sources if s == "inflight"),
        elapsed_s=draw(st.floats(min_value=0.0, max_value=1e6)),
        error=(
            draw(st.text(min_size=1, max_size=20))
            if status == "failed"
            else None
        ),
        priority=draw(
            st.integers(min_value=MIN_PRIORITY, max_value=MAX_PRIORITY)
        ),
        timeout_s=draw(
            st.one_of(
                st.none(),
                st.floats(
                    min_value=1e-3, max_value=1e6, allow_nan=False
                ),
            )
        ),
    )


def _through_json(record):
    """A real serialize/parse cycle, not just dict identity."""
    return json.loads(json.dumps(record))


class TestStoreRecordRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(record=store_records())
    def test_json_round_trip_preserves_record(self, record):
        """StoreRecord -> JSON text -> StoreRecord is stable.

        Equality is checked on the canonical export record (the
        embedded result holds numpy arrays, whose ``==`` is
        elementwise) -- exactly the fidelity the store relies on.
        """
        exported = store_record_to_dict(record)
        rebuilt = store_record_from_dict(_through_json(exported))
        assert store_record_to_dict(rebuilt) == exported
        assert rebuilt.hash == record.hash
        assert rebuilt.code_version == record.code_version
        assert rebuilt.created_at == record.created_at
        assert rebuilt.scenario_result.scenario == record.scenario_result.scenario

    def test_missing_fields_are_rejected(self):
        with pytest.raises(ConfigurationError):
            store_record_from_dict({"hash": "ab" * 32})
        with pytest.raises(ConfigurationError):
            store_record_from_dict({})


class TestJobRecordRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(record=job_records())
    def test_json_round_trip_is_identity(self, record):
        """JobRecord -> JSON text -> JobRecord reproduces the original."""
        rebuilt = job_record_from_dict(
            _through_json(job_record_to_dict(record))
        )
        assert rebuilt == record

    def test_absent_counters_default_to_zero(self):
        rebuilt = job_record_from_dict({"id": "job-1", "status": "queued"})
        assert rebuilt.store_hits == 0
        assert rebuilt.computed == 0
        assert rebuilt.deduped == 0
        assert rebuilt.elapsed_s == 0.0
        assert rebuilt.error is None
        assert rebuilt.scenario_hashes == ()

    def test_absent_priority_defaults_to_normal(self):
        # Records from a pre-priority server must still parse.
        rebuilt = job_record_from_dict({"id": "job-1", "status": "done"})
        assert rebuilt.priority == 1

    def test_expired_record_round_trips(self):
        record = expired_job_record("job-9")
        rebuilt = job_record_from_dict(
            _through_json(job_record_to_dict(record))
        )
        assert rebuilt == record
        assert rebuilt.status == "expired"

    def test_missing_fields_are_rejected(self):
        with pytest.raises(ConfigurationError):
            job_record_from_dict({"id": "job-1"})
        with pytest.raises(ConfigurationError):
            job_record_from_dict({"status": "done"})

    def test_absent_timeout_defaults_to_none(self):
        # Records from a pre-deadline server must still parse.
        rebuilt = job_record_from_dict({"id": "job-1", "status": "done"})
        assert rebuilt.timeout_s is None


@st.composite
def shard_failures(draw):
    """A ShardFailure with aligned positions and scenario ids."""
    n = draw(st.integers(min_value=1, max_value=5))
    positions = tuple(
        sorted(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=512),
                    min_size=n,
                    max_size=n,
                    unique=True,
                )
            )
        )
    )
    return ShardFailure(
        index=draw(st.integers(min_value=0, max_value=64)),
        positions=positions,
        scenario_ids=tuple(draw(names) for _ in positions),
        attempts=draw(st.integers(min_value=1, max_value=8)),
        cause=draw(st.sampled_from(["error", "crash", "timeout"])),
        message=draw(st.text(max_size=40)),
        elapsed_s=draw(st.floats(min_value=0.0, max_value=1e6)),
    )


class TestShardFailureRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(failure=shard_failures())
    def test_json_round_trip_is_identity(self, failure):
        """ShardFailure -> JSON text -> ShardFailure reproduces it."""
        rebuilt = shard_failure_from_dict(
            _through_json(shard_failure_to_dict(failure))
        )
        assert rebuilt == failure

    def test_optional_fields_default(self):
        rebuilt = shard_failure_from_dict(
            {"index": 2, "positions": [3, 5], "cause": "timeout"}
        )
        assert rebuilt.scenario_ids == ()
        assert rebuilt.attempts == 0
        assert rebuilt.message == ""
        assert rebuilt.elapsed_s == 0.0

    def test_missing_fields_are_rejected(self):
        with pytest.raises(ConfigurationError):
            shard_failure_from_dict({"index": 0, "positions": [1]})
        with pytest.raises(ConfigurationError):
            shard_failure_from_dict({"cause": "error"})


json_scalars = st.one_of(st.none(), st.booleans(), finite, names)


@st.composite
def journal_entries(draw):
    """A JournalEntry with a JSON-faithful kind-specific payload."""
    return JournalEntry(
        kind=draw(st.sampled_from(JOURNAL_KINDS)),
        at=draw(st.floats(min_value=0.0, max_value=4e9)),
        job_id=draw(
            st.one_of(
                st.just(""),
                st.integers(min_value=0, max_value=9999).map(
                    lambda n: f"job-{n}"
                ),
            )
        ),
        data=draw(
            st.dictionaries(names, json_scalars, max_size=4)
        ),
    )


@st.composite
def lease_records(draw):
    """A LeaseRecord whose expiry never precedes its acquisition."""
    acquired = draw(st.floats(min_value=0.0, max_value=4e9))
    return LeaseRecord(
        plan_hash=draw(hex_hashes),
        owner_id=draw(names),
        job_id=f"job-{draw(st.integers(min_value=0, max_value=9999))}",
        acquired_at=acquired,
        expires_at=acquired + draw(st.floats(min_value=0.0, max_value=1e6)),
    )


class TestJournalEntryRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(entry=journal_entries())
    def test_json_round_trip_is_identity(self, entry):
        """JournalEntry -> JSON line -> JournalEntry reproduces it."""
        rebuilt = journal_entry_from_dict(
            _through_json(journal_entry_to_dict(entry))
        )
        assert rebuilt == entry

    def test_optional_fields_default(self):
        rebuilt = journal_entry_from_dict({"kind": "boot"})
        assert rebuilt.at == 0.0
        assert rebuilt.job_id == ""
        assert rebuilt.data == {}

    def test_missing_kind_is_rejected(self):
        with pytest.raises(ConfigurationError):
            journal_entry_from_dict({"at": 1.0, "job_id": "job-1"})

    def test_non_object_data_is_rejected(self):
        with pytest.raises(ConfigurationError):
            journal_entry_from_dict({"kind": "accepted", "data": [1, 2]})


class TestLeaseRecordRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(lease=lease_records())
    def test_json_round_trip_is_identity(self, lease):
        """LeaseRecord -> JSON text -> LeaseRecord reproduces it."""
        rebuilt = lease_record_from_dict(
            _through_json(lease_record_to_dict(lease))
        )
        assert rebuilt == lease

    def test_missing_fields_are_rejected(self):
        with pytest.raises(ConfigurationError):
            lease_record_from_dict({"plan_hash": "ab" * 32})
        with pytest.raises(ConfigurationError):
            lease_record_from_dict({"owner_id": "me"})
