"""The content-addressed result store: round trips, atomicity, pruning.

Covers the :class:`~repro.service.store.ResultStore` contract the
service and runner lean on -- bit-exact get/put round trips through
the :mod:`repro.io` converters, idempotent first-writer-wins puts,
index recovery, pruning, and the two-threads-one-hash concurrency
race (one file, no corruption).
"""

import json
import threading

import numpy as np
import pytest

from repro.api import Scenario, SimulationSession, scenario_hash
from repro.errors import ConfigurationError
from repro.service import ResultStore
from repro.service.store import (
    StoreIntegrityError,
    result_checksum,
    run_plan_with_store,
)


def _hash_of(result):
    return scenario_hash(result.scenario)


class TestRoundTrip:
    def test_get_miss_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("ab" * 32) is None
        assert store.get_record("ab" * 32) is None
        assert ("ab" * 32) not in store

    def test_put_get_bit_exact(self, tmp_path, make_scenario_result):
        store = ResultStore(tmp_path)
        original = make_scenario_result(y=(1.0, 1e-30, 3.0e17))
        hash_ = _hash_of(original)
        record = store.put(hash_, original)
        assert record.hash == hash_
        assert record.code_version
        loaded = store.get(hash_)
        assert loaded is not None
        assert loaded.scenario == original.scenario
        for got, ref in zip(loaded.result.series, original.result.series):
            assert np.array_equal(got.x, ref.x)
            assert np.array_equal(got.y, ref.y)
        assert loaded.elapsed_s == original.elapsed_s
        assert loaded.cache_stats == original.cache_stats
        assert loaded.reused_hits == original.reused_hits

    def test_put_is_idempotent_first_writer_wins(
        self, tmp_path, make_scenario_result
    ):
        store = ResultStore(tmp_path)
        first = make_scenario_result(y=(1.0, 2.0, 3.0))
        hash_ = _hash_of(first)
        record1 = store.put(hash_, first)
        record2 = store.put(hash_, make_scenario_result(y=(9.0, 9.0, 9.0)))
        assert record2.created_at == record1.created_at
        assert store.get(hash_).result.series[0].y[0] == 1.0
        assert len(store) == 1

    def test_len_contains_hashes(self, tmp_path, make_scenario_result):
        store = ResultStore(tmp_path)
        hashes = []
        for n in range(3):
            result = make_scenario_result(overrides={"n_points": n + 4})
            hashes.append(_hash_of(result))
            store.put(hashes[-1], result)
        assert len(store) == 3
        assert store.hashes() == tuple(sorted(hashes))
        assert all(h in store for h in hashes)

    def test_bad_hash_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ConfigurationError):
            store.object_path("../../etc/passwd")
        with pytest.raises(ConfigurationError):
            store.object_path("ZZ")

    def test_mismatched_object_hash_is_quarantined(
        self, tmp_path, make_scenario_result
    ):
        store = ResultStore(tmp_path)
        result = make_scenario_result()
        hash_ = _hash_of(result)
        store.put(hash_, result)
        # File an object under a hash its record does not claim.
        other = "f" * 64
        target = store.object_path(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(store.object_path(hash_).read_text())
        # The typed read surface raises; the convenience read heals to
        # a miss -- either way the lie is quarantined, never served.
        with pytest.raises(StoreIntegrityError):
            store.get_record(other)
        assert not target.exists()
        assert list(store.quarantine_dir.iterdir())
        assert store.get(other) is None
        assert store.corrupt_detected >= 1


class TestVerify:
    """The integrity sweep behind ``repro-service verify``."""

    def _seed(self, tmp_path, make_scenario_result, n=2):
        store = ResultStore(tmp_path)
        hashes = []
        for k in range(n):
            result = make_scenario_result(overrides={"n_points": k + 4})
            hashes.append(_hash_of(result))
            store.put(hashes[-1], result)
        return store, hashes

    def test_intact_store_verifies_clean(
        self, tmp_path, make_scenario_result
    ):
        store, hashes = self._seed(tmp_path, make_scenario_result)
        report = store.verify()
        assert report.ok
        assert (report.scanned, report.intact) == (2, 2)
        assert report.legacy == 0
        assert report.corrupt == ()
        assert report.quarantined == ()
        assert report.as_dict()["ok"] is True

    def test_bit_flip_fails_checksum_and_repair_quarantines(
        self, tmp_path, make_scenario_result
    ):
        store, hashes = self._seed(tmp_path, make_scenario_result)
        path = store.object_path(hashes[0])
        data = json.loads(path.read_text())
        data["scenario_result"]["elapsed_s"] = 999.0  # silent bit rot
        path.write_text(json.dumps(data))
        report = store.verify()  # report-only: nothing moves
        assert not report.ok
        assert len(report.corrupt) == 1
        assert report.corrupt[0].name == hashes[0]
        assert "checksum" in report.corrupt[0].reason
        assert report.quarantined == ()
        assert path.exists()
        repaired = store.verify(repair=True)
        assert len(repaired.quarantined) == 1
        assert not path.exists()
        assert hashes[0] not in store.index()  # index rebuilt
        assert hashes[1] in store  # the intact neighbour survives
        assert "1/2 intact" in repaired.summary()

    def test_truncated_object_is_unreadable(
        self, tmp_path, make_scenario_result
    ):
        store, hashes = self._seed(tmp_path, make_scenario_result, n=1)
        path = store.object_path(hashes[0])
        path.write_text(path.read_text()[:40])  # torn write
        report = store.verify()
        assert not report.ok
        assert "unreadable" in report.corrupt[0].reason

    def test_misfiled_object_is_a_hash_mismatch(
        self, tmp_path, make_scenario_result
    ):
        store, hashes = self._seed(tmp_path, make_scenario_result, n=1)
        other = "e" * 64
        target = store.object_path(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(store.object_path(hashes[0]).read_text())
        report = store.verify()
        assert not report.ok
        assert report.corrupt[0].name == other
        assert "hash mismatch" in report.corrupt[0].reason

    def test_legacy_object_without_checksum_is_flagged_not_corrupt(
        self, tmp_path, make_scenario_result
    ):
        store, hashes = self._seed(tmp_path, make_scenario_result, n=1)
        path = store.object_path(hashes[0])
        data = json.loads(path.read_text())
        del data["checksum"]  # as written before checksums existed
        path.write_text(json.dumps(data))
        report = store.verify()
        assert report.ok
        assert report.legacy == 1
        assert store.get(hashes[0]) is not None  # still served

    def test_result_checksum_is_deterministic_and_content_bound(self):
        record = {"scenario": {"experiment_id": "fig6"}, "elapsed_s": 1.0}
        first = result_checksum(record)
        assert first == result_checksum(dict(record))
        assert first.startswith("sha256:")
        changed = dict(record, elapsed_s=2.0)
        assert result_checksum(changed) != first


class TestIndex:
    def test_index_tracks_puts(self, tmp_path, make_scenario_result):
        store = ResultStore(tmp_path)
        result = make_scenario_result(experiment_id="fig7", label="warm")
        hash_ = _hash_of(result)
        store.put(hash_, result)
        entries = store.index()
        assert entries[hash_]["experiment_id"] == "fig7"
        assert entries[hash_]["label"] == "warm"

    def test_reindex_recovers_from_lost_index(
        self, tmp_path, make_scenario_result
    ):
        store = ResultStore(tmp_path)
        result = make_scenario_result()
        hash_ = _hash_of(result)
        store.put(hash_, result)
        store.index_path.unlink()
        rebuilt = store.reindex()
        assert hash_ in rebuilt
        assert json.loads(store.index_path.read_text())

    def test_corrupt_index_falls_back_to_scan(
        self, tmp_path, make_scenario_result
    ):
        store = ResultStore(tmp_path)
        result = make_scenario_result()
        hash_ = _hash_of(result)
        store.put(hash_, result)
        store.index_path.write_text("{ not json")
        assert hash_ in store.index()
        assert store.get(hash_) is not None  # never load-bearing

    def test_corrupt_index_self_heals_on_disk(
        self, tmp_path, make_scenario_result
    ):
        """One bad write degrades exactly one index() call to a scan.

        The rebuilt index must be *persisted*, not just returned, so
        the next call reads it instead of scanning again.
        """
        store = ResultStore(tmp_path)
        result = make_scenario_result()
        hash_ = _hash_of(result)
        store.put(hash_, result)
        store.index_path.write_text("{ not json")
        store.index()  # heals
        healed = json.loads(store.index_path.read_text())
        assert hash_ in healed

    def test_non_dict_index_self_heals(self, tmp_path, make_scenario_result):
        store = ResultStore(tmp_path)
        result = make_scenario_result()
        hash_ = _hash_of(result)
        store.put(hash_, result)
        store.index_path.write_text(json.dumps(["not", "a", "mapping"]))
        assert hash_ in store.index()
        assert hash_ in json.loads(store.index_path.read_text())

    def test_put_over_corrupt_index_self_heals(
        self, tmp_path, make_scenario_result
    ):
        store = ResultStore(tmp_path)
        first = make_scenario_result(overrides={"n_points": 4})
        store.put(_hash_of(first), first)
        store.index_path.write_text("{ not json")
        second = make_scenario_result(overrides={"n_points": 5})
        store.put(_hash_of(second), second)
        entries = json.loads(store.index_path.read_text())
        assert _hash_of(first) in entries
        assert _hash_of(second) in entries


class TestPrune:
    def test_prune_by_max_entries_drops_oldest(
        self, tmp_path, make_scenario_result
    ):
        store = ResultStore(tmp_path)
        hashes = []
        for n in range(4):
            result = make_scenario_result(overrides={"n_points": n + 4})
            hashes.append(_hash_of(result))
            record = store.put(hashes[-1], result)
            # Make creation order unambiguous regardless of clock tick.
            path = store.object_path(record.hash)
            data = json.loads(path.read_text())
            data["created_at"] = float(n)
            path.write_text(json.dumps(data))
        removed = store.prune(max_entries=2)
        assert removed == tuple(hashes[:2])
        assert len(store) == 2
        assert hashes[3] in store

    def test_prune_by_age(self, tmp_path, make_scenario_result):
        store = ResultStore(tmp_path)
        result = make_scenario_result()
        hash_ = _hash_of(result)
        record = store.put(hash_, result)
        assert store.prune(max_age_s=3600, now=record.created_at + 10) == ()
        assert store.prune(max_age_s=5, now=record.created_at + 10) == (
            hash_,
        )
        assert len(store) == 0

    def test_prune_without_bounds_is_noop(
        self, tmp_path, make_scenario_result
    ):
        store = ResultStore(tmp_path)
        result = make_scenario_result()
        store.put(_hash_of(result), result)
        assert store.prune() == ()
        assert len(store) == 1

    def test_negative_max_entries_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultStore(tmp_path).prune(max_entries=-1)

    def test_pinned_hashes_survive_both_budgets(
        self, tmp_path, make_scenario_result
    ):
        """keep= wins over max_entries and max_age_s alike."""
        store = ResultStore(tmp_path)
        hashes = []
        for n in range(4):
            result = make_scenario_result(overrides={"n_points": n + 4})
            hashes.append(_hash_of(result))
            record = store.put(hashes[-1], result)
            path = store.object_path(record.hash)
            data = json.loads(path.read_text())
            data["created_at"] = float(n)
            path.write_text(json.dumps(data))
        pinned = {hashes[0], hashes[1]}
        removed = store.prune(
            max_entries=1, max_age_s=1.0, keep=pinned, now=100.0
        )
        # Everything is over-age and over-budget, but the pins stay.
        assert set(removed) == {hashes[2], hashes[3]}
        assert all(h in store for h in pinned)
        # max_entries=1 was a target, not a guarantee: 2 pins remain.
        assert len(store) == 2

    def test_prune_removes_emptied_shard_dirs(
        self, tmp_path, make_scenario_result
    ):
        store = ResultStore(tmp_path)
        result = make_scenario_result()
        hash_ = _hash_of(result)
        store.put(hash_, result)
        shard = store.object_path(hash_).parent
        assert shard.is_dir()
        store.prune(max_entries=0)
        assert not shard.exists()
        assert len(store) == 0
        # The store still works after losing the shard directory.
        record = store.put(hash_, result)
        assert record.hash == hash_
        assert hash_ in store

    def test_prune_keeps_occupied_shard_dirs(
        self, tmp_path, make_scenario_result
    ):
        store = ResultStore(tmp_path)
        survivors = []
        for n in range(3):
            result = make_scenario_result(overrides={"n_points": n + 4})
            survivors.append(_hash_of(result))
            store.put(survivors[-1], result)
        doomed_result = make_scenario_result(overrides={"n_points": 99})
        doomed = _hash_of(doomed_result)
        store.put(doomed, doomed_result)
        removed = store.prune(max_entries=3, keep=survivors)
        assert removed == (doomed,)
        for h in survivors:
            assert store.object_path(h).parent.is_dir()
            assert h in store

    def test_prune_updates_index(self, tmp_path, make_scenario_result):
        store = ResultStore(tmp_path)
        result = make_scenario_result()
        hash_ = _hash_of(result)
        store.put(hash_, result)
        store.prune(max_entries=0)
        assert store.index() == {}
        assert json.loads(store.index_path.read_text()) == {}


class TestConcurrency:
    def test_two_threads_putting_same_hash_leave_one_valid_file(
        self, tmp_path, make_scenario_result
    ):
        store = ResultStore(tmp_path)
        result = make_scenario_result()
        hash_ = _hash_of(result)
        barrier = threading.Barrier(2)
        errors = []

        def put():
            try:
                barrier.wait(timeout=10)
                store.put(hash_, result)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=put) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(store) == 1
        # The object parses and round-trips: no torn write.
        loaded = store.get(hash_)
        assert np.array_equal(
            loaded.result.series[0].y, result.result.series[0].y
        )
        # No stray temp files survive.
        leftovers = [
            p
            for p in store.objects_dir.rglob("*")
            if p.is_file() and p.suffix != ".json"
        ]
        assert leftovers == []

    def test_many_threads_distinct_hashes(
        self, tmp_path, make_scenario_result
    ):
        store = ResultStore(tmp_path)
        results = [
            make_scenario_result(overrides={"n_points": n + 4})
            for n in range(8)
        ]
        threads = [
            threading.Thread(target=store.put, args=(_hash_of(r), r))
            for r in results
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(store) == 8
        assert len(store.index()) == 8


class TestRunPlanWithStore:
    """The runner-side integration helper (serial-vs-store identity)."""

    def _plan(self):
        from repro.api import RunPlan

        return RunPlan(
            name="store-integration",
            scenarios=(
                Scenario("fig6", overrides={"n_points": 6}),
                Scenario("fig7", overrides={"n_points": 6}),
            ),
        )

    def test_cold_run_writes_then_warm_run_hits(self, tmp_path):
        plan = self._plan()
        store_dir = tmp_path / "store"
        session = SimulationSession(seed=0)
        serial = session.run_plan(plan)

        cold, report = run_plan_with_store(
            SimulationSession(seed=0),
            plan,
            from_store=store_dir,
            update_store=store_dir,
        )
        assert (report.hits, report.misses, report.written) == (0, 2, 2)
        warm, warm_report = run_plan_with_store(
            SimulationSession(seed=0), plan, from_store=store_dir
        )
        assert (warm_report.hits, warm_report.misses) == (2, 0)
        assert warm_report.written == 0
        assert warm.cache_stats.misses == 0  # nothing computed
        for run in (cold, warm):
            for got, ref in zip(
                run.scenario_results, serial.scenario_results
            ):
                for a, b in zip(got.result.series, ref.result.series):
                    assert np.array_equal(a.x, b.x)
                    assert np.array_equal(a.y, b.y)

    def test_partial_hits_compute_only_misses(self, tmp_path):
        from repro.api import RunPlan

        store_dir = tmp_path / "store"
        first = RunPlan(
            name="half",
            scenarios=(Scenario("fig6", overrides={"n_points": 6}),),
        )
        run_plan_with_store(
            SimulationSession(seed=0), first, update_store=store_dir
        )
        both, report = run_plan_with_store(
            SimulationSession(seed=0),
            self._plan(),
            from_store=store_dir,
            update_store=store_dir,
        )
        assert (report.hits, report.misses, report.written) == (1, 1, 1)
        assert len(both.scenario_results) == 2

    def test_session_defaults_split_the_store_key(self, tmp_path):
        from repro.api import RunPlan

        store_dir = tmp_path / "store"
        plan = RunPlan(
            scenarios=(Scenario("fig6", overrides={"n_points": 6}),)
        )
        _, cold = run_plan_with_store(
            SimulationSession(seed=0),
            plan,
            from_store=store_dir,
            update_store=store_dir,
        )
        # A hot session computes under a different canonical hash.
        _, hot = run_plan_with_store(
            SimulationSession(seed=0, defaults={"temperature_k": 400.0}),
            plan,
            from_store=store_dir,
            update_store=store_dir,
        )
        assert cold.hashes != hot.hashes
        assert (hot.hits, hot.misses) == (0, 1)
        # The cold identity still hits.
        _, again = run_plan_with_store(
            SimulationSession(seed=0), plan, from_store=store_dir
        )
        assert (again.hits, again.misses) == (1, 0)
