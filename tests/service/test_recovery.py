"""Crash-safe restart: journal replay through the manager and the app.

A "crash" at manager level is :meth:`JobManager.close` without a
terminal journal entry (shutdown cancellation is deliberately not
journaled as terminal -- that is what re-queues the job); a clean
shutdown is the app's ``stop()`` appending the shutdown marker. Each
restart builds a *new* manager/app over the same journal path and
store directory, exactly what a restarted service process does.
"""

import asyncio
import threading

import pytest

from repro.api import RunPlan, Scenario, scenario_hash
from repro.service import (
    JobJournal,
    JobManager,
    ResultStore,
    ServiceApp,
)


def _plan(n_points=6, experiment="fig6", name="recovery-test"):
    return RunPlan(
        name=name,
        scenarios=(Scenario(experiment, overrides={"n_points": n_points}),),
    )


def _manager(tmp_path, **kwargs):
    kwargs.setdefault("executor", "thread")
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("journal", JobJournal(tmp_path / "journal.jsonl"))
    return JobManager(ResultStore(tmp_path / "store"), **kwargs)


def _run(coro):
    return asyncio.run(coro)


def _blocking_compute(started, release):
    """A compute fake that parks inside the pool until released."""

    def compute(scenarios, **kwargs):
        started.set()
        assert release.wait(timeout=30)
        from repro.service.jobs import RunPlan, run_plan_parallel

        return run_plan_parallel(
            RunPlan(name="service-job", scenarios=tuple(scenarios)),
            workers=1,
            executor="thread",
        ).scenario_results

    return compute


class TestManagerRecovery:
    def test_fresh_journal_reports_fresh(self, tmp_path):
        async def scenario():
            manager = _manager(tmp_path)
            try:
                return await manager.recover()
            finally:
                await manager.close()

        report = _run(scenario())
        assert report["mode"] == "fresh"
        assert report["restored"] == report["requeued"] == 0

    def test_terminal_jobs_are_restored_across_restart(self, tmp_path):
        async def first_life():
            manager = _manager(tmp_path)
            try:
                await manager.recover()
                job = manager.submit(_plan())
                await asyncio.gather(*manager._tasks)
                return job.id, job.record()
            finally:
                await manager.close()

        job_id, original = _run(first_life())
        assert original.status == "done"

        async def second_life():
            manager = _manager(tmp_path)
            try:
                report = await manager.recover()
                return report, manager.record_of(job_id), manager.stats()
            finally:
                await manager.close()

        report, restored, stats = _run(second_life())
        assert report["mode"] == "crash"  # no clean-shutdown marker
        assert report["restored"] == 1
        assert restored is not None
        assert restored.status == "done"
        assert restored.plan_hash == original.plan_hash
        assert restored.scenario_hashes == original.scenario_hashes
        assert restored.sources == original.sources
        assert restored.plan_name == "recovery-test"
        assert stats["jobs_restored"] == 1

    def test_unfinished_job_requeues_and_completes(
        self, tmp_path, monkeypatch
    ):
        started, release = threading.Event(), threading.Event()
        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results",
            _blocking_compute(started, release),
        )

        async def crash_life():
            manager = _manager(tmp_path)
            await manager.recover()
            job = manager.submit(_plan())
            await asyncio.sleep(0)
            assert await asyncio.get_running_loop().run_in_executor(
                None, started.wait, 30
            )
            # Crash: cancel without journaling a terminal state.
            await manager.close()
            release.set()  # let the orphaned pool thread unwind
            return job.id

        job_id = _run(crash_life())

        async def next_life():
            release.set()
            manager = _manager(tmp_path)
            try:
                report = await manager.recover()
                await asyncio.gather(*manager._tasks)
                return report, manager.record_of(job_id), manager.stats()
            finally:
                await manager.close()

        report, record, stats = _run(next_life())
        assert report["mode"] == "crash"
        assert report["requeued"] == 1
        assert record is not None
        assert record.status == "done"
        assert stats["jobs_recovered"] == 1

    def test_recovered_plan_recomputes_only_missing_scenarios(
        self, tmp_path, monkeypatch
    ):
        plan = RunPlan(
            name="two",
            scenarios=(
                Scenario("fig6", overrides={"n_points": 6}),
                Scenario("fig6", overrides={"n_points": 7}),
            ),
        )

        async def seed_life():
            manager = _manager(tmp_path)
            try:
                await manager.recover()
                # Persist ONE of the two scenarios before the crash --
                # the salvage situation PR 9 leaves behind.
                manager.submit(_plan(n_points=6, name="seed"))
                await asyncio.gather(*manager._tasks)
            finally:
                await manager.close()

        _run(seed_life())

        async def crash_life():
            manager = _manager(tmp_path)
            await manager.recover()
            job = manager.submit(plan)
            # Crash before the job's resolve cycle touches anything.
            await manager.close()
            return job.id

        job_id = _run(crash_life())

        seen = []
        real = __import__(
            "repro.service.jobs", fromlist=["compute_scenario_results"]
        ).compute_scenario_results

        def counting(scenarios, **kwargs):
            seen.append(tuple(scenarios))
            kwargs["executor"] = "thread"
            return real(scenarios, **kwargs)

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", counting
        )

        async def recovery_life():
            manager = _manager(tmp_path)
            try:
                await manager.recover()
                await asyncio.gather(*manager._tasks)
                return manager.record_of(job_id)
            finally:
                await manager.close()

        record = _run(recovery_life())
        assert record is not None
        assert record.status == "done"
        assert record.store_hits == 1
        assert record.computed == 1
        # The compute kernel only ever saw the missing scenario.
        assert len(seen) == 1
        assert len(seen[0]) == 1
        assert seen[0][0].overrides == {"n_points": 7}

    def test_expired_map_survives_restart(self, tmp_path):
        async def first_life():
            manager = _manager(
                tmp_path, job_ttl_s=0.001, max_records=1024
            )
            try:
                await manager.recover()
                job = manager.submit(_plan())
                await asyncio.gather(*manager._tasks)
                await asyncio.sleep(0.01)
                manager._evict_finished()
                assert manager.record_of(job.id).status == "expired"
                return job.id
            finally:
                await manager.close()

        job_id = _run(first_life())

        async def second_life():
            manager = _manager(tmp_path)
            try:
                report = await manager.recover()
                return report, manager.record_of(job_id)
            finally:
                await manager.close()

        report, record = _run(second_life())
        assert report["expired"] == 1
        assert record is not None
        assert record.status == "expired"

    def test_job_ids_continue_after_restart(self, tmp_path):
        async def first_life():
            manager = _manager(tmp_path)
            try:
                await manager.recover()
                job = manager.submit(_plan())
                await asyncio.gather(*manager._tasks)
                return job.id
            finally:
                await manager.close()

        assert _run(first_life()) == "job-1"

        async def second_life():
            manager = _manager(tmp_path)
            try:
                await manager.recover()
                return manager.submit(_plan(n_points=8)).id
            finally:
                await manager.close()

        assert _run(second_life()) == "job-2"

    def test_drain_timeout_reports_stragglers(self, tmp_path, monkeypatch):
        started, release = threading.Event(), threading.Event()

        # The job is cancelled, its result discarded: block, then exit
        # cheaply so the orphaned pool thread cannot stall later tests.
        def parked(scenarios, **kwargs):
            started.set()
            assert release.wait(timeout=30)
            return ()

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", parked
        )

        async def scenario():
            manager = _manager(tmp_path)
            try:
                await manager.recover()
                manager.submit(_plan())
                await asyncio.sleep(0)
                drained = await manager.drain(timeout_s=0.05)
                return drained
            finally:
                await manager.close()
                release.set()

        assert _run(scenario()) is False

    def test_no_journal_recover_is_a_noop(self, tmp_path):
        async def scenario():
            manager = _manager(tmp_path, journal=None)
            try:
                report = await manager.recover()
                job = manager.submit(_plan())
                await asyncio.gather(*manager._tasks)
                return report, job.record()
            finally:
                await manager.close()

        report, record = _run(scenario())
        assert report["mode"] == "fresh"
        assert record.status == "done"


class TestLeases:
    def test_rival_owner_waits_then_rides_the_store(
        self, tmp_path, monkeypatch
    ):
        started, release = threading.Event(), threading.Event()
        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results",
            _blocking_compute(started, release),
        )
        path = tmp_path / "journal.jsonl"
        store = ResultStore(tmp_path / "store")

        async def scenario():
            # TTL comfortably above any event-loop stall a loaded test
            # machine produces, so A's heartbeat always outruns expiry.
            a = JobManager(
                store,
                executor="thread",
                journal=JobJournal(path),
                owner_id="owner-a",
                lease_ttl_s=3.0,
            )
            b = JobManager(
                store,
                executor="thread",
                journal=JobJournal(path),
                owner_id="owner-b",
                lease_ttl_s=3.0,
            )
            try:
                job_a = a.submit(_plan())
                await asyncio.sleep(0)
                assert await asyncio.get_running_loop().run_in_executor(
                    None, started.wait, 30
                )
                job_b = b.submit(_plan())
                # B must be parked on the lease while A computes.
                for _ in range(200):
                    await asyncio.sleep(0.01)
                    if b.counters["lease_waits"] >= 1:
                        break
                    if job_b.status not in ("queued", "running"):
                        break
                assert b.counters["lease_waits"] >= 1, (
                    job_b.status,
                    job_b.error,
                    dict(b.counters),
                    b.journal.state.leases,
                )
                assert job_b.status == "running"
                release.set()
                await asyncio.gather(*a._tasks)
                await asyncio.gather(*b._tasks)
                return job_a.record(), job_b.record()
            finally:
                await a.close()
                await b.close()

        rec_a, rec_b = _run(scenario())
        assert rec_a.status == "done"
        assert rec_a.sources == ("computed",)
        assert rec_b.status == "done"
        # The loser of the lease race never recomputes: by the time it
        # acquires, the winner's result is in the shared store.
        assert rec_b.sources == ("store",)


class TestAppRecovery:
    def test_clean_restart_recovers_jobs_and_marks_mode(self, tmp_path):
        store_dir = tmp_path / "store"

        async def first_life():
            app = ServiceApp(str(store_dir), executor="thread")
            await app.start()
            job = app.manager.submit(_plan())
            await asyncio.gather(*app.manager._tasks)
            hashes = job.record().scenario_hashes
            await app.stop()
            return job.id, hashes

        job_id, hashes = _run(first_life())

        async def second_life():
            app = ServiceApp(str(store_dir), executor="thread")
            await app.start()
            try:
                record = app.manager.record_of(job_id)
                stored = app.store.get(hashes[0])
                return app.recovery, record, stored is not None
            finally:
                await app.stop()

        recovery, record, in_store = _run(second_life())
        assert recovery["mode"] == "clean"
        assert recovery["restored"] == 1
        assert record is not None
        assert record.status == "done"
        assert in_store

    def test_unfinished_job_requeues_across_app_restart(
        self, tmp_path, monkeypatch
    ):
        started, release = threading.Event(), threading.Event()
        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results",
            _blocking_compute(started, release),
        )
        store_dir = tmp_path / "store"

        async def crash_life():
            app = ServiceApp(str(store_dir), executor="thread")
            await app.start()
            job = app.manager.submit(_plan())
            await asyncio.sleep(0)
            assert await asyncio.get_running_loop().run_in_executor(
                None, started.wait, 30
            )
            await app.stop()  # cancels the job; journal keeps it pending
            return job.id

        job_id = _run(crash_life())
        release.set()

        async def next_life():
            app = ServiceApp(str(store_dir), executor="thread")
            await app.start()
            try:
                await asyncio.gather(*app.manager._tasks)
                return app.recovery, app.manager.record_of(job_id)
            finally:
                await app.stop()

        recovery, record = _run(next_life())
        assert recovery["requeued"] == 1
        assert record is not None
        assert record.status == "done"
        expected = scenario_hash(_plan().expanded()[0])
        assert record.scenario_hashes == (expected,)

    def test_journal_none_disables_durability(self, tmp_path):
        store_dir = tmp_path / "store"

        async def first_life():
            app = ServiceApp(
                str(store_dir), executor="thread", journal=None
            )
            await app.start()
            job = app.manager.submit(_plan())
            await asyncio.gather(*app.manager._tasks)
            await app.stop()
            return job.id

        job_id = _run(first_life())
        assert not (store_dir / "journal.jsonl").exists()

        async def second_life():
            app = ServiceApp(
                str(store_dir), executor="thread", journal=None
            )
            await app.start()
            try:
                return app.manager.record_of(job_id)
            finally:
                await app.stop()

        assert _run(second_life()) is None

    def test_bad_drain_timeout_rejected(self, tmp_path):
        with pytest.raises(Exception):
            ServiceApp(str(tmp_path / "store"), drain_timeout_s=-1.0)
