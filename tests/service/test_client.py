"""The client's retry policy, in isolation from any real server.

``urllib.request.urlopen`` is monkeypatched with scripted outcomes so
the backoff/retry behaviour is fully deterministic: which statuses
retry, which fail fast, how ``Retry-After`` floors the sleep, and how
connection errors (server restarting) are ridden out.
"""

import io
import json
import random
import urllib.error

import pytest

from repro.service import (
    JobLostError,
    ServiceError,
    SimulationServiceClient,
)
from repro.service.client import RETRYABLE_STATUSES


class Script:
    """Feed urlopen a scripted sequence of responses/exceptions."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = []

    def __call__(self, request, timeout=None):
        self.calls.append(request)
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return _response(outcome)


def _response(payload):
    class _Resp:
        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def read(self):
            return json.dumps(payload).encode()

    return _Resp()


def _http_error(code, headers=None, payload=None):
    import email.message

    msg = email.message.Message()
    for key, value in (headers or {}).items():
        msg[key] = value
    body = json.dumps(payload or {"error": "scripted"}).encode()
    return urllib.error.HTTPError(
        "http://test/x", code, "scripted", msg, io.BytesIO(body)
    )


@pytest.fixture
def sleeps(monkeypatch):
    """Capture client sleeps instead of actually sleeping."""
    recorded = []
    return recorded


def _client(script, sleeps, monkeypatch, **kwargs):
    monkeypatch.setattr("urllib.request.urlopen", script)
    kwargs.setdefault("retries", 3)
    kwargs.setdefault("backoff_s", 0.1)
    kwargs.setdefault("rng", random.Random(7))
    return SimulationServiceClient(
        "http://test", sleep=sleeps.append, **kwargs
    )


class TestRetries:
    def test_retryable_statuses_are_the_documented_pair(self):
        assert RETRYABLE_STATUSES == (429, 503)

    def test_success_on_first_try_never_sleeps(self, sleeps, monkeypatch):
        script = Script([{"status": "ok"}])
        client = _client(script, sleeps, monkeypatch)
        assert client.health() == {"status": "ok"}
        assert sleeps == []

    def test_429_retries_until_success(self, sleeps, monkeypatch):
        script = Script([_http_error(429), _http_error(429), {"ok": 1}])
        client = _client(script, sleeps, monkeypatch)
        assert client.health() == {"ok": 1}
        assert len(script.calls) == 3
        assert len(sleeps) == 2

    def test_503_retries_until_success(self, sleeps, monkeypatch):
        script = Script([_http_error(503), {"ok": 1}])
        client = _client(script, sleeps, monkeypatch)
        assert client.health() == {"ok": 1}
        assert len(script.calls) == 2

    def test_connection_errors_are_retried(self, sleeps, monkeypatch):
        script = Script(
            [
                urllib.error.URLError("refused"),
                ConnectionResetError("reset"),
                {"ok": 1},
            ]
        )
        client = _client(script, sleeps, monkeypatch)
        assert client.health() == {"ok": 1}
        assert len(script.calls) == 3

    def test_exhausted_budget_raises_with_last_status(
        self, sleeps, monkeypatch
    ):
        script = Script([_http_error(429)] * 3)
        client = _client(script, sleeps, monkeypatch, retries=2)
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 429
        assert "3 attempts" in str(err.value)

    def test_non_retryable_status_fails_immediately(
        self, sleeps, monkeypatch
    ):
        script = Script(
            [_http_error(404, payload={"error": "no such job"})]
        )
        client = _client(script, sleeps, monkeypatch)
        with pytest.raises(ServiceError) as err:
            client.job("job-1")
        assert err.value.status == 404
        assert "no such job" in str(err.value)
        assert len(script.calls) == 1
        assert sleeps == []

    def test_zero_retries_means_one_attempt(self, sleeps, monkeypatch):
        script = Script([_http_error(503)])
        client = _client(script, sleeps, monkeypatch, retries=0)
        with pytest.raises(ServiceError):
            client.health()
        assert len(script.calls) == 1


class TestBackoff:
    def test_backoff_grows_exponentially_and_caps(self):
        client = SimulationServiceClient(
            "http://test",
            backoff_s=0.1,
            max_backoff_s=0.4,
            rng=random.Random(0),
        )
        # Jitter multiplies by [0.5, 1.5): bound, not exact values.
        for attempt, base in ((0, 0.1), (1, 0.2), (2, 0.4), (5, 0.4)):
            value = client._backoff(attempt)
            assert 0.5 * base <= value <= 1.5 * base

    def test_retry_after_floors_the_backoff(self):
        client = SimulationServiceClient(
            "http://test", backoff_s=0.01, rng=random.Random(0)
        )
        assert client._backoff(0, retry_after=2.0) >= 2.0

    def test_retry_after_header_is_honoured(self, sleeps, monkeypatch):
        script = Script(
            [_http_error(429, headers={"Retry-After": "3"}), {"ok": 1}]
        )
        client = _client(script, sleeps, monkeypatch)
        assert client.health() == {"ok": 1}
        assert sleeps[0] >= 3.0

    def test_jitter_spreads_synchronised_clients(self):
        values = {
            SimulationServiceClient(
                "http://test", backoff_s=1.0, rng=random.Random(seed)
            )._backoff(0)
            for seed in range(8)
        }
        assert len(values) > 1


class _FakeClock:
    """A monotonic clock that only advances when the client sleeps."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _deadline_client(script, monkeypatch, **kwargs):
    """A client whose sleeps advance a fake wall clock."""
    clock = _FakeClock()
    sleeps = []

    def sleep(pause):
        sleeps.append(pause)
        clock.now += pause

    monkeypatch.setattr("urllib.request.urlopen", script)
    kwargs.setdefault("retries", 5)
    kwargs.setdefault("backoff_s", 0.1)
    kwargs.setdefault("rng", random.Random(7))
    client = SimulationServiceClient(
        "http://test", sleep=sleep, clock=clock, **kwargs
    )
    return client, clock, sleeps


class TestTotalTimeout:
    def test_invalid_budget_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="total_timeout_s"):
            SimulationServiceClient("http://test", total_timeout_s=0.0)

    def test_retry_after_sleeps_are_capped_to_the_budget(
        self, monkeypatch
    ):
        """A server demanding a 10 s pause cannot hold a 2 s caller."""
        script = Script(
            [_http_error(429, headers={"Retry-After": "10"})] * 2
        )
        client, clock, sleeps = _deadline_client(
            script, monkeypatch, total_timeout_s=2.0
        )
        with pytest.raises(ServiceError) as err:
            client.health()
        # The one sleep taken was clipped from >= 10 s down to 2 s.
        assert sleeps == [2.0]
        assert clock.now == 2.0
        assert "budget exhausted" in str(err.value)
        assert "after 2 attempt(s)" in str(err.value)
        assert err.value.status == 429

    def test_budget_expiry_reports_connection_failures_too(
        self, monkeypatch
    ):
        script = Script([urllib.error.URLError("refused")] * 3)
        client, clock, sleeps = _deadline_client(
            script, monkeypatch, total_timeout_s=0.15, backoff_s=0.2
        )
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 0
        assert "connection error" in str(err.value)

    def test_success_within_budget_is_unaffected(self, monkeypatch):
        script = Script([_http_error(503), {"ok": 1}])
        client, clock, sleeps = _deadline_client(
            script, monkeypatch, total_timeout_s=60.0
        )
        assert client.health() == {"ok": 1}
        assert len(sleeps) == 1
        assert sleeps[0] <= 60.0

    def test_no_budget_means_no_deadline(self, monkeypatch):
        """Without total_timeout_s a Retry-After floor is honoured in
        full -- the pre-deadline contract is untouched."""
        script = Script(
            [_http_error(429, headers={"Retry-After": "7"}), {"ok": 1}]
        )
        client, clock, sleeps = _deadline_client(script, monkeypatch)
        assert client.health() == {"ok": 1}
        assert sleeps[0] >= 7.0


class TestRequestShape:
    def test_client_id_header_is_sent(self, sleeps, monkeypatch):
        script = Script([{"ok": 1}])
        client = _client(script, sleeps, monkeypatch, client_id="me")
        client.health()
        assert script.calls[0].get_header("X-client-id") == "me"

    def test_submit_posts_the_plan_record(self, sleeps, monkeypatch):
        from repro.api import RunPlan, Scenario

        script = Script(
            [
                {
                    "id": "job-1",
                    "status": "queued",
                    "plan_name": "p",
                    "plan_hash": "",
                    "scenario_hashes": [],
                    "sources": [],
                }
            ]
        )
        client = _client(script, sleeps, monkeypatch)
        record = client.submit(
            RunPlan(name="p", scenarios=(Scenario("fig6"),))
        )
        assert record.id == "job-1"
        request = script.calls[0]
        assert request.get_method() == "POST"
        sent = json.loads(request.data.decode())
        assert sent["name"] == "p"
        assert sent["scenarios"][0]["experiment_id"] == "fig6"

    def test_submit_carries_the_priority_key(self, sleeps, monkeypatch):
        from repro.api import RunPlan, Scenario

        script = Script([{"id": "job-1", "status": "queued"}] * 2)
        client = _client(script, sleeps, monkeypatch)
        plan = RunPlan(name="p", scenarios=(Scenario("fig6"),))
        client.submit(plan, priority="high")
        assert json.loads(script.calls[0].data.decode())["priority"] == "high"
        client.submit(plan)  # no priority: the key is absent entirely
        assert "priority" not in json.loads(script.calls[1].data.decode())

    def test_submit_carries_the_timeout_key(self, sleeps, monkeypatch):
        from repro.api import RunPlan, Scenario

        script = Script([{"id": "job-1", "status": "queued"}] * 2)
        client = _client(script, sleeps, monkeypatch)
        plan = RunPlan(name="p", scenarios=(Scenario("fig6"),))
        client.submit(plan, timeout_s=45)
        sent = json.loads(script.calls[0].data.decode())
        assert sent["timeout_s"] == 45.0
        client.submit(plan)  # no deadline: the key is absent entirely
        assert "timeout_s" not in json.loads(script.calls[1].data.decode())

    def test_cancel_sends_delete_to_the_job(self, sleeps, monkeypatch):
        script = Script([{"id": "job-7", "status": "cancelled"}])
        client = _client(script, sleeps, monkeypatch)
        record = client.cancel("job-7")
        assert record.status == "cancelled"
        request = script.calls[0]
        assert request.get_method() == "DELETE"
        assert request.full_url.endswith("/jobs/job-7")

    def test_prune_posts_budgets_to_admin_endpoint(
        self, sleeps, monkeypatch
    ):
        report = {"pruned": 1, "hashes": ["ab" * 32], "protected": 0,
                  "entries": 3}
        script = Script([report, dict(report)])
        client = _client(script, sleeps, monkeypatch)
        assert client.prune(max_entries=3, max_age_s=60) == report
        request = script.calls[0]
        assert request.get_method() == "POST"
        assert request.full_url.endswith("/admin/prune")
        sent = json.loads(request.data.decode())
        assert sent == {"max_entries": 3, "max_age_s": 60.0}
        client.prune()  # no budgets: an empty object, not null
        assert json.loads(script.calls[1].data.decode()) == {}

    def test_wait_treats_cancelled_and_expired_as_terminal(
        self, sleeps, monkeypatch
    ):
        script = Script(
            [
                {"id": "job-1", "status": "running"},
                {"id": "job-1", "status": "cancelled"},
                {"id": "job-2", "status": "expired"},
                {"id": "job-3", "status": "timeout"},
            ]
        )
        client = _client(script, sleeps, monkeypatch)
        assert client.wait("job-1", poll_s=0.0).status == "cancelled"
        assert client.wait("job-2", poll_s=0.0).status == "expired"
        assert client.wait("job-3", poll_s=0.0).status == "timeout"

    def test_wait_times_out_on_never_finishing_job(
        self, sleeps, monkeypatch
    ):
        running = {
            "id": "job-1",
            "status": "running",
        }
        script = Script([running] * 50)
        client = _client(script, sleeps, monkeypatch)
        with pytest.raises(ServiceError) as err:
            client.wait("job-1", poll_s=0.0, timeout_s=0.0)
        assert "still" in str(err.value)

    def test_verify_posts_repair_flag_to_admin_endpoint(
        self, sleeps, monkeypatch
    ):
        report = {
            "scanned": 3,
            "intact": 3,
            "legacy": 0,
            "ok": True,
            "corrupt": [],
            "quarantined": [],
        }
        script = Script([report, dict(report)])
        client = _client(script, sleeps, monkeypatch)
        assert client.verify() == report
        request = script.calls[0]
        assert request.get_method() == "POST"
        assert request.full_url.endswith("/admin/verify")
        assert json.loads(request.data.decode()) == {"repair": False}
        client.verify(repair=True)
        assert json.loads(script.calls[1].data.decode()) == {"repair": True}


class TestJobLost:
    """404-after-accepted: a restarted, journal-less service forgot us."""

    def test_wait_raises_typed_job_lost_on_404(self, sleeps, monkeypatch):
        script = Script(
            [
                {"id": "job-1", "status": "running"},
                _http_error(404, payload={"error": "no such job: job-1"}),
            ]
        )
        client = _client(script, sleeps, monkeypatch)
        with pytest.raises(JobLostError) as err:
            client.wait("job-1", poll_s=0.0, plan_hash="ab" * 32)
        assert err.value.job_id == "job-1"
        assert err.value.plan_hash == "ab" * 32
        assert err.value.status == 404
        assert "resubmit" in str(err.value)

    def test_job_lost_is_a_service_error(self):
        # Callers catching the broad class keep working untyped.
        assert issubclass(JobLostError, ServiceError)
        err = JobLostError("job-9")
        assert err.job_id == "job-9"
        assert err.plan_hash == ""

    def test_wait_non_404_errors_pass_through_untouched(
        self, sleeps, monkeypatch
    ):
        script = Script([_http_error(500, payload={"error": "boom"})])
        client = _client(script, sleeps, monkeypatch)
        with pytest.raises(ServiceError) as err:
            client.wait("job-1", poll_s=0.0)
        assert err.value.status == 500
        assert not isinstance(err.value, JobLostError)
