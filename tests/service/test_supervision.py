"""Service-layer supervision: job deadlines and mid-plan salvage.

The watchdog path (``timeout_s`` on submit -> typed ``timeout``
terminal state, ``jobs_timeout`` counter, reconciliation intact) and
the :class:`~repro.service.jobs.PartialComputeError` salvage path
(completed scenarios persisted and their claims resolved before the
job fails) -- both at the :class:`JobManager` level with monkeypatched
computes for deterministic timing, plus the HTTP surface of the
``timeout_s`` submit field. The end-to-end crash-and-resume story
lives in ``tests/chaos``.
"""

import asyncio
import threading

import pytest

from repro.api import RunPlan, Scenario
from repro.api.plan import ShardFailure
from repro.errors import ConfigurationError
from repro.service import (
    JobManager,
    PartialComputeError,
    ResultStore,
    ServiceApp,
    ServiceError,
    ServiceThread,
    SimulationServiceClient,
)
from repro.service.jobs import TERMINAL_STATUSES


def _plan(n_points=6, experiment="fig6"):
    return RunPlan(
        name="supervision-test",
        scenarios=(Scenario(experiment, overrides={"n_points": n_points}),),
    )


def _manager(tmp_path, **kwargs):
    kwargs.setdefault("executor", "thread")
    kwargs.setdefault("workers", 1)
    return JobManager(ResultStore(tmp_path / "store"), **kwargs)


def _run(coro):
    return asyncio.run(coro)


async def _until_terminal(job, budget_s=30.0):
    for _ in range(int(budget_s / 0.02)):
        if job.status in TERMINAL_STATUSES:
            return
        await asyncio.sleep(0.02)
    raise AssertionError(f"job stuck in {job.status!r}")


class TestJobDeadline:
    def test_expired_job_lands_in_typed_timeout_state(
        self, tmp_path, monkeypatch
    ):
        started = threading.Event()
        release = threading.Event()

        def blocking_compute(scenarios, **kwargs):
            started.set()
            assert release.wait(timeout=30)
            raise AssertionError("a timed-out job must not return results")

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", blocking_compute
        )

        async def scenario():
            manager = _manager(tmp_path)
            try:
                job = manager.submit(_plan(), timeout_s=0.2)
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(
                    None, lambda: started.wait(timeout=30)
                )
                await _until_terminal(job)
                release.set()  # let the abandoned compute thread exit
                await asyncio.gather(
                    *manager._tasks, return_exceptions=True
                )
                return job.record(), manager.stats()
            finally:
                await manager.close()

        record, stats = _run(scenario())
        assert record.status == "timeout"
        assert "deadline" in record.error
        assert record.timeout_s == 0.2
        assert stats["jobs_timeout"] == 1
        assert stats["jobs_failed"] == 0
        assert stats["jobs_cancelled"] == 0
        assert stats["jobs_done"] == 0

    def test_job_finishing_in_time_is_unaffected(self, tmp_path):
        async def scenario():
            manager = _manager(tmp_path)
            try:
                job = manager.submit(_plan(), timeout_s=120.0)
                await asyncio.gather(*manager._tasks)
                return job.record(), manager.stats()
            finally:
                await manager.close()

        record, stats = _run(scenario())
        assert record.status == "done"
        assert record.timeout_s == 120.0
        assert stats["jobs_done"] == 1
        assert stats["jobs_timeout"] == 0

    def test_invalid_deadline_rejected(self, tmp_path):
        async def scenario():
            manager = _manager(tmp_path)
            try:
                with pytest.raises(ConfigurationError, match="timeout_s"):
                    manager.submit(_plan(), timeout_s=0.0)
            finally:
                await manager.close()

        _run(scenario())


class TestPartialSalvage:
    def test_salvaged_results_reach_the_store_before_the_job_fails(
        self, tmp_path, monkeypatch, make_scenario_result
    ):
        """The manager persists PartialComputeError survivors and the
        job fails with the supervisor's message naming what was lost."""
        plan = RunPlan(
            name="salvage",
            scenarios=(
                Scenario("fig6", overrides={"n_points": 3}),
                Scenario("fig7", overrides={"n_points": 3}),
            ),
        )
        survivor = make_scenario_result(
            experiment_id="fig6", overrides={"n_points": 3}
        )

        def partial_compute(scenarios, **kwargs):
            raise PartialComputeError(
                "1 of 2 scenarios failed (crash) after shard retries: "
                "['fig7']",
                completed={0: survivor},
                failures=(
                    ShardFailure(
                        index=1,
                        positions=(1,),
                        scenario_ids=("fig7",),
                        attempts=3,
                        cause="crash",
                    ),
                ),
            )

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", partial_compute
        )

        async def scenario():
            manager = _manager(tmp_path)
            try:
                job = manager.submit(plan)
                await asyncio.gather(
                    *manager._tasks, return_exceptions=True
                )
                return job.record(), manager.stats()
            finally:
                await manager.close()

        record, stats = _run(scenario())
        assert record.status == "failed"
        assert "fig7" in record.error
        assert stats["jobs_failed"] == 1
        # The survivor is in the store under the job's own hash for it.
        store = ResultStore(tmp_path / "store")
        assert len(store) == 1
        assert record.scenario_hashes[0] in store
        assert stats["computed"] == 1
        # No dangling single-flight claims for the lost scenario.
        assert stats["inflight_scenarios"] == 0


class TestHttpSurface:
    def test_submit_timeout_field_round_trips(self, tmp_path):
        app = ServiceApp(
            ResultStore(tmp_path / "store"), workers=1, executor="thread"
        )
        with ServiceThread(app) as service:
            client = SimulationServiceClient(
                service.url, retries=2, backoff_s=0.01
            )
            accepted = client.submit(_plan(n_points=4), timeout_s=90.0)
            assert accepted.timeout_s == 90.0
            final = client.wait(accepted.id, timeout_s=60.0)
            assert final.status == "done"
            assert final.timeout_s == 90.0

    def test_submit_rejects_bad_timeout_values(self, tmp_path):
        app = ServiceApp(
            ResultStore(tmp_path / "store"), workers=1, executor="thread"
        )
        with ServiceThread(app) as service:
            client = SimulationServiceClient(
                service.url, retries=2, backoff_s=0.01
            )
            with pytest.raises(ServiceError, match="timeout_s") as excinfo:
                client.submit(_plan(n_points=4), timeout_s=-5.0)
            assert excinfo.value.status == 400
