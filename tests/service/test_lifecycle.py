"""Operational lifecycle under stress: GC racing live work, restarts.

The prune-under-load guarantees of the service GC surface:

* pruning interleaved with concurrent submissions and store writes
  never fails a job or 404s a result some retained job references
  (the pinning contract of ``JobManager.protected_hashes``);
* a service restarted after a prune serves exactly what survived --
  pruned hashes recompute, survivors hit the store, and the index
  stays consistent with the objects on disk.
"""

import threading
import time

from repro.api import RunPlan, Scenario, scenario_hash
from repro.service import (
    ResultStore,
    ServiceApp,
    ServiceThread,
    SimulationServiceClient,
)


def _one(n, experiment="fig6"):
    return RunPlan(
        name=f"load-{experiment}-{n}",
        scenarios=(Scenario(experiment, overrides={"n_points": n}),),
    )


def _app(store_dir, **kwargs):
    kwargs.setdefault("executor", "thread")
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("rate_per_s", 1000.0)
    kwargs.setdefault("burst", 1000.0)
    return ServiceApp(ResultStore(store_dir), **kwargs)


class TestPruneUnderLoad:
    def test_harsh_prunes_interleaved_with_submissions(self, tmp_path):
        """Zero-entry prunes race N submitting threads; no job fails.

        Every submitted job's results stay fetchable right after its
        terminal poll because retained jobs pin their hashes -- the
        exact TOCTOU window the GC pinning exists to close.
        """
        app = _app(
            tmp_path / "store", max_pending=32, max_concurrent=4
        )
        errors = []
        stop_pruning = threading.Event()

        def submitter(worker, points):
            client = SimulationServiceClient(
                thread.url, client_id=f"load-{worker}", backoff_s=0.01
            )
            try:
                for n in points:
                    results, record = client.run_plan(
                        _one(n), timeout_s=120
                    )
                    assert record.status == "done"
                    assert len(results) == 1
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        def pruner():
            client = SimulationServiceClient(
                thread.url, client_id="gc", backoff_s=0.01
            )
            try:
                while not stop_pruning.is_set():
                    client.prune(max_entries=0)
                    time.sleep(0.01)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        with ServiceThread(app) as thread:
            workers = [
                threading.Thread(
                    target=submitter, args=(i, range(4 + i * 4, 8 + i * 4))
                )
                for i in range(3)
            ]
            gc = threading.Thread(target=pruner)
            gc.start()
            for w in workers:
                w.start()
            for w in workers:
                w.join(timeout=180)
            stop_pruning.set()
            gc.join(timeout=30)
            stats = SimulationServiceClient(thread.url).stats()

        assert errors == []
        assert stats["jobs"]["jobs_failed"] == 0
        assert stats["jobs"]["jobs_done"] == 12

    def test_prune_interleaved_with_direct_store_puts(
        self, tmp_path, make_scenario_result
    ):
        """Store-level race: puts and prunes from rival threads leave
        every surviving object readable and the index consistent."""
        store = ResultStore(tmp_path / "store")
        errors = []
        barrier = threading.Barrier(3)

        def writer(offset):
            try:
                barrier.wait(timeout=10)
                for n in range(offset, offset + 8):
                    result = make_scenario_result(
                        overrides={"n_points": n + 4}
                    )
                    store.put(scenario_hash(result.scenario), result)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        def pruner():
            try:
                barrier.wait(timeout=10)
                for _ in range(10):
                    store.prune(max_entries=3)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(0,)),
            threading.Thread(target=writer, args=(100,)),
            threading.Thread(target=pruner),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        # Whatever survived parses cleanly and reindexes consistently.
        survivors = store.hashes()
        for h in survivors:
            assert store.get_record(h).hash == h
        assert set(store.reindex()) == set(survivors)


class TestRestartAfterPrune:
    def test_pruned_hashes_recompute_survivors_hit(self, tmp_path):
        store_dir = tmp_path / "store"
        keep_plan, drop_plan = _one(6), _one(7, experiment="fig7")
        with ServiceThread(_app(store_dir)) as thread:
            client = SimulationServiceClient(thread.url, backoff_s=0.01)
            _, kept = client.run_plan(keep_plan)
            _, dropped = client.run_plan(drop_plan)
            assert kept.computed == 1 and dropped.computed == 1
        # Offline GC between service generations: drop one result.
        store = ResultStore(store_dir)
        removed = store.prune(
            max_entries=1, keep=set(kept.scenario_hashes)
        )
        assert removed == tuple(dropped.scenario_hashes)
        assert set(store.index()) == set(kept.scenario_hashes)
        # A fresh service on the pruned store: the survivor is a store
        # hit, the pruned hash recomputes -- and lands back on disk.
        with ServiceThread(_app(store_dir)) as thread:
            client = SimulationServiceClient(thread.url, backoff_s=0.01)
            _, warm = client.run_plan(keep_plan)
            assert warm.sources == ("store",)
            _, cold = client.run_plan(drop_plan)
            assert cold.sources == ("computed",)
            assert cold.scenario_hashes == dropped.scenario_hashes
        assert set(ResultStore(store_dir).hashes()) == set(
            kept.scenario_hashes + dropped.scenario_hashes
        )
