"""Shared fixtures of the service suite: tiny results and plans.

``make_scenario_result`` builds a small synthetic
:class:`~repro.api.plan.ScenarioResult` without running any physics,
so store/record tests stay fast; the end-to-end suites use real (but
low-point-count) experiments instead.
"""

import numpy as np
import pytest

from repro.api import Scenario, ScenarioResult
from repro.engine.cache import CacheStats
from repro.experiments.base import ExperimentResult, ShapeCheck
from repro.reporting.ascii_plot import PlotSeries


@pytest.fixture
def make_scenario_result():
    """Factory for small, fully populated ScenarioResult fixtures."""

    def build(
        experiment_id="fig6",
        overrides=None,
        label=None,
        y=(1.0, 2.0, 4.0),
    ):
        scenario = Scenario(
            experiment_id=experiment_id,
            overrides=dict(overrides or {}),
            label=label,
        )
        result = ExperimentResult(
            experiment_id=experiment_id,
            title="synthetic",
            x_label="x",
            y_label="y",
            series=(
                PlotSeries(
                    label="s",
                    x=np.asarray([0.0, 1.0, 2.0]),
                    y=np.asarray(y, dtype=float),
                ),
            ),
            parameters={"n_points": 3},
            checks=(ShapeCheck(claim="rises", passed=True, detail=""),),
        )
        return ScenarioResult(
            scenario=scenario,
            result=result,
            elapsed_s=0.25,
            cache_stats=CacheStats(
                hits=3, misses=1, currsize=1, per_cache=(("fn", (3, 1, 1)),)
            ),
            reused_hits=2,
        )

    return build
