"""The write-ahead job journal: replay, compaction, leases, sharing.

Exercises :mod:`repro.service.journal` directly on temp files -- no
manager, no HTTP. The cross-process story (two replicas over one
journal file) is modelled with two :class:`JobJournal` instances on
the same path: appends go through ``O_APPEND`` descriptors and
``refresh()`` tail-reads foreign lines, which is exactly what two
processes would do.
"""

import json
import time

import pytest

from repro.errors import ConfigurationError
from repro.service import JobJournal, JournalEntry, LeaseRecord


def _accept(journal, job_id, plan_hash="ab" * 32, **extra):
    data = {
        "plan": {"name": "p", "scenarios": []},
        "plan_hash": plan_hash,
        "priority": 1,
        "timeout_s": None,
    }
    data.update(extra)
    return journal.append("accepted", job_id=job_id, data=data, sync=True)


def _finish(journal, job_id, status="done", **extra):
    data = {
        "status": status,
        "error": None,
        "elapsed_s": 0.5,
        "scenario_hashes": ["cd" * 32],
        "sources": ["computed"],
    }
    data.update(extra)
    return journal.append("terminal", job_id=job_id, data=data)


class TestAppendReplay:
    def test_empty_journal_is_fresh(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        assert journal.state.entries == 0
        assert journal.state.jobs == {}
        assert not journal.state.clean_shutdown

    def test_lifecycle_round_trips_through_replay(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        _accept(journal, "job-1")
        journal.append("running", job_id="job-1")
        _finish(journal, "job-1", status="done")

        reborn = JobJournal(path)
        job = reborn.state.jobs["job-1"]
        assert job.status == "done"
        assert job.terminal
        assert job.plan_hash == "ab" * 32
        assert job.scenario_hashes == ("cd" * 32,)
        assert job.sources == ("computed",)
        assert reborn.state.max_job_seq == 1

    def test_non_terminal_job_replays_as_pending(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        _accept(journal, "job-1")
        journal.append("running", job_id="job-1")

        reborn = JobJournal(path)
        job = reborn.state.jobs["job-1"]
        assert job.status == "running"
        assert not job.terminal

    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        _accept(journal, "job-1")
        _finish(journal, "job-1")
        # Simulate a crash mid-append: chop the last line in half.
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 17])

        reborn = JobJournal(path)
        job = reborn.state.jobs["job-1"]
        assert job.status == "queued"  # the terminal line was the casualty
        assert reborn.state.corrupt_lines == 0

    def test_corrupt_interior_lines_are_counted_and_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        _accept(journal, "job-1")
        with open(path, "a") as handle:
            handle.write("{not json}\n")
            handle.write('["not-an-object"]\n')
        _finish(journal, "job-1")

        reborn = JobJournal(path)
        assert reborn.state.corrupt_lines == 2
        assert reborn.state.jobs["job-1"].status == "done"

    def test_max_job_seq_tracks_highest_id(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        _accept(journal, "job-3")
        _accept(journal, "job-11")
        _accept(journal, "not-a-job-id")
        assert journal.state.max_job_seq == 11

    def test_evicted_entries_build_the_expired_map(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        _accept(journal, "job-1")
        _finish(journal, "job-1")
        journal.append("evicted", job_id="job-1", data={"status": "done"})
        reborn = JobJournal(path)
        assert "job-1" not in reborn.state.jobs
        assert reborn.state.expired == {"job-1": "done"}

    def test_expired_memory_is_bounded(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl", expired_cap=3)
        for i in range(6):
            journal.append(
                "evicted", job_id=f"job-{i}", data={"status": "done"}
            )
        assert len(journal.state.expired) == 3
        assert "job-5" in journal.state.expired
        assert "job-0" not in journal.state.expired

    def test_invalid_compact_every_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JobJournal(tmp_path / "journal.jsonl", compact_every=0)


class TestCleanShutdown:
    def test_shutdown_marker_means_clean(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        _accept(journal, "job-1")
        _finish(journal, "job-1")
        journal.mark_clean_shutdown()
        assert JobJournal(path).state.clean_shutdown

    def test_any_later_entry_clears_the_clean_flag(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.mark_clean_shutdown()
        journal.append("boot", data={"owner_id": "o-2"})
        assert not JobJournal(path).state.clean_shutdown

    def test_no_marker_means_crash(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        _accept(journal, "job-1")
        assert not JobJournal(path).state.clean_shutdown


class TestCompaction:
    def test_compaction_preserves_folded_state(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        _accept(journal, "job-1")
        journal.append("running", job_id="job-1")
        _finish(journal, "job-1")
        _accept(journal, "job-2")
        journal.append("running", job_id="job-2")
        journal.append("evicted", job_id="job-9", data={"status": "failed"})
        before_jobs = {
            job_id: (j.status, j.plan_hash)
            for job_id, j in journal.state.jobs.items()
        }
        journal.compact()
        reborn = JobJournal(path)
        after_jobs = {
            job_id: (j.status, j.plan_hash)
            for job_id, j in reborn.state.jobs.items()
        }
        assert after_jobs == before_jobs
        assert reborn.state.expired == {"job-9": "failed"}
        assert reborn.state.max_job_seq == 9

    def test_compaction_shrinks_a_churned_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        for i in range(1, 30):
            _accept(journal, f"job-{i}")
            _finish(journal, f"job-{i}")
            journal.append(
                "evicted", job_id=f"job-{i}", data={"status": "done"}
            )
        before = path.stat().st_size
        journal.compact()
        # Every job collapsed to one bounded 'evicted' line.
        assert path.stat().st_size < before / 2
        assert journal.state.corrupt_lines == 0

    def test_auto_compaction_triggers_on_append_budget(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl", compact_every=5)
        for i in range(12):
            journal.append(
                "evicted", job_id=f"job-{i}", data={"status": "done"}
            )
        assert journal.compactions >= 2

    def test_released_leases_do_not_survive_compaction(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.acquire_lease("ph-1", "owner-a", "job-1", ttl_s=60.0)
        journal.release_lease("ph-1", "owner-a")
        journal.compact()
        assert JobJournal(path).state.leases == {}


class TestLeases:
    def test_first_claim_wins(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        holder = journal.acquire_lease("ph-1", "owner-a", "job-1", ttl_s=60)
        assert holder.owner_id == "owner-a"
        assert not holder.expired()

    def test_live_lease_blocks_a_rival(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        ours = JobJournal(path)
        theirs = JobJournal(path)
        ours.acquire_lease("ph-1", "owner-a", "job-1", ttl_s=60)
        holder = theirs.acquire_lease("ph-1", "owner-b", "job-9", ttl_s=60)
        assert holder.owner_id == "owner-a"

    def test_expired_lease_is_adopted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        ours = JobJournal(path)
        theirs = JobJournal(path)
        now = time.time()
        ours.acquire_lease("ph-1", "owner-a", "job-1", ttl_s=1.0, now=now)
        holder = theirs.acquire_lease(
            "ph-1", "owner-b", "job-9", ttl_s=60.0, now=now + 5.0
        )
        assert holder.owner_id == "owner-b"

    def test_renew_extends_and_rival_renew_is_refused(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        now = time.time()
        journal.acquire_lease("ph-1", "owner-a", "job-1", ttl_s=5.0, now=now)
        renewed = journal.renew_lease(
            "ph-1", "owner-a", ttl_s=5.0, now=now + 4.0
        )
        assert renewed is not None
        assert renewed.expires_at == pytest.approx(now + 9.0)
        rival = JobJournal(path)
        assert rival.renew_lease("ph-1", "owner-b", ttl_s=60.0) is None

    def test_release_then_rival_claims(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        ours = JobJournal(path)
        theirs = JobJournal(path)
        ours.acquire_lease("ph-1", "owner-a", "job-1", ttl_s=60)
        ours.release_lease("ph-1", "owner-a")
        holder = theirs.acquire_lease("ph-1", "owner-b", "job-9", ttl_s=60)
        assert holder.owner_id == "owner-b"

    def test_reacquire_own_lease_is_allowed(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        journal.acquire_lease("ph-1", "owner-a", "job-1", ttl_s=60)
        holder = journal.acquire_lease("ph-1", "owner-a", "job-2", ttl_s=60)
        assert holder.owner_id == "owner-a"

    def test_bad_ttl_rejected(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        with pytest.raises(ConfigurationError):
            journal.acquire_lease("ph-1", "owner-a", "job-1", ttl_s=0)

    def test_current_lease_sees_foreign_claims(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        ours = JobJournal(path)
        theirs = JobJournal(path)
        theirs.acquire_lease("ph-1", "owner-b", "job-9", ttl_s=60)
        lease = ours.current_lease("ph-1")
        assert lease is not None
        assert lease.owner_id == "owner-b"
        assert ours.current_lease("ph-other") is None


class TestSharedFile:
    def test_refresh_folds_foreign_appends(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        ours = JobJournal(path)
        theirs = JobJournal(path)
        _accept(theirs, "job-7")
        assert "job-7" not in ours.state.jobs
        ours.refresh()
        assert "job-7" in ours.state.jobs

    def test_foreign_compaction_triggers_a_refold(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        ours = JobJournal(path)
        theirs = JobJournal(path)
        for i in range(1, 20):
            _accept(ours, f"job-{i}")
            _finish(ours, f"job-{i}")
            theirs.refresh()
        theirs.compact()
        # Our offset now points past the end of the rewritten file.
        _accept(theirs, "job-99")
        ours.refresh()
        assert "job-99" in ours.state.jobs
        assert ours.state.jobs["job-5"].status == "done"

    def test_stats_shape(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        _accept(journal, "job-1")
        stats = journal.stats()
        assert stats["jobs"] == 1
        assert stats["entries"] == 1
        assert stats["corrupt_lines"] == 0
        assert stats["bytes"] > 0
        assert stats["path"].endswith("journal.jsonl")


class TestRecords:
    def test_entry_and_lease_dataclasses(self):
        entry = JournalEntry(kind="boot", at=1.0, job_id="", data={"a": 1})
        assert entry.kind == "boot"
        lease = LeaseRecord(
            plan_hash="ph",
            owner_id="o",
            job_id="job-1",
            acquired_at=0.0,
            expires_at=10.0,
        )
        assert not lease.expired(now=5.0)
        assert lease.expired(now=10.0)

    def test_journal_lines_are_sorted_json(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        _accept(journal, "job-1")
        line = path.read_text().splitlines()[0]
        record = json.loads(line)
        assert list(record) == sorted(record)
        assert record["kind"] == "accepted"
