"""The job manager: queue bounds, single-flight dedupe, rate limiting.

Exercises :mod:`repro.service.jobs` without the HTTP layer. The
single-flight tests monkeypatch ``compute_scenario_results`` with a
blocking fake so dedupe timing is deterministic: the owner job is held
inside its compute while rival jobs submit, which forces the rivals
down the ``inflight`` path instead of racing the store.
"""

import asyncio
import threading

import pytest

from repro.api import RunPlan, Scenario
from repro.errors import ConfigurationError
from repro.service import (
    PRIORITY_CLASSES,
    JobManager,
    JobQueueFull,
    PriorityGate,
    RateLimiter,
    ResultStore,
    TokenBucket,
    normalize_priority,
)
from repro.service.jobs import DEFAULT_PRIORITY, retry_after_seconds


class FakeClock:
    """A manually advanced monotonic clock for bucket tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, capacity=2.0, clock=clock)
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        wait = bucket.acquire()
        assert wait == pytest.approx(1.0)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=1.0, clock=clock)
        assert bucket.acquire() == 0.0
        assert bucket.acquire() > 0.0
        clock.advance(0.5)  # 2 tokens/s * 0.5 s = 1 token back
        assert bucket.acquire() == 0.0

    def test_capacity_caps_the_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        assert bucket.acquire() > 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, capacity=-1.0)


class TestRateLimiter:
    def test_clients_are_isolated(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, capacity=1.0, clock=clock)
        assert limiter.check("alice") == 0.0
        assert limiter.check("alice") > 0.0
        # A different client still has a full bucket.
        assert limiter.check("bob") == 0.0

    def test_retry_after_rounds_up_to_whole_seconds(self):
        assert retry_after_seconds(0.01) == 1
        assert retry_after_seconds(1.0) == 1
        assert retry_after_seconds(1.2) == 2


def _plan(n_points=6, experiment="fig6"):
    return RunPlan(
        name="jobs-test",
        scenarios=(Scenario(experiment, overrides={"n_points": n_points}),),
    )


def _manager(tmp_path, **kwargs):
    kwargs.setdefault("executor", "thread")
    kwargs.setdefault("workers", 1)
    return JobManager(ResultStore(tmp_path / "store"), **kwargs)


def _run(coro):
    return asyncio.run(coro)


class TestJobLifecycle:
    def test_job_computes_then_second_job_hits_store(self, tmp_path):
        async def scenario():
            manager = _manager(tmp_path)
            try:
                first = manager.submit(_plan())
                await asyncio.gather(*manager._tasks)
                second = manager.submit(_plan())
                await asyncio.gather(*manager._tasks)
                return first.record(), second.record(), manager.stats()
            finally:
                await manager.close()

        one, two, stats = _run(scenario())
        assert one.status == "done"
        assert one.sources == ("computed",)
        assert two.status == "done"
        assert two.sources == ("store",)
        assert one.scenario_hashes == two.scenario_hashes
        assert stats["computed"] == 1
        assert stats["store_hits"] == 1
        assert stats["jobs_done"] == 2

    def test_queue_bound_raises_job_queue_full(self, tmp_path, monkeypatch):
        started = threading.Event()
        release = threading.Event()

        def blocking_compute(scenarios, **kwargs):
            started.set()
            assert release.wait(timeout=30)
            from repro.service.jobs import RunPlan, run_plan_parallel

            return run_plan_parallel(
                RunPlan(name="service-job", scenarios=tuple(scenarios)),
                workers=1,
                executor="thread",
            ).scenario_results

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", blocking_compute
        )

        async def scenario():
            manager = _manager(tmp_path, max_pending=1, max_concurrent=1)
            try:
                manager.submit(_plan())
                await asyncio.sleep(0)  # let the job start
                with pytest.raises(JobQueueFull):
                    manager.submit(_plan(n_points=7))
                release.set()
                await asyncio.gather(*manager._tasks)
                # Capacity freed: the next submit is accepted.
                job = manager.submit(_plan())
                await asyncio.gather(*manager._tasks)
                return job.record()
            finally:
                await manager.close()

        record = _run(scenario())
        assert record.status == "done"

    def test_unknown_job_lookup_is_none(self, tmp_path):
        async def scenario():
            manager = _manager(tmp_path)
            try:
                return manager.job("job-999")
            finally:
                await manager.close()

        assert _run(scenario()) is None

    def test_invalid_bounds_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            _manager(tmp_path, max_pending=0)
        with pytest.raises(ConfigurationError):
            _manager(tmp_path, max_concurrent=0)


class TestSingleFlight:
    def test_concurrent_identical_jobs_compute_once(
        self, tmp_path, monkeypatch
    ):
        """N concurrent submissions of the same plan -> one computation.

        The first job is held inside compute until every rival has been
        classified, so the rivals *must* take the inflight path.
        """
        compute_calls = []
        started = threading.Event()
        release = threading.Event()

        def blocking_compute(scenarios, **kwargs):
            compute_calls.append(tuple(scenarios))
            started.set()
            assert release.wait(timeout=30)
            from repro.service.jobs import RunPlan, run_plan_parallel

            return run_plan_parallel(
                RunPlan(name="service-job", scenarios=tuple(scenarios)),
                workers=1,
                executor="thread",
            ).scenario_results

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", blocking_compute
        )

        async def scenario():
            manager = _manager(tmp_path, max_pending=8, max_concurrent=8)
            try:
                owner = manager.submit(_plan())
                # Wait until the owner is inside its compute call.
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(
                    None, lambda: started.wait(timeout=30)
                )
                rivals = [manager.submit(_plan()) for _ in range(3)]
                # Let the rivals classify against the inflight map.
                for _ in range(10):
                    await asyncio.sleep(0)
                release.set()
                await asyncio.gather(*manager._tasks)
                return owner.record(), [r.record() for r in rivals]
            finally:
                await manager.close()

        owner, rivals = _run(scenario())
        assert len(compute_calls) == 1
        assert owner.sources == ("computed",)
        for rival in rivals:
            assert rival.status == "done"
            assert rival.sources == ("inflight",)
            assert rival.deduped == 1

    def test_duplicate_scenarios_within_one_plan_compute_once(
        self, tmp_path, monkeypatch
    ):
        compute_calls = []

        def counting_compute(scenarios, **kwargs):
            compute_calls.append(tuple(scenarios))
            from repro.service.jobs import RunPlan, run_plan_parallel

            return run_plan_parallel(
                RunPlan(name="service-job", scenarios=tuple(scenarios)),
                workers=1,
                executor="thread",
            ).scenario_results

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", counting_compute
        )
        duplicated = RunPlan(
            name="dupes",
            scenarios=(
                Scenario("fig6", overrides={"n_points": 6}),
                Scenario("fig6", overrides={"n_points": 6}, label="again"),
            ),
        )

        async def scenario():
            manager = _manager(tmp_path)
            try:
                job = manager.submit(duplicated)
                await asyncio.gather(*manager._tasks)
                return job.record()
            finally:
                await manager.close()

        record = _run(scenario())
        assert record.status == "done"
        assert sum(len(call) for call in compute_calls) == 1
        assert sorted(record.sources) == ["computed", "inflight"]

    def test_compute_failure_propagates_to_attached_jobs(
        self, tmp_path, monkeypatch
    ):
        started = threading.Event()
        release = threading.Event()

        def failing_compute(scenarios, **kwargs):
            started.set()
            assert release.wait(timeout=30)
            raise RuntimeError("solver exploded")

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", failing_compute
        )

        async def scenario():
            manager = _manager(tmp_path, max_pending=4, max_concurrent=4)
            try:
                owner = manager.submit(_plan())
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(
                    None, lambda: started.wait(timeout=30)
                )
                rival = manager.submit(_plan())
                for _ in range(10):
                    await asyncio.sleep(0)
                release.set()
                await asyncio.gather(*manager._tasks)
                return owner.record(), rival.record(), manager.stats()
            finally:
                await manager.close()

        owner, rival, stats = _run(scenario())
        assert owner.status == "failed"
        assert "solver exploded" in owner.error
        assert rival.status == "failed"
        assert "in-flight computation failed" in rival.error
        assert stats["jobs_failed"] == 2
        assert stats["inflight_scenarios"] == 0  # no dangling futures

    def test_failed_hash_recomputes_on_next_submission(
        self, tmp_path, monkeypatch
    ):
        attempts = []

        def flaky_compute(scenarios, **kwargs):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            from repro.service.jobs import RunPlan, run_plan_parallel

            return run_plan_parallel(
                RunPlan(name="service-job", scenarios=tuple(scenarios)),
                workers=1,
                executor="thread",
            ).scenario_results

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", flaky_compute
        )

        async def scenario():
            manager = _manager(tmp_path)
            try:
                failed = manager.submit(_plan())
                await asyncio.gather(*manager._tasks)
                retried = manager.submit(_plan())
                await asyncio.gather(*manager._tasks)
                return failed.record(), retried.record()
            finally:
                await manager.close()

        failed, retried = _run(scenario())
        assert failed.status == "failed"
        assert retried.status == "done"
        assert retried.sources == ("computed",)
        assert len(attempts) == 2


class TestNormalizePriority:
    def test_class_names_map_to_ranks(self):
        assert normalize_priority("high") == PRIORITY_CLASSES["high"]
        assert normalize_priority("normal") == PRIORITY_CLASSES["normal"]
        assert normalize_priority("low") == PRIORITY_CLASSES["low"]

    def test_none_is_the_default(self):
        assert normalize_priority(None) == DEFAULT_PRIORITY

    def test_integers_pass_within_bounds(self):
        assert normalize_priority(0) == 0
        assert normalize_priority(9) == 9
        with pytest.raises(ConfigurationError):
            normalize_priority(-1)
        with pytest.raises(ConfigurationError):
            normalize_priority(10)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_priority("urgent")
        with pytest.raises(ConfigurationError):
            normalize_priority(1.5)
        with pytest.raises(ConfigurationError):
            normalize_priority(True)

    def test_submit_rejects_bad_priority_without_counting(self, tmp_path):
        async def scenario():
            manager = _manager(tmp_path)
            try:
                with pytest.raises(ConfigurationError):
                    manager.submit(_plan(), priority="urgent")
                return manager.stats()
            finally:
                await manager.close()

        stats = _run(scenario())
        assert stats["jobs_submitted"] == 0


class TestPriorityGate:
    def test_admits_by_class_fifo_within_class(self):
        async def scenario():
            gate = PriorityGate(1, aging_s=1000.0)
            order = []
            await gate.acquire(1)

            async def worker(tag, rank):
                await gate.acquire(rank)
                order.append(tag)
                gate.release()

            tasks = [
                asyncio.create_task(worker("low", 2)),
                asyncio.create_task(worker("norm-a", 1)),
                asyncio.create_task(worker("norm-b", 1)),
                asyncio.create_task(worker("high", 0)),
            ]
            for _ in range(5):
                await asyncio.sleep(0)
            assert gate.waiting == 4
            gate.release()
            await asyncio.gather(*tasks)
            return order

        assert _run(scenario()) == ["high", "norm-a", "norm-b", "low"]

    def test_aging_promotes_long_waiters(self):
        """A low-priority waiter eventually outranks a fresh high one."""

        async def scenario():
            clock = FakeClock()
            gate = PriorityGate(1, aging_s=10.0, clock=clock)
            order = []
            await gate.acquire(0)

            async def worker(tag, rank):
                await gate.acquire(rank)
                order.append(tag)
                gate.release()

            low = asyncio.create_task(worker("low", 2))
            await asyncio.sleep(0)
            clock.advance(25.0)  # low has aged two classes: effective 0
            high = asyncio.create_task(worker("high", 0))
            await asyncio.sleep(0)
            gate.release()
            await asyncio.gather(low, high)
            return order

        # Tie at effective priority 0 falls back to arrival order.
        assert _run(scenario()) == ["low", "high"]

    def test_cancelled_waiter_is_withdrawn(self):
        async def scenario():
            gate = PriorityGate(1)
            await gate.acquire(1)
            task = asyncio.create_task(gate.acquire(1))
            await asyncio.sleep(0)
            assert gate.waiting == 1
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            assert gate.waiting == 0
            gate.release()
            assert gate.active == 0

        _run(scenario())

    def test_granted_but_cancelled_acquire_releases_slot(self):
        async def scenario():
            gate = PriorityGate(1)
            await gate.acquire(1)
            task = asyncio.create_task(gate.acquire(1))
            await asyncio.sleep(0)  # the task is now a waiter
            gate.release()  # grants the slot to the waiter...
            task.cancel()  # ...which is cancelled before it resumes
            await asyncio.gather(task, return_exceptions=True)
            assert gate.active == 0
            assert gate.waiting == 0
            await gate.acquire(1)  # the slot was not leaked
            gate.release()

        _run(scenario())

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            PriorityGate(0)
        with pytest.raises(ConfigurationError):
            PriorityGate(1, aging_s=0.0)

    def test_release_without_slot_rejected(self):
        with pytest.raises(ConfigurationError):
            PriorityGate(1).release()


class TestPriorityDispatch:
    def test_high_priority_jumps_the_queue(self, tmp_path, monkeypatch):
        """With one slot plugged, later high-priority work runs first."""
        compute_order = []
        started = threading.Event()
        release = threading.Event()

        def gated_compute(scenarios, **kwargs):
            compute_order.append(scenarios[0].overrides["n_points"])
            if len(compute_order) == 1:
                started.set()
                assert release.wait(timeout=30)
            from repro.service.jobs import RunPlan, run_plan_parallel

            return run_plan_parallel(
                RunPlan(name="service-job", scenarios=tuple(scenarios)),
                workers=1,
                executor="thread",
            ).scenario_results

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", gated_compute
        )

        async def scenario():
            manager = _manager(tmp_path, max_pending=8, max_concurrent=1)
            try:
                manager.submit(_plan(n_points=4))  # plugs the only slot
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(
                    None, lambda: started.wait(timeout=30)
                )
                manager.submit(_plan(n_points=5), priority="low")
                manager.submit(_plan(n_points=6), priority="normal")
                manager.submit(_plan(n_points=7), priority="high")
                for _ in range(5):
                    await asyncio.sleep(0)
                assert manager.stats()["queued_for_slot"] == 3
                release.set()
                await asyncio.gather(*manager._tasks)
                return manager.stats()
            finally:
                await manager.close()

        stats = _run(scenario())
        assert compute_order == [4, 7, 6, 5]
        assert stats["jobs_done"] == 4
        assert stats["queued_for_slot"] == 0


class TestCancellation:
    def test_cancel_queued_job(self, tmp_path, monkeypatch):
        started = threading.Event()
        release = threading.Event()

        def blocking_compute(scenarios, **kwargs):
            started.set()
            assert release.wait(timeout=30)
            from repro.service.jobs import RunPlan, run_plan_parallel

            return run_plan_parallel(
                RunPlan(name="service-job", scenarios=tuple(scenarios)),
                workers=1,
                executor="thread",
            ).scenario_results

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", blocking_compute
        )

        async def scenario():
            manager = _manager(tmp_path, max_pending=4, max_concurrent=1)
            try:
                running = manager.submit(_plan(n_points=4))
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(
                    None, lambda: started.wait(timeout=30)
                )
                queued = manager.submit(_plan(n_points=5))
                await asyncio.sleep(0)
                record = await manager.cancel(queued.id)
                release.set()
                await asyncio.gather(*manager._tasks)
                return record, running.record(), manager.stats()
            finally:
                await manager.close()

        cancelled, running, stats = _run(scenario())
        assert cancelled.status == "cancelled"
        assert running.status == "done"
        assert stats["jobs_cancelled"] == 1
        assert stats["jobs_failed"] == 0  # the counter-drift regression
        assert stats["jobs_done"] == 1
        assert stats["queued_for_slot"] == 0

    def test_cancel_running_owner_hands_off_to_attached_job(
        self, tmp_path, monkeypatch
    ):
        """Cancelling a claim owner makes attached jobs recompute.

        The owner is held inside its compute while a rival attaches to
        the in-flight future; cancelling the owner cancels that future,
        and the rival must come back, reclaim the hash and compute it
        itself rather than hang or fail.
        """
        compute_calls = []
        started = threading.Event()
        release = threading.Event()

        def first_call_blocks(scenarios, **kwargs):
            compute_calls.append(tuple(scenarios))
            if len(compute_calls) == 1:
                started.set()
                assert release.wait(timeout=30)
            from repro.service.jobs import RunPlan, run_plan_parallel

            return run_plan_parallel(
                RunPlan(name="service-job", scenarios=tuple(scenarios)),
                workers=1,
                executor="thread",
            ).scenario_results

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", first_call_blocks
        )

        async def scenario():
            manager = _manager(tmp_path, max_pending=4, max_concurrent=4)
            try:
                owner = manager.submit(_plan())
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(
                    None, lambda: started.wait(timeout=30)
                )
                rival = manager.submit(_plan())
                for _ in range(10):
                    await asyncio.sleep(0)
                cancelled = await manager.cancel(owner.id)
                release.set()  # let the abandoned compute thread exit
                await asyncio.gather(*manager._tasks)
                return cancelled, rival.record(), manager.stats()
            finally:
                await manager.close()

        cancelled, rival, stats = _run(scenario())
        assert cancelled.status == "cancelled"
        assert rival.status == "done"
        assert rival.sources == ("computed",)  # recomputed, not deduped
        assert len(compute_calls) == 2
        assert stats["jobs_cancelled"] == 1
        assert stats["jobs_done"] == 1
        assert stats["inflight_scenarios"] == 0

    def test_cancel_is_idempotent_on_terminal_jobs(self, tmp_path):
        async def scenario():
            manager = _manager(tmp_path)
            try:
                job = manager.submit(_plan())
                await asyncio.gather(*manager._tasks)
                first = await manager.cancel(job.id)
                second = await manager.cancel(job.id)
                return first, second, manager.stats()
            finally:
                await manager.close()

        first, second, stats = _run(scenario())
        assert first.status == "done"  # the cancel lost the race
        assert second.status == "done"
        assert stats["jobs_cancelled"] == 0
        assert stats["jobs_done"] == 1

    def test_cancel_unknown_job_returns_none(self, tmp_path):
        async def scenario():
            manager = _manager(tmp_path)
            try:
                return await manager.cancel("job-999")
            finally:
                await manager.close()

        assert _run(scenario()) is None

    def test_shutdown_counts_cancelled_not_failed(
        self, tmp_path, monkeypatch
    ):
        """The jobs_failed drift regression: shutdown-cancelled jobs
        must land in jobs_cancelled, not jobs_failed (and not vanish
        from the counters entirely)."""
        started = threading.Event()
        release = threading.Event()

        def blocking_compute(scenarios, **kwargs):
            started.set()
            assert release.wait(timeout=30)
            from repro.service.jobs import RunPlan, run_plan_parallel

            return run_plan_parallel(
                RunPlan(name="service-job", scenarios=tuple(scenarios)),
                workers=1,
                executor="thread",
            ).scenario_results

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", blocking_compute
        )

        async def scenario():
            manager = _manager(tmp_path, max_pending=4, max_concurrent=1)
            inflight = manager.submit(_plan(n_points=4))
            queued = manager.submit(_plan(n_points=5))
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, lambda: started.wait(timeout=30))
            await manager.close()
            release.set()
            return inflight.record(), queued.record(), manager.stats()

        inflight, queued, stats = _run(scenario())
        assert inflight.status == "cancelled"
        assert queued.status == "cancelled"
        assert stats["jobs_cancelled"] == 2
        assert stats["jobs_failed"] == 0
        assert stats["jobs_done"] == 0


class TestEviction:
    def test_ttl_evicts_finished_jobs_to_expired(self, tmp_path):
        async def collect():
            manager = _manager(tmp_path, job_ttl_s=60.0)
            try:
                job = manager.submit(_plan())
                await asyncio.gather(*manager._tasks)
                evicted = manager._evict_finished(now=job.finished_at + 61.0)
                record = manager.record_of(job.id)
                return (
                    evicted,
                    record,
                    manager.job(job.id),
                    manager.stats(),
                )
            finally:
                await manager.close()

        evicted, record, job, stats = _run(collect())
        assert evicted == 1
        assert job is None
        assert record is not None
        assert record.status == "expired"
        assert stats["jobs_evicted"] == 1
        # Reconciliation: cumulative terminal counters == retained
        # terminal records + evicted ones.
        terminal_retained = sum(
            stats["jobs_by_status"][s] for s in ("done", "failed", "cancelled")
        )
        cumulative = (
            stats["jobs_done"] + stats["jobs_failed"] + stats["jobs_cancelled"]
        )
        assert cumulative == terminal_retained + stats["jobs_evicted"]

    def test_ttl_never_evicts_active_jobs(self, tmp_path, monkeypatch):
        started = threading.Event()
        release = threading.Event()

        def blocking_compute(scenarios, **kwargs):
            started.set()
            assert release.wait(timeout=30)
            from repro.service.jobs import RunPlan, run_plan_parallel

            return run_plan_parallel(
                RunPlan(name="service-job", scenarios=tuple(scenarios)),
                workers=1,
                executor="thread",
            ).scenario_results

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", blocking_compute
        )

        async def scenario():
            manager = _manager(tmp_path, job_ttl_s=0.001, max_records=1)
            try:
                job = manager.submit(_plan())
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(
                    None, lambda: started.wait(timeout=30)
                )
                evicted = manager._evict_finished(now=job.created_at + 3600)
                release.set()
                await asyncio.gather(*manager._tasks)
                return evicted, job.record()
            finally:
                await manager.close()

        evicted, record = _run(scenario())
        assert evicted == 0
        assert record.status == "done"

    def test_max_records_cap_evicts_oldest_finished_first(self, tmp_path):
        async def scenario():
            manager = _manager(tmp_path, job_ttl_s=None, max_records=2)
            try:
                jobs = []
                for n in (4, 5, 6, 7):
                    jobs.append(manager.submit(_plan(n_points=n)))
                    await asyncio.gather(*manager._tasks)
                manager._evict_finished()
                statuses = {
                    j.id: manager.record_of(j.id).status for j in jobs
                }
                return statuses, manager.stats()
            finally:
                await manager.close()

        statuses, stats = _run(scenario())
        ordered = [statuses[f"job-{i}"] for i in (1, 2, 3, 4)]
        assert ordered == ["expired", "expired", "done", "done"]
        assert stats["jobs_evicted"] == 2
        assert stats["jobs_done"] == 4

    def test_pending_counts_active_not_all_time(self, tmp_path):
        async def scenario():
            manager = _manager(tmp_path)
            try:
                for n in (4, 5):
                    manager.submit(_plan(n_points=n))
                pending_now = manager.pending()
                await asyncio.gather(*manager._tasks)
                return pending_now, manager.pending(), len(manager._jobs)
            finally:
                await manager.close()

        pending_now, pending_after, retained = _run(scenario())
        assert pending_now == 2
        assert pending_after == 0  # finished jobs no longer count
        assert retained == 2  # ...though their records are retained

    def test_protected_hashes_pin_retained_jobs_until_eviction(
        self, tmp_path
    ):
        async def scenario():
            manager = _manager(tmp_path, job_ttl_s=60.0)
            try:
                job = manager.submit(_plan())
                await asyncio.gather(*manager._tasks)
                pinned_before = manager.protected_hashes()
                manager._evict_finished(now=job.finished_at + 61.0)
                pinned_after = manager.protected_hashes()
                return job.record(), pinned_before, pinned_after
            finally:
                await manager.close()

        record, before, after = _run(scenario())
        assert set(record.scenario_hashes) <= before
        assert after == set()  # eviction is what unpins

    def test_invalid_eviction_budgets_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            _manager(tmp_path, job_ttl_s=0.0)
        with pytest.raises(ConfigurationError):
            _manager(tmp_path, max_records=0)
