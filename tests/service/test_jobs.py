"""The job manager: queue bounds, single-flight dedupe, rate limiting.

Exercises :mod:`repro.service.jobs` without the HTTP layer. The
single-flight tests monkeypatch ``compute_scenario_results`` with a
blocking fake so dedupe timing is deterministic: the owner job is held
inside its compute while rival jobs submit, which forces the rivals
down the ``inflight`` path instead of racing the store.
"""

import asyncio
import threading

import pytest

from repro.api import RunPlan, Scenario
from repro.errors import ConfigurationError
from repro.service import (
    JobManager,
    JobQueueFull,
    RateLimiter,
    ResultStore,
    TokenBucket,
)
from repro.service.jobs import retry_after_seconds


class FakeClock:
    """A manually advanced monotonic clock for bucket tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, capacity=2.0, clock=clock)
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        wait = bucket.acquire()
        assert wait == pytest.approx(1.0)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=1.0, clock=clock)
        assert bucket.acquire() == 0.0
        assert bucket.acquire() > 0.0
        clock.advance(0.5)  # 2 tokens/s * 0.5 s = 1 token back
        assert bucket.acquire() == 0.0

    def test_capacity_caps_the_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        assert bucket.acquire() > 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, capacity=-1.0)


class TestRateLimiter:
    def test_clients_are_isolated(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, capacity=1.0, clock=clock)
        assert limiter.check("alice") == 0.0
        assert limiter.check("alice") > 0.0
        # A different client still has a full bucket.
        assert limiter.check("bob") == 0.0

    def test_retry_after_rounds_up_to_whole_seconds(self):
        assert retry_after_seconds(0.01) == 1
        assert retry_after_seconds(1.0) == 1
        assert retry_after_seconds(1.2) == 2


def _plan(n_points=6, experiment="fig6"):
    return RunPlan(
        name="jobs-test",
        scenarios=(Scenario(experiment, overrides={"n_points": n_points}),),
    )


def _manager(tmp_path, **kwargs):
    kwargs.setdefault("executor", "thread")
    kwargs.setdefault("workers", 1)
    return JobManager(ResultStore(tmp_path / "store"), **kwargs)


def _run(coro):
    return asyncio.run(coro)


class TestJobLifecycle:
    def test_job_computes_then_second_job_hits_store(self, tmp_path):
        async def scenario():
            manager = _manager(tmp_path)
            try:
                first = manager.submit(_plan())
                await asyncio.gather(*manager._tasks)
                second = manager.submit(_plan())
                await asyncio.gather(*manager._tasks)
                return first.record(), second.record(), manager.stats()
            finally:
                await manager.close()

        one, two, stats = _run(scenario())
        assert one.status == "done"
        assert one.sources == ("computed",)
        assert two.status == "done"
        assert two.sources == ("store",)
        assert one.scenario_hashes == two.scenario_hashes
        assert stats["computed"] == 1
        assert stats["store_hits"] == 1
        assert stats["jobs_done"] == 2

    def test_queue_bound_raises_job_queue_full(self, tmp_path, monkeypatch):
        started = threading.Event()
        release = threading.Event()

        def blocking_compute(scenarios, **kwargs):
            started.set()
            assert release.wait(timeout=30)
            from repro.service.jobs import RunPlan, run_plan_parallel

            return run_plan_parallel(
                RunPlan(name="service-job", scenarios=tuple(scenarios)),
                workers=1,
                executor="thread",
            ).scenario_results

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", blocking_compute
        )

        async def scenario():
            manager = _manager(tmp_path, max_pending=1, max_concurrent=1)
            try:
                manager.submit(_plan())
                await asyncio.sleep(0)  # let the job start
                with pytest.raises(JobQueueFull):
                    manager.submit(_plan(n_points=7))
                release.set()
                await asyncio.gather(*manager._tasks)
                # Capacity freed: the next submit is accepted.
                job = manager.submit(_plan())
                await asyncio.gather(*manager._tasks)
                return job.record()
            finally:
                await manager.close()

        record = _run(scenario())
        assert record.status == "done"

    def test_unknown_job_lookup_is_none(self, tmp_path):
        async def scenario():
            manager = _manager(tmp_path)
            try:
                return manager.job("job-999")
            finally:
                await manager.close()

        assert _run(scenario()) is None

    def test_invalid_bounds_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            _manager(tmp_path, max_pending=0)
        with pytest.raises(ConfigurationError):
            _manager(tmp_path, max_concurrent=0)


class TestSingleFlight:
    def test_concurrent_identical_jobs_compute_once(
        self, tmp_path, monkeypatch
    ):
        """N concurrent submissions of the same plan -> one computation.

        The first job is held inside compute until every rival has been
        classified, so the rivals *must* take the inflight path.
        """
        compute_calls = []
        started = threading.Event()
        release = threading.Event()

        def blocking_compute(scenarios, **kwargs):
            compute_calls.append(tuple(scenarios))
            started.set()
            assert release.wait(timeout=30)
            from repro.service.jobs import RunPlan, run_plan_parallel

            return run_plan_parallel(
                RunPlan(name="service-job", scenarios=tuple(scenarios)),
                workers=1,
                executor="thread",
            ).scenario_results

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", blocking_compute
        )

        async def scenario():
            manager = _manager(tmp_path, max_pending=8, max_concurrent=8)
            try:
                owner = manager.submit(_plan())
                # Wait until the owner is inside its compute call.
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(
                    None, lambda: started.wait(timeout=30)
                )
                rivals = [manager.submit(_plan()) for _ in range(3)]
                # Let the rivals classify against the inflight map.
                for _ in range(10):
                    await asyncio.sleep(0)
                release.set()
                await asyncio.gather(*manager._tasks)
                return owner.record(), [r.record() for r in rivals]
            finally:
                await manager.close()

        owner, rivals = _run(scenario())
        assert len(compute_calls) == 1
        assert owner.sources == ("computed",)
        for rival in rivals:
            assert rival.status == "done"
            assert rival.sources == ("inflight",)
            assert rival.deduped == 1

    def test_duplicate_scenarios_within_one_plan_compute_once(
        self, tmp_path, monkeypatch
    ):
        compute_calls = []

        def counting_compute(scenarios, **kwargs):
            compute_calls.append(tuple(scenarios))
            from repro.service.jobs import RunPlan, run_plan_parallel

            return run_plan_parallel(
                RunPlan(name="service-job", scenarios=tuple(scenarios)),
                workers=1,
                executor="thread",
            ).scenario_results

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", counting_compute
        )
        duplicated = RunPlan(
            name="dupes",
            scenarios=(
                Scenario("fig6", overrides={"n_points": 6}),
                Scenario("fig6", overrides={"n_points": 6}, label="again"),
            ),
        )

        async def scenario():
            manager = _manager(tmp_path)
            try:
                job = manager.submit(duplicated)
                await asyncio.gather(*manager._tasks)
                return job.record()
            finally:
                await manager.close()

        record = _run(scenario())
        assert record.status == "done"
        assert sum(len(call) for call in compute_calls) == 1
        assert sorted(record.sources) == ["computed", "inflight"]

    def test_compute_failure_propagates_to_attached_jobs(
        self, tmp_path, monkeypatch
    ):
        started = threading.Event()
        release = threading.Event()

        def failing_compute(scenarios, **kwargs):
            started.set()
            assert release.wait(timeout=30)
            raise RuntimeError("solver exploded")

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", failing_compute
        )

        async def scenario():
            manager = _manager(tmp_path, max_pending=4, max_concurrent=4)
            try:
                owner = manager.submit(_plan())
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(
                    None, lambda: started.wait(timeout=30)
                )
                rival = manager.submit(_plan())
                for _ in range(10):
                    await asyncio.sleep(0)
                release.set()
                await asyncio.gather(*manager._tasks)
                return owner.record(), rival.record(), manager.stats()
            finally:
                await manager.close()

        owner, rival, stats = _run(scenario())
        assert owner.status == "failed"
        assert "solver exploded" in owner.error
        assert rival.status == "failed"
        assert "in-flight computation failed" in rival.error
        assert stats["jobs_failed"] == 2
        assert stats["inflight_scenarios"] == 0  # no dangling futures

    def test_failed_hash_recomputes_on_next_submission(
        self, tmp_path, monkeypatch
    ):
        attempts = []

        def flaky_compute(scenarios, **kwargs):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            from repro.service.jobs import RunPlan, run_plan_parallel

            return run_plan_parallel(
                RunPlan(name="service-job", scenarios=tuple(scenarios)),
                workers=1,
                executor="thread",
            ).scenario_results

        monkeypatch.setattr(
            "repro.service.jobs.compute_scenario_results", flaky_compute
        )

        async def scenario():
            manager = _manager(tmp_path)
            try:
                failed = manager.submit(_plan())
                await asyncio.gather(*manager._tasks)
                retried = manager.submit(_plan())
                await asyncio.gather(*manager._tasks)
                return failed.record(), retried.record()
            finally:
                await manager.close()

        failed, retried = _run(scenario())
        assert failed.status == "failed"
        assert retried.status == "done"
        assert retried.sources == ("computed",)
        assert len(attempts) == 2
