"""The runner's store flags: ``--from-store`` / ``--update-store``.

Drives the real ``repro-experiments`` entry point (``main(argv)``) and
asserts the store round trip end to end: a cold run computes and
writes, a warm run is served from disk, and the hit/miss summary line
the flags promise is printed. Misuse (store flags without ``--plan``)
must fail fast with a configuration error.
"""

import json

from repro.experiments.runner import main
from repro.service import ResultStore


def _write_plan(tmp_path, n_points=6):
    plan = {
        "name": "store-cli",
        "scenarios": [
            {"experiment_id": "fig6", "overrides": {"n_points": n_points}},
            {"experiment_id": "fig7", "overrides": {"n_points": n_points}},
        ],
    }
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(plan))
    return path


class TestRunnerStoreFlags:
    def test_cold_then_warm_run_with_summary_lines(self, tmp_path, capsys):
        plan = _write_plan(tmp_path)
        store = tmp_path / "store"

        code = main(
            [
                "--plan",
                str(plan),
                "--no-plot",
                "--from-store",
                str(store),
                "--update-store",
                str(store),
            ]
        )
        cold = capsys.readouterr().out
        assert code == 0
        assert "store: 0 hits / 2 misses (2 scenarios), 2 written" in cold
        assert len(ResultStore(store)) == 2

        code = main(
            [
                "--plan",
                str(plan),
                "--no-plot",
                "--from-store",
                str(store),
            ]
        )
        warm = capsys.readouterr().out
        assert code == 0
        assert "store: 2 hits / 0 misses (2 scenarios), 0 written" in warm
        # The warm run still reports every scenario.
        assert warm.count("\nscenario ") == 2

    def test_update_store_alone_always_computes_but_writes(
        self, tmp_path, capsys
    ):
        plan = _write_plan(tmp_path)
        store = tmp_path / "store"
        assert (
            main(
                [
                    "--plan",
                    str(plan),
                    "--no-plot",
                    "--update-store",
                    str(store),
                ]
            )
            == 0
        )
        first = capsys.readouterr().out
        assert "store: 0 hits / 2 misses (2 scenarios), 2 written" in first
        # Without --from-store nothing is read back: misses again, but
        # the objects already on disk are not rewritten.
        assert (
            main(
                [
                    "--plan",
                    str(plan),
                    "--no-plot",
                    "--update-store",
                    str(store),
                ]
            )
            == 0
        )
        second = capsys.readouterr().out
        assert "store: 0 hits / 2 misses (2 scenarios), 0 written" in second
        assert len(ResultStore(store)) == 2

    def test_store_flags_require_a_plan(self, tmp_path, capsys):
        code = main(["fig6", "--no-plot", "--from-store", str(tmp_path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "--from-store/--update-store" in err

    def test_no_summary_line_without_store_flags(self, tmp_path, capsys):
        code = main(["--plan", str(_write_plan(tmp_path)), "--no-plot"])
        assert code == 0
        assert "store:" not in capsys.readouterr().out
