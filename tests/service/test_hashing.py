"""The canonical hash contract: stability across types, order, processes.

The content-addressed store is only sound if the same physical work
always produces the same hash. These tests pin the canonicalisation
rules of :mod:`repro.api.hashing` -- NumPy scalar normalisation (the
PR's `_jsonable` ordering bugfix), sorted keys, label exclusion,
defaults/salt participation -- and check cross-process stability by
recomputing a hash in a fresh interpreter.
"""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.api import (
    RunPlan,
    Scenario,
    canonical_json,
    canonical_scenario_record,
    code_version,
    plan_hash,
    scenario_hash,
)
from repro.io import _jsonable


class TestJsonableNormalisation:
    """The regression for the np-scalar canonicalisation bugfix."""

    def test_np_float64_becomes_builtin_float(self):
        # np.float64 subclasses float, so the old (int, float) branch
        # returned it unconverted and repr/type leaked into records.
        out = _jsonable(np.float64(1.5))
        assert type(out) is float and out == 1.5

    def test_np_int64_becomes_builtin_int(self):
        out = _jsonable(np.int64(7))
        assert type(out) is int and out == 7

    def test_np_bool_becomes_builtin_bool(self):
        out = _jsonable(np.bool_(True))
        assert type(out) is bool and out is True

    def test_np_scalars_nested_in_lists(self):
        out = _jsonable([np.float64(0.5), (np.int64(2), np.bool_(False))])
        assert out == [0.5, [2, False]]
        assert type(out[0]) is float and type(out[1][0]) is int

    def test_builtin_values_pass_through(self):
        for value in (1, 2.5, True, "x", None):
            assert _jsonable(value) == value


class TestScenarioHash:
    def test_numpy_overrides_hash_like_builtins(self):
        plain = Scenario(
            "fig6", overrides={"a": 1.5, "n": 3, "flag": True}
        )
        numpied = Scenario(
            "fig6",
            overrides={
                "flag": np.bool_(True),
                "a": np.float64(1.5),
                "n": np.int64(3),
            },
        )
        assert scenario_hash(plain) == scenario_hash(numpied)

    def test_numpy_sweep_values_hash_like_builtins(self):
        plain = Scenario("fig7", sweep={"t": (0.0, 300.0)})
        numpied = Scenario(
            "fig7", sweep={"t": (np.float64(0.0), np.float64(300.0))}
        )
        assert scenario_hash(plain) == scenario_hash(numpied)

    def test_key_order_is_irrelevant(self):
        a = Scenario("fig6", overrides={"x": 1, "y": 2})
        b = Scenario("fig6", overrides={"y": 2, "x": 1})
        assert scenario_hash(a) == scenario_hash(b)

    def test_label_is_excluded(self):
        assert scenario_hash(Scenario("fig6")) == scenario_hash(
            Scenario("fig6", label="pretty name")
        )
        assert "label" not in canonical_scenario_record(
            Scenario("fig6", label="pretty name")
        )

    def test_experiment_id_and_overrides_matter(self):
        base = scenario_hash(Scenario("fig6"))
        assert scenario_hash(Scenario("fig7")) != base
        assert scenario_hash(Scenario("fig6", overrides={"gcr": 0.5})) != base

    def test_defaults_participate(self):
        scenario = Scenario("fig6")
        assert scenario_hash(scenario) != scenario_hash(
            scenario, defaults={"temperature_k": 400.0}
        )
        # ... and normalise like overrides do.
        assert scenario_hash(
            scenario, defaults={"temperature_k": 400.0}
        ) == scenario_hash(
            scenario, defaults={"temperature_k": np.float64(400.0)}
        )

    def test_code_version_salt_participates(self):
        scenario = Scenario("fig6")
        assert scenario_hash(scenario) == scenario_hash(
            scenario, salt=code_version()
        )
        assert scenario_hash(scenario, salt="other/r999") != scenario_hash(
            scenario
        )

    def test_hash_shape(self):
        digest = scenario_hash(Scenario("fig6"))
        assert len(digest) == 64
        assert all(c in "0123456789abcdef" for c in digest)

    def test_round_tripped_scenario_hashes_identically(self):
        scenario = Scenario(
            "fig7",
            overrides={"n_points": 12, "gcr": 0.55},
            sweep={"temperature_k": (0.0, 300.0)},
        )
        reloaded = Scenario.from_dict(
            json.loads(json.dumps(scenario.to_dict()))
        )
        assert scenario_hash(reloaded) == scenario_hash(scenario)

    def test_stable_across_processes(self):
        scenario = Scenario(
            "fig6", overrides={"n_points": 10, "temperature_k": 300.0}
        )
        here = scenario_hash(scenario)
        code = (
            "from repro.api import Scenario, scenario_hash;"
            "print(scenario_hash(Scenario('fig6', overrides="
            "{'temperature_k': 300.0, 'n_points': 10})))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == here


class TestPlanHash:
    def test_name_does_not_matter_but_work_does(self):
        scenarios = (Scenario("fig6"), Scenario("fig7"))
        a = RunPlan(name="a", scenarios=scenarios)
        b = RunPlan(name="b", scenarios=scenarios)
        assert plan_hash(a) == plan_hash(b)
        c = RunPlan(name="a", scenarios=(Scenario("fig6"),))
        assert plan_hash(c) != plan_hash(a)

    def test_equivalent_sweep_grouping_hashes_identically(self):
        family = RunPlan(
            name="family",
            scenarios=(Scenario("fig7", sweep={"gcr": (0.5, 0.6)}),),
        )
        # Labels differ between expansion styles, but labels are
        # presentation-only: the concrete work is identical.
        flat = RunPlan(
            name="flat",
            scenarios=tuple(
                Scenario("fig7", overrides={"gcr": g}) for g in (0.5, 0.6)
            ),
        )
        assert plan_hash(family) == plan_hash(flat)

    def test_order_matters(self):
        a = RunPlan(scenarios=(Scenario("fig6"), Scenario("fig7")))
        b = RunPlan(scenarios=(Scenario("fig7"), Scenario("fig6")))
        assert plan_hash(a) != plan_hash(b)


class TestCanonicalJson:
    def test_sorted_minimal_ascii(self):
        text = canonical_json({"b": 1, "a": [1.5, "é"]})
        assert text == '{"a":[1.5,"\\u00e9"],"b":1}'

    def test_nan_is_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})
