"""End-to-end check of every number the paper states explicitly.

Section II-III of the paper pins down a handful of concrete values;
this module verifies each against the assembled stack (materials ->
electrostatics -> tunneling -> device) rather than against isolated
formulas.
"""

import pytest

from repro.device import (
    ERASE_BIAS,
    PROGRAM_BIAS,
    FloatingGateTransistor,
    simulate_transient,
)
from repro.tunneling import FowlerNordheimModel


class TestSectionIIINumbers:
    def test_vgs_15_gcr_06_gives_vfg_9(self, paper_device):
        """'With a voltage VGS=15V ... and a GCR value of 0.6 the value
        of VFG would be 9V according to (3).'"""
        assert paper_device.floating_gate_voltage(
            PROGRAM_BIAS
        ) == pytest.approx(9.0, abs=1e-9)

    def test_control_oxide_potential_difference_is_6v(self, paper_device):
        """'...lower potential difference (15V-9V=6V) ... between the
        floating gate and the control gate.'"""
        vfg = paper_device.floating_gate_voltage(PROGRAM_BIAS)
        assert 15.0 - vfg == pytest.approx(6.0, abs=1e-9)

    def test_control_oxide_thicker_than_tunnel(self, paper_device):
        """'The thickness of the control oxide is always greater than
        the tunnel oxide.'"""
        g = paper_device.geometry
        assert g.control_oxide_thickness_m > g.tunnel_oxide_thickness_m

    def test_jin_much_higher_than_jout(self, paper_device):
        """'Therefore, Jin is much higher than Jout.'"""
        state = paper_device.tunneling_state(PROGRAM_BIAS)
        assert state.jin_a_m2 > 1e6 * state.jout_a_m2


class TestSectionIIClaims:
    def test_programming_current_below_1na_per_cell(self, paper_device):
        """'it requires very small programming current (< 1nA) per cell'
        -- holds through most of the transient for this cell size."""
        result = simulate_transient(
            paper_device, PROGRAM_BIAS, duration_s=1e-3
        )
        area = paper_device.geometry.channel_area_m2
        # After the initial spike the cell current drops below 1 nA.
        import numpy as np

        current = np.abs(result.jin_a_m2) * area
        below = current < 1e-9
        assert below[-1]
        assert below.mean() > 0.5

    def test_exponential_sensitivity_to_barrier(self, paper_device):
        """'JFN depends exponentially on phi_B. Therefore, higher phi_B
        leads to significantly lower JFN.'"""
        from dataclasses import replace

        from repro.tunneling import TunnelBarrier

        low = FowlerNordheimModel(
            replace(paper_device.tunnel_barrier, barrier_height_ev=3.0)
        )
        high = FowlerNordheimModel(
            replace(paper_device.tunnel_barrier, barrier_height_ev=4.0)
        )
        assert low.current_density(1.8e9) > 30.0 * high.current_density(
            1.8e9
        )


class TestLogicStates:
    def test_programming_stores_electrons_logic_zero(self, paper_device):
        """'electrons are accumulated on the floating gate (programming)
        that translates to logic state 0.'"""
        result = simulate_transient(
            paper_device, PROGRAM_BIAS, duration_s=1e-2
        )
        assert result.final_charge_c < 0.0

    def test_erase_depletes_electrons_logic_one(self, paper_device):
        """'A negative voltage ... leads to the depletion of electrons
        (erase) that translates to the logic state 1.'"""
        programmed = simulate_transient(
            paper_device, PROGRAM_BIAS, duration_s=1e-2
        ).final_charge_c
        erased = simulate_transient(
            paper_device,
            ERASE_BIAS,
            initial_charge_c=programmed,
            duration_s=1e-2,
        ).final_charge_c
        assert erased > programmed
        assert erased > 0.0  # depleted past neutrality

    def test_usable_range_requires_jin_above_jout(self, paper_device):
        """'The device will not [be] useful ... for the range where
        Jin < Jout': past equilibrium the net current reverses."""
        from repro.device import equilibrium_charge

        q_eq = equilibrium_charge(paper_device, PROGRAM_BIAS)
        past = paper_device.tunneling_state(PROGRAM_BIAS, 1.5 * q_eq)
        mult = paper_device.geometry.control_gate_area_multiplier
        assert past.jin_a_m2 < past.jout_a_m2 * mult
