"""The example scripts stay runnable (smoke tests on the fast ones).

The slower studies (oxide scaling, design optimisation) are exercised
indirectly: every API they touch is covered by the unit and benchmark
suites; running them here would dominate the suite's wall time.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = ["quickstart.py", "band_diagram_tour.py", "scenario_service.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_all_examples_present():
    expected = {
        "quickstart.py",
        "program_erase_transient.py",
        "oxide_scaling_study.py",
        "nand_array_demo.py",
        "design_optimization.py",
        "band_diagram_tour.py",
        "reliability_lifetime.py",
        "scenario_service.py",
    }
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert expected <= present


def test_quickstart_reports_paper_numbers():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert "9.00 V" in result.stdout  # eq. (3) headline number
    assert "0.600" in result.stdout  # the paper's GCR
