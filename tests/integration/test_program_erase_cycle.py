"""Full program/erase/read cycles through the device stack."""

import pytest

from repro.device import (
    ChannelIVModel,
    ERASE_BIAS,
    PROGRAM_BIAS,
    RetentionModel,
    ThresholdModel,
    simulate_transient,
)


class TestFullCycle:
    @pytest.fixture(scope="class")
    def cycle(self, paper_device):
        program = simulate_transient(
            paper_device, PROGRAM_BIAS, duration_s=1e-2
        )
        erase = simulate_transient(
            paper_device,
            ERASE_BIAS,
            initial_charge_c=program.final_charge_c,
            duration_s=1e-2,
        )
        reprogram = simulate_transient(
            paper_device,
            PROGRAM_BIAS,
            initial_charge_c=erase.final_charge_c,
            duration_s=1e-2,
        )
        return program, erase, reprogram

    def test_cycle_returns_to_programmed_state(self, cycle):
        program, _erase, reprogram = cycle
        assert reprogram.final_charge_c == pytest.approx(
            program.final_charge_c, rel=1e-3
        )

    def test_states_distinguishable_by_threshold(self, cycle, paper_device):
        program, erase, _ = cycle
        tm = ThresholdModel(paper_device)
        vt_prog = tm.threshold_v(program.final_charge_c)
        vt_erased = tm.threshold_v(erase.final_charge_c)
        assert vt_prog - vt_erased > 2.0

    def test_states_distinguishable_by_read_current(
        self, cycle, paper_device
    ):
        program, erase, _ = cycle
        tm = ThresholdModel(paper_device)
        iv = ChannelIVModel(tm)
        read_v = 0.5 * (
            tm.threshold_v(program.final_charge_c)
            + tm.threshold_v(erase.final_charge_c)
        )
        i_erased = iv.drain_current_a(read_v, 0.5, erase.final_charge_c)
        i_prog = iv.drain_current_a(read_v, 0.5, program.final_charge_c)
        assert i_erased > 1e3 * i_prog

    def test_programmed_state_retained(self, cycle, paper_device):
        program, _, _ = cycle
        retention = RetentionModel(paper_device).simulate(
            program.final_charge_c, duration_s=3.15e7, n_samples=50
        )  # one year
        assert retention.charge_c[-1] / program.final_charge_c > 0.8


class TestAsymmetricOperation:
    def test_shallow_erase_leaves_residual_charge(self, paper_device):
        """A weaker erase voltage cannot fully deplete the gate."""
        program = simulate_transient(
            paper_device, PROGRAM_BIAS, duration_s=1e-2
        )
        weak_erase = simulate_transient(
            paper_device,
            ERASE_BIAS.with_gate_voltage(-10.0),
            initial_charge_c=program.final_charge_c,
            duration_s=1e-2,
        )
        strong_erase = simulate_transient(
            paper_device,
            ERASE_BIAS,
            initial_charge_c=program.final_charge_c,
            duration_s=1e-2,
        )
        assert weak_erase.final_charge_c < strong_erase.final_charge_c
