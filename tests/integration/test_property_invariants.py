"""Hypothesis property tests on the core invariants.

These sweep randomised parameters through the numerically sensitive
paths: tunneling positivity/monotonicity, FN-plot inversion, ECC
correction, electrostatic linearity, the tridiagonal solver, and the
Pareto front definition.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.electrostatics import (
    TerminalVoltages,
    build_capacitances,
    floating_gate_voltage,
)
from repro.materials import SIO2
from repro.memory import HammingCode
from repro.solver import find_crossing, solve_tridiagonal
from repro.tunneling import (
    FowlerNordheimModel,
    TunnelBarrier,
    fit_fn_plot,
    fn_coefficient_a,
    fn_coefficient_b,
)
from repro.units import nm_to_m

barrier_heights = st.floats(min_value=1.5, max_value=5.0)
mass_ratios = st.floats(min_value=0.1, max_value=1.0)
thicknesses_nm = st.floats(min_value=3.0, max_value=10.0)
fields = st.floats(min_value=2e8, max_value=3e9)


class TestFowlerNordheimProperties:
    @given(phi=barrier_heights, mass=mass_ratios, field=fields)
    @settings(max_examples=80, deadline=None)
    def test_current_positive_and_finite(self, phi, mass, field):
        model = FowlerNordheimModel(TunnelBarrier(phi, nm_to_m(5.0), mass))
        j = model.current_density(field)
        assert j >= 0.0
        assert math.isfinite(j)

    @given(
        phi=barrier_heights,
        mass=mass_ratios,
        field=fields,
        factor=st.floats(min_value=1.01, max_value=3.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_strictly_increasing_in_field(self, phi, mass, field, factor):
        model = FowlerNordheimModel(TunnelBarrier(phi, nm_to_m(5.0), mass))
        assert model.current_density(field * factor) > model.current_density(
            field
        )

    @given(phi=barrier_heights, mass=mass_ratios)
    @settings(max_examples=40, deadline=None)
    def test_fn_plot_inversion_is_exact(self, phi, mass):
        """fit_fn_plot must invert (A, B) -> (phi, m) for clean data."""
        model = FowlerNordheimModel(TunnelBarrier(phi, nm_to_m(5.0), mass))
        e = np.linspace(8e8, 2.5e9, 12)
        j = model.current_density(e)
        assume(np.all(j > 1e-250))
        fit = fit_fn_plot(e, j)
        assert fit.barrier_height_ev == pytest.approx(phi, rel=1e-4)
        assert fit.mass_ratio == pytest.approx(mass, rel=1e-4)

    @given(phi=barrier_heights, mass=mass_ratios)
    @settings(max_examples=60, deadline=None)
    def test_coefficients_positive(self, phi, mass):
        assert fn_coefficient_a(phi) > 0.0
        assert fn_coefficient_b(phi, mass) > 0.0


class TestElectrostaticsProperties:
    @given(
        vgs=st.floats(min_value=-20.0, max_value=20.0),
        charge_fc=st.floats(min_value=-5.0, max_value=5.0),
        multiplier=st.floats(min_value=0.5, max_value=8.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_vfg_linear_in_vgs_and_charge(self, vgs, charge_fc, multiplier):
        caps = build_capacitances(
            SIO2,
            SIO2,
            nm_to_m(8.0),
            nm_to_m(5.0),
            1e-14,
            control_gate_area_multiplier=multiplier,
        )
        charge = charge_fc * 1e-16
        v1 = floating_gate_voltage(caps, TerminalVoltages(vgs=vgs), charge)
        # Superposition: f(vgs, q) = f(vgs, 0) + f(0, q)
        va = floating_gate_voltage(caps, TerminalVoltages(vgs=vgs), 0.0)
        vb = floating_gate_voltage(caps, TerminalVoltages(), charge)
        assert v1 == pytest.approx(va + vb, abs=1e-12)

    @given(multiplier=st.floats(min_value=0.2, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_gcr_strictly_inside_unit_interval(self, multiplier):
        caps = build_capacitances(
            SIO2,
            SIO2,
            nm_to_m(8.0),
            nm_to_m(5.0),
            1e-14,
            control_gate_area_multiplier=multiplier,
        )
        assert 0.0 < caps.gate_coupling_ratio < 1.0

    @given(target=st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=60, deadline=None)
    def test_scaled_to_gcr_exact(self, target):
        caps = build_capacitances(
            SIO2, SIO2, nm_to_m(8.0), nm_to_m(5.0), 1e-14
        )
        assert caps.scaled_to_gcr(
            target
        ).gate_coupling_ratio == pytest.approx(target, rel=1e-9)


class TestEccProperties:
    @given(data=st.lists(st.integers(0, 1), min_size=16, max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_any_payload(self, data):
        code = HammingCode(16)
        bits = np.array(data, dtype=np.uint8)
        decoded, corrected = code.decode(code.encode(bits))
        assert (decoded == bits).all()
        assert corrected == 0

    @given(
        data=st.lists(st.integers(0, 1), min_size=16, max_size=16),
        error_bit=st.integers(min_value=0, max_value=21),
    )
    @settings(max_examples=80, deadline=None)
    def test_any_single_error_corrected(self, data, error_bit):
        code = HammingCode(16)  # codeword = 16 + 5 + 1 = 22 bits
        bits = np.array(data, dtype=np.uint8)
        word = code.encode(bits)
        word[error_bit] ^= 1
        decoded, corrected = code.decode(word)
        assert (decoded == bits).all()
        assert corrected == 1


class TestSolverProperties:
    @given(
        n=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_tridiagonal_residual_small(self, n, seed):
        rng = np.random.default_rng(seed)
        lower = rng.normal(size=n - 1)
        upper = rng.normal(size=n - 1)
        diag = rng.normal(size=n) + 8.0
        rhs = rng.normal(size=n)
        x = solve_tridiagonal(lower, diag, upper, rhs)
        from repro.solver import tridiagonal_matrix

        residual = tridiagonal_matrix(lower, diag, upper) @ x - rhs
        assert np.max(np.abs(residual)) < 1e-8

    @given(
        crossing_at=st.floats(min_value=0.05, max_value=0.95),
        slope=st.floats(min_value=0.2, max_value=5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_find_crossing_locates_linear_intersection(
        self, crossing_at, slope
    ):
        t = np.linspace(0.0, 1.0, 201)
        a = slope * (t - crossing_at)
        b = -slope * (t - crossing_at)
        got = find_crossing(t, a, b)
        assert got == pytest.approx(crossing_at, abs=1e-2)


class TestParetoProperties:
    @given(
        values=st.lists(
            st.tuples(
                st.floats(min_value=1e-6, max_value=1.0),
                st.floats(min_value=1e3, max_value=1e9),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_front_nonempty_and_mutually_nondominating(self, values):
        from repro.optimization import DesignMetrics, DesignPoint, pareto_front

        designs = [
            DesignMetrics(
                point=DesignPoint(),
                initial_current_density_a_m2=1.0,
                peak_tunnel_field_v_per_m=1e9,
                program_time_s=t,
                memory_window_v=5.0,
                cycles_to_breakdown=c,
            )
            for t, c in values
        ]
        objectives = [
            (lambda m: m.program_time_s, "min"),
            (lambda m: m.cycles_to_breakdown, "max"),
        ]
        front = pareto_front(designs, objectives)
        assert front
        for a in front:
            for b in front:
                strictly_better = (
                    a.program_time_s < b.program_time_s
                    and a.cycles_to_breakdown > b.cycles_to_breakdown
                )
                assert not strictly_better
