"""Device physics flowing through to the array/controller stack."""

import numpy as np
import pytest

from repro.device import FloatingGateTransistor
from repro.memory import (
    ArrayConfig,
    DisturbModel,
    HammingCode,
    MemoryController,
    PageMappedFtl,
    build_array,
    calibrate_kernel,
)


class TestKernelFollowsDevice:
    def test_thinner_oxide_device_wider_pulse_shift(self, cell_kernel):
        """A faster-tunneling device calibrates to a faster kernel."""
        from dataclasses import replace

        fast_device = FloatingGateTransistor()
        fast_device = replace(
            fast_device,
            geometry=fast_device.geometry.with_tunnel_oxide_nm(4.5),
        )
        fast_kernel = calibrate_kernel(fast_device, pulse_duration_s=1e-5)
        slow_kernel = calibrate_kernel(
            FloatingGateTransistor(), pulse_duration_s=1e-5
        )
        assert (
            fast_kernel.program_pulse_shift_v
            > slow_kernel.program_pulse_shift_v
        )


class TestArrayWithDisturbs:
    def test_disturb_accumulates_on_unselected_pages(self, cell_kernel):
        device = FloatingGateTransistor()
        disturb = DisturbModel(
            device, pass_voltage_v=9.0, event_duration_s=1e-3
        )
        array = build_array(
            cell_kernel,
            ArrayConfig(n_blocks=1, wordlines_per_block=4, bitlines=8),
            disturb=disturb,
        )
        victim_before = array.page_thresholds(0, 3).copy()
        for wl in range(3):
            array.program_page(0, wl, np.zeros(8, dtype=np.uint8))
        victim_after = array.page_thresholds(0, 3)
        drift = victim_after - victim_before
        assert np.all(drift >= 0.0)
        assert drift.max() > 0.0

    def test_disturb_small_enough_to_not_flip_data(self, cell_kernel):
        device = FloatingGateTransistor()
        disturb = DisturbModel(device, pass_voltage_v=6.0)
        array = build_array(
            cell_kernel,
            ArrayConfig(n_blocks=1, wordlines_per_block=8, bitlines=16),
            disturb=disturb,
        )
        bits = np.tile(
            np.array([0, 1], dtype=np.uint8), 8
        )
        array.program_page(0, 0, bits)
        for wl in range(1, 8):
            array.program_page(0, wl, bits)
        assert (array.read_page(0, 0) == bits).all()


class TestFullStack:
    def test_controller_over_physical_cells_end_to_end(self, cell_kernel, rng):
        array = build_array(
            cell_kernel,
            ArrayConfig(n_blocks=4, wordlines_per_block=4, bitlines=39),
        )
        controller = MemoryController(
            PageMappedFtl(array, overprovision_blocks=1),
            HammingCode(32),
            host_page_bits=32,
        )
        data = {
            i: rng.integers(0, 2, 32).astype(np.uint8) for i in range(8)
        }
        for page, bits in data.items():
            controller.write(page, bits)
        # Churn to force garbage collection underneath.
        for _ in range(20):
            page = int(rng.integers(0, 8))
            data[page] = rng.integers(0, 2, 32).astype(np.uint8)
            controller.write(page, data[page])
        for page, bits in data.items():
            assert (controller.read(page) == bits).all()
        assert controller.stats.uncorrectable_pages == 0
