"""Second property-test battery: deeper physics invariants.

Covers reciprocity of the transfer matrix, FN/direct-tunneling
continuity, WKB-vs-exact ordering, MLC Gray-code structure, Arrhenius
round trips and Poisson superposition -- each over randomised
parameters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import ELECTRON_MASS, VACUUM_PERMITTIVITY
from repro.solver import (
    BarrierSegment,
    PiecewiseBarrier,
    PoissonProblem1D,
    solve_poisson_1d,
    transmission_probability,
    uniform_grid,
)
from repro.tunneling import (
    DirectTunnelingModel,
    FowlerNordheimModel,
    TunnelBarrier,
)
from repro.units import ev_to_j, nm_to_m


class TestTransferMatrixProperties:
    @given(
        heights=st.lists(
            st.floats(min_value=0.5, max_value=4.0), min_size=1, max_size=4
        ),
        widths=st.lists(
            st.floats(min_value=0.2, max_value=1.5), min_size=1, max_size=4
        ),
        energy_ev=st.floats(min_value=0.05, max_value=6.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_transmission_always_in_unit_interval(
        self, heights, widths, energy_ev
    ):
        n = min(len(heights), len(widths))
        segments = [
            BarrierSegment(nm_to_m(widths[i]), ev_to_j(heights[i]), ELECTRON_MASS)
            for i in range(n)
        ]
        barrier = PiecewiseBarrier(segments)
        t = transmission_probability(barrier, ev_to_j(energy_ev))
        assert 0.0 <= t <= 1.0

    @given(
        h1=st.floats(min_value=0.5, max_value=3.0),
        h2=st.floats(min_value=0.5, max_value=3.0),
        w1=st.floats(min_value=0.3, max_value=1.2),
        w2=st.floats(min_value=0.3, max_value=1.2),
        energy_ev=st.floats(min_value=0.05, max_value=2.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_reciprocity_left_right(self, h1, h2, w1, w2, energy_ev):
        """T(E) is identical for the barrier and its mirror image
        (time-reversal symmetry of the scattering problem)."""
        m = ELECTRON_MASS
        forward = PiecewiseBarrier(
            [
                BarrierSegment(nm_to_m(w1), ev_to_j(h1), m),
                BarrierSegment(nm_to_m(w2), ev_to_j(h2), m),
            ]
        )
        backward = PiecewiseBarrier(
            [
                BarrierSegment(nm_to_m(w2), ev_to_j(h2), m),
                BarrierSegment(nm_to_m(w1), ev_to_j(h1), m),
            ]
        )
        e = ev_to_j(energy_ev)
        assert transmission_probability(forward, e) == pytest.approx(
            transmission_probability(backward, e), rel=1e-9
        )


class TestTunnelingModelContinuity:
    @given(
        phi=st.floats(min_value=2.0, max_value=4.5),
        mass=st.floats(min_value=0.2, max_value=0.8),
        thickness_nm=st.floats(min_value=3.0, max_value=8.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_direct_meets_fn_at_barrier_voltage(
        self, phi, mass, thickness_nm
    ):
        barrier = TunnelBarrier(phi, nm_to_m(thickness_nm), mass)
        dt = DirectTunnelingModel(barrier)
        fn = FowlerNordheimModel(barrier)
        # Continuity at V_ox = phi_B and agreement above it.
        for v in (phi, phi * 1.3):
            assert dt.current_density_from_voltage(v) == pytest.approx(
                fn.current_density_from_voltage(v), rel=1e-9
            )

    @given(
        phi=st.floats(min_value=2.0, max_value=4.5),
        mass=st.floats(min_value=0.2, max_value=0.8),
        fraction=st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=60, deadline=None)
    def test_direct_exceeds_fn_below_barrier(self, phi, mass, fraction):
        """The finite trapezoid always has less WKB action than the
        fictitious full triangle."""
        barrier = TunnelBarrier(phi, nm_to_m(4.0), mass)
        v = fraction * phi
        dt = DirectTunnelingModel(barrier).current_density_from_voltage(v)
        fn = FowlerNordheimModel(barrier).current_density_from_voltage(v)
        assert dt >= fn


class TestMlcProperties:
    @given(level=st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_gray_round_trip(self, level):
        from repro.memory import bits_to_level, level_to_bits

        assert bits_to_level(*level_to_bits(level)) == level

    @given(
        guard=st.floats(min_value=0.0, max_value=0.45),
    )
    @settings(max_examples=40, deadline=None)
    def test_levels_ordered_for_any_guard(self, guard):
        from repro.memory import CellKernel, MlcLevels

        kernel = CellKernel(
            erased_vt_v=-3.0,
            programmed_vt_v=5.0,
            program_pulse_shift_v=1.0,
            ispp_step_v=0.3,
            pulse_duration_s=1e-4,
        )
        levels = MlcLevels.from_kernel(kernel, guard_fraction=guard)
        assert all(
            a < b for a, b in zip(levels.targets_v, levels.targets_v[1:])
        )
        for i, ref in enumerate(levels.references_v):
            assert levels.targets_v[i] < ref < levels.targets_v[i + 1]


class TestArrheniusProperties:
    @given(
        ea=st.floats(min_value=0.3, max_value=2.0),
        t_bake=st.floats(min_value=350.0, max_value=550.0),
        duration=st.floats(min_value=1.0, max_value=1e6),
    )
    @settings(max_examples=60, deadline=None)
    def test_time_conversion_round_trip(self, ea, t_bake, duration):
        from repro.reliability import ArrheniusAcceleration

        model = ArrheniusAcceleration(activation_energy_ev=ea)
        use_time = model.equivalent_use_time_s(duration, t_bake)
        assert model.bake_time_for_target_s(
            use_time, t_bake
        ) == pytest.approx(duration, rel=1e-9)


class TestPoissonProperties:
    @given(
        phi_l=st.floats(min_value=-5.0, max_value=5.0),
        phi_r=st.floats(min_value=-5.0, max_value=5.0),
        rho_scale=st.floats(min_value=-1e6, max_value=1e6),
    )
    @settings(max_examples=60, deadline=None)
    def test_superposition(self, phi_l, phi_r, rho_scale):
        """phi(bc + charge) == phi(bc only) + phi(charge only)."""
        grid = uniform_grid(0.0, 1e-8, 61)
        eps = np.full(grid.n - 1, VACUUM_PERMITTIVITY)
        rho = np.full(grid.n, rho_scale)
        zero = np.zeros(grid.n)

        both = solve_poisson_1d(
            PoissonProblem1D(grid, eps, rho, phi_l, phi_r)
        ).potential
        bc_only = solve_poisson_1d(
            PoissonProblem1D(grid, eps, zero, phi_l, phi_r)
        ).potential
        charge_only = solve_poisson_1d(
            PoissonProblem1D(grid, eps, rho, 0.0, 0.0)
        ).potential
        assert np.allclose(both, bc_only + charge_only, atol=1e-9)
