"""Constants and derived values."""

import math

import pytest

from repro import constants


def test_elementary_charge_exact_si_value():
    assert constants.ELEMENTARY_CHARGE == 1.602176634e-19


def test_hbar_is_h_over_two_pi():
    assert constants.HBAR == pytest.approx(
        constants.PLANCK / (2.0 * math.pi), rel=1e-15
    )


def test_thermal_voltage_at_300k_is_about_26mv():
    assert constants.thermal_voltage(300.0) == pytest.approx(0.02585, rel=1e-3)


def test_thermal_voltage_rejects_nonpositive_temperature():
    with pytest.raises(ValueError):
        constants.thermal_voltage(0.0)
    with pytest.raises(ValueError):
        constants.thermal_voltage(-10.0)


def test_thermal_energy_scales_linearly():
    assert constants.thermal_energy_j(600.0) == pytest.approx(
        2.0 * constants.thermal_energy_j(300.0)
    )


def test_graphene_fermi_velocity_is_about_1e6():
    assert constants.GRAPHENE_FERMI_VELOCITY == pytest.approx(8.8e5, rel=0.1)


def test_graphene_lattice_constant_from_cc_distance():
    assert constants.GRAPHENE_LATTICE_CONSTANT == pytest.approx(
        math.sqrt(3.0) * 0.142e-9, rel=1e-12
    )


def test_ev_equals_charge_in_joules():
    assert constants.ELECTRON_VOLT == constants.ELEMENTARY_CHARGE
