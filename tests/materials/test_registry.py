"""Material registry lookups."""

import pytest

from repro.errors import ConfigurationError, MaterialNotFoundError
from repro.materials import (
    ConductorMaterial,
    SIO2,
    get_dielectric,
    get_material,
    list_materials,
    register_material,
)


def test_builtin_oxides_registered():
    assert get_material("SiO2") is SIO2


def test_lookup_case_insensitive():
    assert get_material("sio2") is SIO2
    assert get_material("SIO2") is SIO2


def test_unknown_material_raises_with_suggestions():
    with pytest.raises(MaterialNotFoundError) as err:
        get_material("unobtainium")
    assert "SiO2" in str(err.value)


def test_get_dielectric_type_checked():
    with pytest.raises(ConfigurationError):
        get_dielectric("Al")  # Al is a conductor


def test_list_materials_sorted_and_nonempty():
    names = list_materials()
    assert names == sorted(names)
    assert "SiO2" in names and "Al" in names and "Si" in names


def test_register_rejects_duplicate_without_overwrite():
    custom = ConductorMaterial("test-metal-xyz", 4.2)
    register_material(custom)
    try:
        with pytest.raises(ConfigurationError):
            register_material(custom)
        register_material(custom, overwrite=True)  # allowed
    finally:
        # Clean up the global registry for other tests.
        from repro.materials import registry

        registry._REGISTRY.pop("test-metal-xyz", None)
