"""Carbon nanotube zone-folding relations."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.materials import CarbonNanotube, good_gate_chiralities


class TestGeometry:
    def test_armchair_diameter(self):
        """(10,10): d = a*sqrt(300)/pi with a = 0.246 nm => ~1.356 nm."""
        t = CarbonNanotube(10, 10)
        assert t.diameter_m * 1e9 == pytest.approx(1.356, rel=1e-2)

    def test_chiral_angle_limits(self):
        assert CarbonNanotube(10, 0).chiral_angle_rad == pytest.approx(0.0)
        assert CarbonNanotube(10, 10).chiral_angle_rad == pytest.approx(
            math.pi / 6.0, rel=1e-9
        )


class TestMetallicity:
    @pytest.mark.parametrize("n,m", [(10, 10), (9, 0), (12, 6), (7, 4)])
    def test_metallic_rule(self, n, m):
        assert CarbonNanotube(n, m).is_metallic == ((n - m) % 3 == 0)

    def test_armchair_always_metallic(self):
        for n in range(2, 12):
            assert CarbonNanotube(n, n).is_metallic

    def test_metallic_gap_zero(self):
        assert CarbonNanotube(9, 0).band_gap_ev == 0.0


class TestBandGap:
    def test_semiconducting_gap_inverse_diameter(self):
        """E_g ~ 0.7/d[nm] eV for semiconducting tubes."""
        small = CarbonNanotube(7, 0)
        large = CarbonNanotube(13, 0)
        assert small.band_gap_ev > large.band_gap_ev
        # E_g * d roughly constant:
        k_small = small.band_gap_ev * small.diameter_m * 1e9
        k_large = large.band_gap_ev * large.diameter_m * 1e9
        assert k_small == pytest.approx(k_large, rel=1e-9)

    def test_gap_magnitude_reasonable(self):
        """(10,0), d~0.78 nm: gap ~1 eV."""
        t = CarbonNanotube(10, 0)
        assert 0.7 < t.band_gap_ev < 1.4

    def test_subband_ordering(self):
        t = CarbonNanotube(10, 0)
        assert t.subband_gap_ev(1) < t.subband_gap_ev(2)

    def test_subband_rejects_zero_index(self):
        with pytest.raises(ConfigurationError):
            CarbonNanotube(10, 0).subband_gap_ev(0)


class TestGateCandidates:
    def test_all_returned_tubes_are_metallic(self):
        for tube in good_gate_chiralities(8):
            assert tube.is_metallic

    def test_includes_armchair_family(self):
        tubes = {(t.n, t.m) for t in good_gate_chiralities(6)}
        assert (4, 4) in tubes and (6, 6) in tubes


class TestValidation:
    def test_rejects_m_greater_than_n(self):
        with pytest.raises(ConfigurationError):
            CarbonNanotube(3, 5)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ConfigurationError):
            CarbonNanotube(0, 0)
