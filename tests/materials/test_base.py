"""Material dataclasses and the barrier-height rule."""

import pytest

from repro.constants import ELECTRON_MASS
from repro.errors import ConfigurationError
from repro.materials import (
    ConductorMaterial,
    DielectricMaterial,
    SemiconductorMaterial,
    SIO2,
    barrier_height_ev,
)


class TestDielectric:
    def test_tunneling_mass_from_ratio(self):
        assert SIO2.tunneling_mass_kg == pytest.approx(
            0.42 * ELECTRON_MASS
        )

    def test_absolute_permittivity(self):
        assert SIO2.permittivity_f_per_m == pytest.approx(
            3.9 * 8.8541878128e-12
        )

    @pytest.mark.parametrize(
        "field",
        [
            "relative_permittivity",
            "band_gap_ev",
            "tunneling_mass_ratio",
            "breakdown_field_v_per_m",
        ],
    )
    def test_rejects_nonpositive_parameters(self, field):
        kwargs = dict(
            name="bad",
            relative_permittivity=3.9,
            band_gap_ev=9.0,
            electron_affinity_ev=0.9,
            tunneling_mass_ratio=0.4,
            breakdown_field_v_per_m=1e9,
        )
        kwargs[field] = 0.0
        with pytest.raises(ConfigurationError):
            DielectricMaterial(**kwargs)


class TestConductor:
    def test_holds_work_function(self):
        m = ConductorMaterial("X", 4.5)
        assert m.work_function_ev == 4.5

    def test_rejects_nonpositive_work_function(self):
        with pytest.raises(ConfigurationError):
            ConductorMaterial("X", -1.0)


class TestSemiconductor:
    def test_midgap_work_function(self):
        s = SemiconductorMaterial("S", 1.0, 4.0, 0.2, 10.0)
        assert s.work_function_ev == pytest.approx(4.5)

    def test_zero_gap_allowed_for_graphene(self):
        s = SemiconductorMaterial("g", 0.0, 4.56, 0.01, 1.0)
        assert s.work_function_ev == pytest.approx(4.56)

    def test_rejects_negative_gap(self):
        with pytest.raises(ConfigurationError):
            SemiconductorMaterial("S", -0.5, 4.0, 0.2, 10.0)


class TestBarrierHeight:
    def test_graphene_on_sio2(self):
        # 4.56 - 0.95 = 3.61 eV
        assert barrier_height_ev(4.56, SIO2) == pytest.approx(3.61)

    def test_silicon_on_sio2_matches_literature(self):
        # 4.05 - 0.95 = 3.10 eV, close to the canonical 3.1-3.2 eV.
        assert barrier_height_ev(4.05, SIO2) == pytest.approx(3.10)

    def test_rejects_negative_barrier(self):
        with pytest.raises(ConfigurationError):
            barrier_height_ev(0.5, SIO2)
