"""Oxide database sanity checks."""

import pytest

from repro.materials import ALL_OXIDES, AL2O3, HBN, HFO2, SI3N4, SIO2


def test_all_oxides_have_unique_names():
    names = [o.name for o in ALL_OXIDES]
    assert len(names) == len(set(names))


def test_sio2_canonical_parameters():
    assert SIO2.relative_permittivity == pytest.approx(3.9)
    assert SIO2.tunneling_mass_ratio == pytest.approx(0.42)
    assert SIO2.band_gap_ev == pytest.approx(9.0)


def test_high_k_ordering():
    """HfO2 has the highest kappa; SiO2 the lowest of the set."""
    kappas = {o.name: o.relative_permittivity for o in ALL_OXIDES}
    assert kappas["HfO2"] == max(kappas.values())
    assert kappas["SiO2"] == min(kappas.values())


def test_high_k_trades_barrier_for_permittivity():
    """The universal high-k tradeoff: higher kappa, lower barrier
    (higher affinity) and smaller gap."""
    assert HFO2.electron_affinity_ev > SIO2.electron_affinity_ev
    assert HFO2.band_gap_ev < SIO2.band_gap_ev


def test_breakdown_fields_physically_ordered():
    """SiO2 sustains the largest field of the common gate oxides."""
    assert SIO2.breakdown_field_v_per_m >= AL2O3.breakdown_field_v_per_m
    assert SIO2.breakdown_field_v_per_m >= HFO2.breakdown_field_v_per_m


@pytest.mark.parametrize("oxide", ALL_OXIDES, ids=lambda o: o.name)
def test_every_oxide_presents_a_barrier_to_graphene(oxide):
    from repro.materials import GRAPHENE_WORK_FUNCTION_EV, barrier_height_ev

    assert barrier_height_ev(GRAPHENE_WORK_FUNCTION_EV, oxide) > 0.0


def test_si3n4_and_hbn_present():
    assert SI3N4 in ALL_OXIDES
    assert HBN in ALL_OXIDES
