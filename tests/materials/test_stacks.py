"""Layered (ONO) dielectric stacks."""

import pytest

from repro.errors import ConfigurationError
from repro.materials import (
    DielectricLayer,
    LayeredDielectric,
    SI3N4,
    SIO2,
    compare_control_dielectrics,
)
from repro.units import nm_to_m


@pytest.fixture()
def ono():
    return LayeredDielectric.ono(nm_to_m(2.0), nm_to_m(4.0), nm_to_m(2.0))


class TestSeriesCapacitance:
    def test_single_layer_matches_parallel_plate(self):
        from repro.electrostatics import capacitance_per_area

        stack = LayeredDielectric.single(SIO2, nm_to_m(8.0))
        assert stack.capacitance_per_area == pytest.approx(
            capacitance_per_area(3.9, nm_to_m(8.0))
        )

    def test_ono_beats_pure_oxide_of_same_thickness(self, ono):
        """Replacing mid-oxide with nitride raises the capacitance."""
        plain = LayeredDielectric.single(SIO2, ono.total_thickness_m)
        assert ono.capacitance_per_area > plain.capacitance_per_area

    def test_eot_below_physical_thickness_for_ono(self, ono):
        assert ono.equivalent_oxide_thickness_m < ono.total_thickness_m

    def test_eot_equals_thickness_for_pure_oxide(self):
        stack = LayeredDielectric.single(SIO2, nm_to_m(8.0))
        assert stack.equivalent_oxide_thickness_m == pytest.approx(
            nm_to_m(8.0)
        )

    def test_series_order_irrelevant(self):
        a = LayeredDielectric(
            layers=(
                DielectricLayer(SIO2, nm_to_m(3.0)),
                DielectricLayer(SI3N4, nm_to_m(3.0)),
            )
        )
        b = LayeredDielectric(
            layers=(
                DielectricLayer(SI3N4, nm_to_m(3.0)),
                DielectricLayer(SIO2, nm_to_m(3.0)),
            )
        )
        assert a.capacitance_per_area == pytest.approx(
            b.capacitance_per_area
        )


class TestBarriers:
    def test_nitride_is_the_weak_barrier(self, ono):
        barrier = ono.minimum_barrier_ev(4.56)
        assert barrier == pytest.approx(4.56 - SI3N4.electron_affinity_ev)

    def test_raises_when_no_barrier(self, ono):
        with pytest.raises(ConfigurationError):
            ono.minimum_barrier_ev(1.0)


class TestFields:
    def test_displacement_continuity(self, ono):
        """eps_i * E_i identical in every layer."""
        from repro.constants import VACUUM_PERMITTIVITY

        fields = ono.layer_fields_v_per_m(5.0)
        d_values = [
            layer.material.relative_permittivity
            * VACUUM_PERMITTIVITY
            * field
            for layer, field in zip(ono.layers, fields)
        ]
        assert all(
            d == pytest.approx(d_values[0], rel=1e-12) for d in d_values
        )

    def test_fields_sum_to_voltage(self, ono):
        fields = ono.layer_fields_v_per_m(5.0)
        drop = sum(
            field * layer.thickness_m
            for layer, field in zip(ono.layers, fields)
        )
        assert drop == pytest.approx(5.0, rel=1e-12)

    def test_low_k_layer_carries_highest_field(self, ono):
        fields = ono.layer_fields_v_per_m(5.0)
        oxide_field = fields[0]
        nitride_field = fields[1]
        assert oxide_field > nitride_field

    def test_worst_layer_stress_identified(self, ono):
        layer, ratio = ono.worst_layer_stress(8.0)
        assert ratio > 0.0
        # The oxide carries the larger field but also has the higher
        # breakdown strength; the ratio picks the true weakest link.
        fields = ono.layer_fields_v_per_m(8.0)
        ratios = [
            f / lay.material.breakdown_field_v_per_m
            for lay, f in zip(ono.layers, fields)
        ]
        assert ratio == pytest.approx(max(ratios))


class TestComparison:
    def test_ono_trades_barrier_for_capacitance(self):
        comparison = compare_control_dielectrics(nm_to_m(8.0))
        assert comparison["capacitance_gain"] > 1.0
        assert (
            comparison["ono_barrier_ev"] < comparison["plain_barrier_ev"]
        )

    def test_rejects_bad_thickness(self):
        with pytest.raises(ConfigurationError):
            compare_control_dielectrics(0.0)


class TestValidation:
    def test_rejects_empty_stack(self):
        with pytest.raises(ConfigurationError):
            LayeredDielectric(layers=())

    def test_rejects_nonpositive_layer(self):
        with pytest.raises(ConfigurationError):
            DielectricLayer(SIO2, 0.0)
