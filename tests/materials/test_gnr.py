"""GNR material model over the tight-binding substrate."""

import pytest

from repro.errors import ConfigurationError
from repro.materials import GrapheneNanoribbon, semiconducting_ribbon


class TestFamilies:
    @pytest.mark.parametrize("n", [6, 7, 9, 10, 12, 13])
    def test_semiconducting_families_have_gaps(self, n):
        ribbon = GrapheneNanoribbon("armchair", n)
        assert ribbon.band_gap_ev > 0.3

    @pytest.mark.parametrize("n", [8, 11])
    def test_metallic_family_has_tiny_gap(self, n):
        ribbon = GrapheneNanoribbon("armchair", n)
        assert ribbon.band_gap_ev < 0.1

    def test_gap_shrinks_with_width(self):
        narrow = GrapheneNanoribbon("armchair", 7)
        wide = GrapheneNanoribbon("armchair", 13)
        assert wide.band_gap_ev < narrow.band_gap_ev

    def test_zigzag_edge_states_close_gap(self):
        ribbon = GrapheneNanoribbon("zigzag", 6)
        assert ribbon.band_gap_ev < 0.05


class TestDerivedQuantities:
    def test_width_formula(self):
        """N-aGNR width = (N-1) * sqrt(3)/2 * a_cc."""
        import math

        ribbon = GrapheneNanoribbon("armchair", 12)
        expected = 11 * math.sqrt(3.0) / 2.0 * 0.142e-9
        assert ribbon.width_m == pytest.approx(expected, rel=1e-9)

    def test_mode_count_zero_inside_gap(self):
        ribbon = GrapheneNanoribbon("armchair", 12)
        assert ribbon.mode_count(0.0) == 0

    def test_mode_count_positive_above_gap(self):
        ribbon = GrapheneNanoribbon("armchair", 12)
        edge = ribbon.band_gap_ev / 2.0
        assert ribbon.mode_count(edge + 0.3) >= 1

    def test_quantum_capacitance_nonnegative(self):
        ribbon = GrapheneNanoribbon("armchair", 9)
        assert ribbon.quantum_capacitance_f_m2(fermi_ev=0.6) >= 0.0

    def test_is_semiconducting_flag(self):
        assert GrapheneNanoribbon("armchair", 7).is_semiconducting
        assert not GrapheneNanoribbon("armchair", 8).is_semiconducting


class TestSelection:
    def test_selected_ribbon_is_semiconducting_family(self):
        ribbon = semiconducting_ribbon(1.5)
        assert ribbon.n_lines % 3 != 2

    def test_selected_width_near_target(self):
        ribbon = semiconducting_ribbon(2.0)
        assert ribbon.width_m * 1e9 == pytest.approx(2.0, abs=0.4)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ConfigurationError):
            semiconducting_ribbon(0.0)

    def test_rejects_too_narrow_ribbon(self):
        with pytest.raises(ConfigurationError):
            GrapheneNanoribbon("armchair", 1)
