"""Silicon baseline material."""

import pytest

from repro.errors import ConfigurationError
from repro.materials import SI_SIO2_BARRIER_EV, SILICON, DopedSilicon


def test_silicon_parameters():
    assert SILICON.band_gap_ev == pytest.approx(1.12)
    assert SILICON.relative_permittivity == pytest.approx(11.7)


def test_si_sio2_barrier_literature_value():
    assert 3.0 < SI_SIO2_BARRIER_EV < 3.3


class TestDopedSilicon:
    def test_n_type_fermi_potential_negative(self):
        n = DopedSilicon(1e23)  # 1e17 cm^-3 donors
        assert n.fermi_potential_v() < 0.0

    def test_p_type_fermi_potential_positive(self):
        p = DopedSilicon(-1e23)
        assert p.fermi_potential_v() > 0.0

    def test_heavier_doping_moves_fermi_further(self):
        light = DopedSilicon(1e21)
        heavy = DopedSilicon(1e24)
        assert abs(heavy.fermi_potential_v()) > abs(
            light.fermi_potential_v()
        )

    def test_n_type_work_function_below_midgap(self):
        n = DopedSilicon(1e24)
        midgap = SILICON.electron_affinity_ev + 0.5 * SILICON.band_gap_ev
        assert n.work_function_ev() < midgap

    def test_rejects_zero_doping(self):
        with pytest.raises(ConfigurationError):
            DopedSilicon(0.0)
