"""Graphene sheet and multilayer models."""

import math

import pytest

from repro.constants import GRAPHENE_FERMI_VELOCITY, HBAR
from repro.errors import ConfigurationError
from repro.materials import (
    MultilayerGraphene,
    graphene_dos_per_j_m2,
    graphene_quantum_capacitance_f_m2,
    graphene_sheet_density_m2,
)
from repro.units import ev_to_j


class TestSheetDos:
    def test_dos_vanishes_at_dirac_point(self):
        assert graphene_dos_per_j_m2(0.0) == 0.0

    def test_dos_linear_in_energy(self):
        e = ev_to_j(0.1)
        assert graphene_dos_per_j_m2(2 * e) == pytest.approx(
            2.0 * graphene_dos_per_j_m2(e)
        )

    def test_dos_symmetric_electron_hole(self):
        e = ev_to_j(0.3)
        assert graphene_dos_per_j_m2(-e) == graphene_dos_per_j_m2(e)

    def test_sheet_density_at_known_fermi_level(self):
        """n = E_F^2 / (pi (hbar vF)^2); check against direct evaluation."""
        ef = ev_to_j(0.2)
        expected = ef**2 / (math.pi * (HBAR * GRAPHENE_FERMI_VELOCITY) ** 2)
        assert graphene_sheet_density_m2(ef) == pytest.approx(expected)

    def test_sheet_density_signed(self):
        assert graphene_sheet_density_m2(-ev_to_j(0.1)) < 0.0


class TestQuantumCapacitance:
    def test_minimum_at_neutrality(self):
        c0 = graphene_quantum_capacitance_f_m2(0.0)
        c1 = graphene_quantum_capacitance_f_m2(0.3)
        assert c0 < c1

    def test_symmetric_in_potential(self):
        assert graphene_quantum_capacitance_f_m2(
            0.25
        ) == pytest.approx(graphene_quantum_capacitance_f_m2(-0.25))

    def test_magnitude_near_literature_value(self):
        """C_Q(0) at 300 K is ~0.8 uF/cm^2 (Fang et al. 2007)."""
        c0 = graphene_quantum_capacitance_f_m2(0.0, 300.0)
        assert 0.3e-2 < c0 < 2.0e-2  # F/m^2 (1 uF/cm^2 = 1e-2 F/m^2)

    def test_rejects_nonpositive_temperature(self):
        with pytest.raises(ConfigurationError):
            graphene_quantum_capacitance_f_m2(0.1, 0.0)

    def test_large_bias_linear_regime(self):
        """Far from neutrality C_Q grows linearly with |V| (T->0 shape)."""
        c1 = graphene_quantum_capacitance_f_m2(0.5)
        c2 = graphene_quantum_capacitance_f_m2(1.0)
        assert c2 / c1 == pytest.approx(2.0, rel=0.05)


class TestMultilayer:
    def test_thickness_scales_with_layers(self):
        assert MultilayerGraphene(4).thickness_m == pytest.approx(
            4 * 0.335e-9
        )

    def test_effective_layers_saturate(self):
        few = MultilayerGraphene(2).effective_layer_count
        many = MultilayerGraphene(30).effective_layer_count
        more = MultilayerGraphene(60).effective_layer_count
        assert few < many
        assert more == pytest.approx(many, rel=1e-6)

    def test_quantum_capacitance_grows_with_layers(self):
        c1 = MultilayerGraphene(1).quantum_capacitance_f_m2(0.2)
        c5 = MultilayerGraphene(5).quantum_capacitance_f_m2(0.2)
        assert c5 > c1

    def test_storable_charge_positive_and_growing(self):
        m = MultilayerGraphene(3)
        q1 = m.storable_charge_per_area(0.5)
        q2 = m.storable_charge_per_area(1.0)
        assert 0.0 < q1 < q2

    def test_rejects_zero_layers(self):
        with pytest.raises(ConfigurationError):
            MultilayerGraphene(0)
