"""Batch engine: vectorized lanes must match the scalar device path."""

import numpy as np
import pytest

from repro.device import (
    ERASE_BIAS,
    PROGRAM_BIAS,
    FloatingGateTransistor,
    simulate_transient,
)
from repro.electrostatics import floating_gate_voltage_simple
from repro.engine import (
    BatchSpec,
    design_screen,
    fn_batch,
    transient_sweep,
    tunneling_states,
)
from repro.errors import ConfigurationError
from repro.experiments.sweeps import SweepSettings
from repro.tunneling import FowlerNordheimModel, TunnelBarrier
from repro.units import nm_to_m


@pytest.fixture(scope="module")
def device():
    return FloatingGateTransistor()


def scalar_fn_magnitude(vgs, gcr, xto_nm):
    settings = SweepSettings()
    barrier = TunnelBarrier(
        barrier_height_ev=settings.barrier_height_ev,
        thickness_m=nm_to_m(xto_nm),
        mass_ratio=settings.mass_ratio,
    )
    model = FowlerNordheimModel(barrier)
    return abs(
        model.current_density_from_voltage(
            floating_gate_voltage_simple(gcr, vgs)
        )
    )


class TestBatchSpec:
    def test_broadcast_shape(self):
        spec = BatchSpec(
            gate_voltages_v=np.linspace(8, 17, 10).reshape(1, -1),
            gcrs=np.array([0.4, 0.6]).reshape(-1, 1),
        )
        assert spec.shape == (2, 10)
        assert spec.size == 20

    def test_family_grid_layout(self):
        spec = BatchSpec.family_grid(
            np.linspace(8, 17, 5), gcrs=(0.4, 0.5, 0.6)
        )
        assert spec.shape == (3, 5)

    def test_rejects_bad_gcr(self):
        with pytest.raises(ConfigurationError):
            BatchSpec(gate_voltages_v=np.array([10.0]), gcrs=np.array([1.2]))

    def test_rejects_bad_oxide(self):
        with pytest.raises(ConfigurationError):
            BatchSpec(
                gate_voltages_v=np.array([10.0]),
                tunnel_oxides_nm=np.array([0.0]),
            )

    def test_rejects_unbroadcastable_lanes(self):
        with pytest.raises(ValueError):
            BatchSpec(
                gate_voltages_v=np.zeros(3) + 10.0,
                gcrs=np.array([0.4, 0.6]),
            )


class TestFnBatch:
    def test_matches_scalar_path_elementwise(self):
        vgs = np.linspace(8.0, 17.0, 23)
        spec = BatchSpec.family_grid(vgs, gcrs=(0.4, 0.7))
        result = fn_batch(spec)
        for i, gcr in enumerate((0.4, 0.7)):
            for j, v in enumerate(vgs):
                expected = scalar_fn_magnitude(float(v), gcr, 5.0)
                assert result.j_magnitude_a_m2[i, j] == pytest.approx(
                    expected, rel=1e-12
                )

    def test_erase_polarity_is_signed(self):
        spec = BatchSpec(gate_voltages_v=np.array([-15.0, 15.0]))
        result = fn_batch(spec)
        assert result.j_a_m2[0] < 0.0 < result.j_a_m2[1]
        assert result.j_magnitude_a_m2[0] == pytest.approx(
            result.j_magnitude_a_m2[1]
        )

    def test_zero_voltage_gives_zero_current(self):
        spec = BatchSpec(gate_voltages_v=np.array([0.0, 12.0]))
        result = fn_batch(spec)
        assert result.j_a_m2[0] == 0.0
        assert result.j_a_m2[1] > 0.0


class TestTunnelingStates:
    def test_matches_scalar_tunneling_state(self, device):
        charges = np.linspace(0.0, -2e-16, 50)
        batch = tunneling_states(device, PROGRAM_BIAS, charges)
        for i, q in enumerate(charges):
            state = device.tunneling_state(PROGRAM_BIAS, float(q))
            assert batch.vfg_v[i] == pytest.approx(state.vfg_v, rel=1e-12)
            assert batch.jin_a_m2[i] == pytest.approx(
                state.jin_a_m2, rel=1e-9
            )
            assert batch.jout_a_m2[i] == pytest.approx(
                state.jout_a_m2, rel=1e-9
            )
            assert batch.net_current_a[i] == pytest.approx(
                state.net_current_a, rel=1e-9
            )

    def test_erase_bias_reverses_sign(self, device):
        programmed = -2e-16
        batch = tunneling_states(device, ERASE_BIAS, np.array([programmed]))
        assert batch.jin_a_m2[0] < 0.0

    def test_scalar_input_allowed(self, device):
        batch = tunneling_states(device, PROGRAM_BIAS, 0.0)
        state = device.tunneling_state(PROGRAM_BIAS, 0.0)
        assert float(batch.jin_a_m2) == pytest.approx(state.jin_a_m2)


class TestTransientSweep:
    def test_matches_individual_transients(self, device):
        sweep = transient_sweep(
            device,
            PROGRAM_BIAS,
            [14.0, 16.0],
            duration_s=1e-3,
            n_samples=32,
        )
        for vgs, result in zip(sweep.gate_voltages_v, sweep.results):
            solo = simulate_transient(
                device,
                PROGRAM_BIAS.with_gate_voltage(float(vgs)),
                duration_s=1e-3,
                n_samples=32,
            )
            assert result.final_charge_c == pytest.approx(
                solo.final_charge_c, rel=1e-6
            )

    def test_tsat_monotone_in_voltage(self, device):
        sweep = transient_sweep(
            device,
            PROGRAM_BIAS,
            [15.0, 17.0],
            duration_s=1e-2,
            n_samples=64,
        )
        assert np.all(np.isfinite(sweep.t_sat_s))
        assert sweep.t_sat_s[1] < sweep.t_sat_s[0]

    def test_empty_sweep_rejected(self, device):
        with pytest.raises(ConfigurationError):
            transient_sweep(device, PROGRAM_BIAS, [])


class TestDesignScreen:
    def test_shapes(self):
        screen = design_screen(np.linspace(10, 20, 5), np.linspace(4, 8, 3))
        assert screen.j0_a_m2.shape == (5, 3)
        assert screen.field_v_per_m.shape == (5, 3)

    def test_best_point_respects_ceiling(self):
        screen = design_screen(np.linspace(10, 20, 9), np.linspace(4, 8, 9))
        vgs, xto = screen.best_point(2.5e9)
        field = 0.6 * vgs / nm_to_m(xto)
        assert field <= 2.5e9 * (1 + 1e-12)

    def test_best_point_none_when_infeasible(self):
        screen = design_screen(np.linspace(10, 20, 5), np.linspace(4, 8, 5))
        assert screen.best_point(1e6) is None

    def test_unconstrained_best_is_fast_corner(self):
        screen = design_screen(np.linspace(10, 20, 5), np.linspace(4, 8, 5))
        vgs, xto = screen.best_point()
        assert vgs == 20.0
        assert xto == 4.0


class TestTransientSweepIntegrators:
    def test_vector_matches_per_lane(self, device):
        vec = transient_sweep(
            device,
            PROGRAM_BIAS,
            [14.0, 16.0],
            duration_s=1e-3,
            n_samples=24,
            integrator="vector",
        )
        per = transient_sweep(
            device,
            PROGRAM_BIAS,
            [14.0, 16.0],
            duration_s=1e-3,
            n_samples=24,
            integrator="per-lane",
        )
        np.testing.assert_allclose(
            vec.final_charge_c, per.final_charge_c, rtol=1e-6
        )
        np.testing.assert_allclose(
            vec.q_equilibrium_c, per.q_equilibrium_c, rtol=1e-12
        )

    def test_rk4_matches_vector(self, device):
        vec = transient_sweep(
            device,
            PROGRAM_BIAS,
            [15.0, 17.0],
            duration_s=1e-3,
            n_samples=24,
            integrator="vector",
        )
        rk4 = transient_sweep(
            device,
            PROGRAM_BIAS,
            [15.0, 17.0],
            duration_s=1e-3,
            n_samples=24,
            integrator="rk4",
        )
        np.testing.assert_allclose(
            rk4.final_charge_c, vec.final_charge_c, rtol=1e-4
        )

    def test_single_voltage_stays_bit_identical(self, device):
        """A one-lane sweep rides the golden-parity scalar path."""
        sweep = transient_sweep(
            device,
            PROGRAM_BIAS,
            [15.0],
            duration_s=1e-3,
            n_samples=24,
        )
        solo = simulate_transient(
            device,
            PROGRAM_BIAS.with_gate_voltage(15.0),
            duration_s=1e-3,
            n_samples=24,
        )
        np.testing.assert_array_equal(
            sweep.results[0].charge_c, solo.charge_c
        )

    def test_unknown_integrator_rejected(self, device):
        with pytest.raises(ConfigurationError):
            transient_sweep(
                device, PROGRAM_BIAS, [15.0], integrator="magic"
            )
