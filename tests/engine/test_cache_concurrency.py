"""Concurrency contract of the ContextVar-scoped cache activation.

The parallel executor's thread-pool mode runs whole worker sessions on
pool threads, so the engine's ``use_caches`` routing must be genuinely
thread-local: one thread activating its session's
:class:`~repro.engine.cache.CacheSet` must never leak entries, counters
or the activation itself into another thread (or into the process-wide
default set). These tests hammer exactly that -- many threads
activating private sets concurrently, with a barrier forcing real
overlap -- and assert per-set counters stay exact and keys stay home.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.engine.cache import (
    CacheSet,
    active_caches,
    default_caches,
    fn_coefficients,
    use_caches,
)

N_THREADS = 8
ROUNDS = 25


def _hammer(thread_id: int, barrier: threading.Barrier) -> "tuple[CacheSet, bool]":
    """One worker: activate a private set and look up thread-unique keys.

    Barrier-synchronised so every thread is inside its ``use_caches``
    block at the same time; returns the set plus whether the active-set
    routing stayed correct throughout.
    """
    caches = CacheSet()
    routed_correctly = True
    with use_caches(caches):
        barrier.wait(timeout=30)
        for round_no in range(ROUNDS):
            # Keys unique to this thread: barrier height encodes the
            # thread id, so any cross-thread leakage is visible as
            # unexpected hit/miss counts in someone else's set.
            fn_coefficients(3.0 + 0.01 * thread_id, 0.4)
            fn_coefficients(3.0 + 0.01 * thread_id, 0.45 + 0.001 * round_no)
            routed_correctly &= active_caches() is caches
    return caches, routed_correctly


class TestContextVarIsolation:
    def test_no_cross_thread_key_leakage(self):
        """Each thread's lookups land only in its own activated set."""
        before = default_caches().stats()
        barrier = threading.Barrier(N_THREADS)
        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            outcomes = list(
                pool.map(
                    _hammer, range(N_THREADS), [barrier] * N_THREADS
                )
            )

        assert all(ok for _, ok in outcomes)
        for caches, _ in outcomes:
            stats = caches.stats()
            # Exactly this thread's unique keys: one repeated key hit
            # (ROUNDS - 1 times) plus ROUNDS distinct second keys.
            assert stats.misses == 1 + ROUNDS
            assert stats.hits == ROUNDS - 1
            assert stats.currsize == 1 + ROUNDS
        # Nothing reached the process-default set.
        after = default_caches().stats().delta(before)
        assert after.hits == 0 and after.misses == 0

    def test_sets_do_not_share_entries(self):
        """The same key computed in two sets is two misses, two entries."""
        first, second = CacheSet(), CacheSet()
        with use_caches(first):
            fn_coefficients(3.61, 0.42)
        with use_caches(second):
            fn_coefficients(3.61, 0.42)
        assert first.stats().misses == 1
        assert second.stats().misses == 1
        assert second.stats().hits == 0

    def test_activation_restores_previous_set_per_thread(self):
        """Nested activations unwind correctly inside a pool thread."""

        def nested() -> bool:
            outer, inner = CacheSet(), CacheSet()
            with use_caches(outer):
                ok = active_caches() is outer
                with use_caches(inner):
                    ok &= active_caches() is inner
                ok &= active_caches() is outer
            return ok and active_caches() is default_caches()

        with ThreadPoolExecutor(max_workers=4) as pool:
            assert all(pool.map(lambda _: nested(), range(16)))
