"""Engine memoization: shared intermediates and their statistics."""

import pytest

from repro.device import PROGRAM_BIAS, FloatingGateTransistor, simulate_transient
from repro.engine import cache_stats, clear_caches
from repro.engine import cache as engine_cache
from repro.tunneling import fn_coefficient_a, fn_coefficient_b


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestFnCoefficients:
    def test_matches_direct_computation(self):
        a, b = engine_cache.fn_coefficients(3.61, 0.42)
        assert a == pytest.approx(fn_coefficient_a(3.61))
        assert b == pytest.approx(fn_coefficient_b(3.61, 0.42))

    def test_second_lookup_hits(self):
        engine_cache.fn_coefficients(3.61, 0.42)
        engine_cache.fn_coefficients(3.61, 0.42)
        stats = cache_stats()
        assert stats.hits == 1
        assert stats.misses == 1


class TestCompiledCellCache:
    def test_identity_on_repeat(self):
        device = FloatingGateTransistor()
        first = engine_cache.compiled_cell(device, PROGRAM_BIAS)
        second = engine_cache.compiled_cell(device, PROGRAM_BIAS)
        assert first is second

    def test_transient_path_shares_the_cache(self):
        # One simulate_transient resolves its cell here for both the
        # ODE right-hand side and the equilibrium solve: exactly one
        # compile (miss), at least one shared lookup (hit).
        device = FloatingGateTransistor()
        simulate_transient(
            device, PROGRAM_BIAS, duration_s=1e-4, n_samples=16
        )
        info = engine_cache.active_caches().compiled_cell.cache_info()
        assert info.misses == 1
        assert info.hits >= 1

    def test_clear_resets_counters(self):
        device = FloatingGateTransistor()
        engine_cache.compiled_cell(device, PROGRAM_BIAS)
        clear_caches()
        stats = cache_stats()
        assert stats.hits == 0
        assert stats.misses == 0
        assert stats.currsize == 0


class TestStats:
    def test_hit_rate_zero_when_untouched(self):
        assert cache_stats().hit_rate == 0.0

    def test_per_cache_breakdown_names(self):
        names = {name for name, _ in cache_stats().per_cache}
        assert names == {"fn_coefficients", "compiled_cell"}


class TestReuseTracking:
    def test_reused_hits_count_only_premarked_entries(self):
        caches = engine_cache.CacheSet()
        caches.fn_coefficients(3.61, 0.42)
        caches.mark()
        caches.fn_coefficients(3.61, 0.42)  # reuse of pre-mark entry
        caches.fn_coefficients(3.10, 0.50)  # new entry
        caches.fn_coefficients(3.10, 0.50)  # own re-hit: not reuse
        assert caches.reused_hits_since_mark() == 1

    def test_key_tracking_is_bounded_by_maxsize(self):
        caches = engine_cache.CacheSet(maxsize=4)
        for i in range(20):
            caches.fn_coefficients(1.0 + 0.1 * i, 0.42)
        assert len(caches._keys["fn_coefficients"]) <= 4

    def test_evicted_marked_key_is_not_counted_as_reuse(self):
        caches = engine_cache.CacheSet(maxsize=2)
        caches.fn_coefficients(1.0, 0.42)
        caches.mark()
        caches.fn_coefficients(2.0, 0.42)
        caches.fn_coefficients(3.0, 0.42)  # evicts the marked 1.0 entry
        caches.fn_coefficients(1.0, 0.42)  # recomputed: a miss, not reuse
        assert caches.reused_hits_since_mark() == 0
