"""Crash-restart chaos: SIGKILL the service, recover from the journal.

The durability acceptance contracts, against a *real* ``repro-service
serve`` subprocess (not an in-process app):

* a service killed with ``SIGKILL`` after accepting a job answers
  ``GET /jobs/{id}`` for it after a restart on the same store and
  journal, re-queues it, and completes it **bit-identical** to a plain
  serial run;
* recovery recomputes only the scenarios the crash lost -- results
  already in the store are served as hits, not recomputed;
* a ``SIGTERM`` shutdown drains, journals the clean-shutdown marker,
  and the next boot reports ``mode == "clean"`` with the finished job
  restored as a full record;
* ``repro-service verify`` passes over the store the crash left behind.

Everything runs with tiny point counts; the suite forks real servers
so it is slower than the unit tests by construction.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import RunPlan, Scenario, SimulationSession, scenario_hash
from repro.io import experiment_result_to_dict
from repro.service import ResultStore, SimulationServiceClient

SEED = 0
PLAN = RunPlan(
    name="restart-chaos",
    scenarios=(
        Scenario("fig6", overrides={"n_points": 6}),
        Scenario("fig7", overrides={"n_points": 6}),
    ),
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _canonical(result) -> str:
    return json.dumps(experiment_result_to_dict(result), sort_keys=True)


def _serve(store: Path, *extra: str) -> "tuple[subprocess.Popen, str, dict]":
    """Launch ``repro-service serve`` on an ephemeral port.

    Returns the process, its base URL, and the parsed recovery report
    it printed on boot. ``-u`` keeps the child's stdout line-buffered
    so the banner is readable through the pipe immediately.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro.service.cli",
            "serve",
            "--store",
            str(store),
            "--port",
            "0",
            "--seed",
            str(SEED),
            "--executor",
            "thread",
            "--workers",
            "1",
            "--lease-ttl",
            "2",
            "--drain-timeout",
            "10",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    # A plain reader thread: select() on a *buffered* text stream
    # deadlocks once readline() slurps several lines in one chunk
    # (the fd goes quiet while lines sit in the Python buffer).
    lines: "queue.Queue[str]" = queue.Queue()
    threading.Thread(
        target=lambda: [lines.put(line) for line in proc.stdout],
        daemon=True,
    ).start()
    url = ""
    recovery: dict = {}
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        try:
            line = lines.get(timeout=deadline - time.monotonic())
        except (queue.Empty, ValueError):
            break
        if line.startswith("repro-service listening on "):
            url = line.split(" on ", 1)[1].strip()
        elif line.startswith("recovery: "):
            recovery = json.loads(line.split(": ", 1)[1])
            break
    if not url or not recovery:
        proc.kill()
        proc.wait(timeout=10)
        pytest.fail(f"service did not boot (url={url!r}, rec={recovery!r})")
    return proc, url, recovery


def _client(url: str) -> SimulationServiceClient:
    return SimulationServiceClient(url, retries=5, backoff_s=0.1)


@pytest.fixture(scope="module")
def serial():
    return SimulationSession(seed=SEED).run_plan(PLAN)


class TestKillNineRecovery:
    def test_sigkill_mid_job_recovers_requeues_and_matches_serial(
        self, tmp_path, serial
    ):
        """The headline contract: kill -9 loses no accepted work."""
        store_dir = tmp_path / "store"
        # Pre-seed one of the two scenarios so recovery has something
        # to serve from the store and something to recompute.
        session = SimulationSession(seed=SEED)
        seeded_hash = scenario_hash(
            PLAN.scenarios[0], defaults=session.defaults
        )
        ResultStore(store_dir).put(seeded_hash, serial.scenario_results[0])

        proc, url, recovery = _serve(store_dir)
        try:
            assert recovery["mode"] == "fresh"
            accepted = _client(url).submit(PLAN)
            assert accepted.id == "job-1"
        finally:
            # The accepted entry is fsynced before the 202, so the
            # promise survives an immediate SIGKILL.
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        proc, url, recovery = _serve(store_dir)
        try:
            client = _client(url)
            assert recovery["mode"] == "crash"
            assert recovery["requeued"] + recovery["restored"] >= 1
            # The restarted service still knows the job -- no 404.
            record = client.wait(
                "job-1", timeout_s=120, plan_hash=accepted.plan_hash
            )
            assert record.status == "done"
            assert record.plan_hash == accepted.plan_hash
            # Only the scenario the crash lost was recomputed; the
            # pre-seeded one rode the store (unless the first life
            # finished it before dying, in which case both are hits).
            assert record.store_hits >= 1
            assert record.store_hits + record.computed == 2
            # Bit-identical to the serial reference, scenario by
            # scenario, through the store round trip.
            store = ResultStore(store_dir)
            for hash_, ref in zip(
                record.scenario_hashes, serial.scenario_results
            ):
                got = store.get(hash_)
                assert got is not None
                assert _canonical(got.result) == _canonical(ref.result)
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0

    def test_verify_cli_passes_over_the_crashed_store(self, tmp_path):
        store_dir = tmp_path / "store"
        proc, url, _ = _serve(store_dir)
        try:
            _client(url).run_plan(PLAN, timeout_s=120)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        done = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.service.cli",
                "verify",
                "--store",
                str(store_dir),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert done.returncode == 0, done.stdout + done.stderr
        report = json.loads(done.stdout)
        assert report["ok"] is True
        assert report["scanned"] == 2


class TestCleanShutdown:
    def test_sigterm_drains_and_next_boot_is_clean(self, tmp_path):
        store_dir = tmp_path / "store"
        proc, url, _ = _serve(store_dir)
        try:
            _, record = _client(url).run_plan(PLAN, timeout_s=120)
            assert record.status == "done"
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0

        proc, url, recovery = _serve(store_dir)
        try:
            assert recovery["mode"] == "clean"
            assert recovery["restored"] >= 1
            # The finished job answers across the restart, as a full
            # terminal record -- not a 404, not a recompute.
            revived = _client(url).job(record.id)
            assert revived.status == "done"
            assert revived.scenario_hashes == record.scenario_hashes
            stats = _client(url).stats()
            assert stats["recovery"]["mode"] == "clean"
            assert stats["jobs"]["jobs_restored"] >= 1
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
