"""Worker-death chaos: process pools, ``os._exit``, service salvage.

The acceptance contracts of the supervised executor under *real*
crashes:

* a worker killed mid-plan is retried on a rebuilt pool and the run
  completes **bit-identical** to the serial reference;
* a poison scenario that keeps killing its worker is isolated by the
  split-on-last-retry policy -- its shard-mates are salvaged;
* persistent pool breakage degrades process -> thread, where the crash
  fault is downgraded to an ordinary (retryable) error by design;
* a service job that fails mid-plan persists its completed scenarios,
  so resubmitting the same plan resumes from store hits and recomputes
  only what was lost.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    RunPlan,
    Scenario,
    SimulationSession,
    run_plan_parallel,
)
from repro.io import experiment_result_to_dict
from repro.service import (
    ResultStore,
    ServiceApp,
    ServiceThread,
    SimulationServiceClient,
)
from repro.testing import FaultSpec, faults_installed

# Round-robin over two workers: shard 0 gets positions (0, 2), shard 1
# gets (1,). Tiny point counts -- each fork costs more than the maths.
PLAN = RunPlan(
    name="chaos-suite",
    scenarios=(
        Scenario("fig6", overrides={"n_points": 5},
                 sweep={"temperature_k": [300.0, 400.0]}),
        Scenario("abl-temp", overrides={"n_points": 4}),
    ),
)
SEED = 3


def _canonical(result) -> str:
    return json.dumps(experiment_result_to_dict(result), sort_keys=True)


@pytest.fixture(scope="module")
def serial():
    return SimulationSession(seed=SEED).run_plan(PLAN)


class TestProcessPoolRecovery:
    def test_killed_worker_completes_bit_identical_to_serial(self, serial):
        """The headline contract: one os._exit costs nothing but time."""
        with faults_installed(FaultSpec(kind="crash", shard=0, attempt=0)):
            outcome = run_plan_parallel(
                PLAN, workers=2, executor="process", seed=SEED
            )
        assert outcome.complete
        for ours, theirs in zip(
            serial.scenario_results, outcome.scenario_results
        ):
            assert _canonical(ours.result) == _canonical(theirs.result)

    def test_poison_crash_is_isolated_and_mates_salvaged(self, serial):
        """One genuine mid-shard kill plus a persistent failure at the
        same position: the split isolates it, everything else survives.

        The crash fires once (attempt 0) so exactly one pool breaks;
        later attempts fail with a plain raise, which keeps the retry
        accounting deterministic on a busy pool.
        """
        with faults_installed(
            FaultSpec(kind="crash", attempt=0, position=2),
            FaultSpec(kind="raise", position=2),
        ):
            outcome = run_plan_parallel(
                PLAN,
                workers=2,
                executor="process",
                seed=SEED,
                max_shard_retries=2,
                raise_on_failure=False,
            )
        assert outcome.failed_positions == (2,)
        salvaged = outcome.results_by_position()
        assert sorted(salvaged) == [0, 1]
        for position, scenario_result in salvaged.items():
            assert _canonical(scenario_result.result) == _canonical(
                serial.scenario_results[position].result
            )
        (failure,) = outcome.failures
        assert failure.index == 0
        assert failure.attempts == 3

    def test_persistent_crash_degrades_to_thread_mode(self):
        """A shard whose worker always dies eventually runs on threads,
        where the crash downgrades to a raise and exhausts cleanly."""
        plan = RunPlan(
            scenarios=(Scenario("abl-temp", overrides={"n_points": 4}),)
        )
        # timeout_s defeats the single-shard inline shortcut so the run
        # genuinely starts on a process pool.
        with faults_installed(FaultSpec(kind="crash")):
            outcome = run_plan_parallel(
                plan,
                workers=1,
                executor="process",
                seed=SEED,
                timeout_s=60.0,
                max_shard_retries=3,
                raise_on_failure=False,
            )
        assert not outcome.complete
        (failure,) = outcome.failures
        assert failure.attempts == 4
        # The final attempts ran off the process pool: the fault module
        # refused to os._exit there and raised instead.
        assert "downgraded" in failure.message
        assert outcome.scenario_results == ()


class TestServiceSalvageAndResume:
    def test_failed_job_persists_survivors_for_resubmission(self, tmp_path):
        """Mid-plan failure -> partial store -> resubmission resumes.

        Thread executor keeps the service test cheap and deterministic;
        the genuine-crash recovery above covers the process path.
        """
        plan = RunPlan(
            name="salvage",
            scenarios=(
                Scenario("fig6", overrides={"n_points": 5}),
                Scenario("fig7", overrides={"n_points": 5}),
            ),
        )
        app = ServiceApp(
            ResultStore(tmp_path / "store"),
            workers=2,
            executor="thread",
            max_shard_retries=0,
        )
        with ServiceThread(app) as service:
            client = SimulationServiceClient(
                service.url, retries=3, backoff_s=0.01
            )
            # Position 1 (fig7's shard) fails every attempt.
            with faults_installed(FaultSpec(kind="raise", position=1)):
                accepted = client.submit(plan)
                failed = client.wait(accepted.id, timeout_s=60.0)
            assert failed.status == "failed"
            assert "1 of 2 scenarios failed" in failed.error
            # The survivor was persisted despite the job failing.
            assert len(app.store) == 1

            # Resubmission resumes from the store: one hit, one fresh
            # compute, nothing recomputed twice.
            resubmitted = client.submit(plan)
            final = client.wait(resubmitted.id, timeout_s=60.0)
            assert final.status == "done"
            assert final.store_hits == 1
            assert final.computed == 1
            assert len(app.store) == 2
