"""Chaos tests: genuine worker death on real process pools.

Unlike ``tests/api/test_supervisor.py`` (thread pools, in-process
faults), everything here forks real worker processes and kills them
with ``os._exit`` mid-plan, so the supervisor's ``BrokenProcessPool``
recovery, pool rebuild, and executor degradation run against the real
thing. The suite is slower than the unit tests by construction; CI
runs it in the non-blocking ``chaos-smoke`` job.
"""
