"""Parity of the batched eq. (2) network builder vs the scalar path."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.electrostatics import (
    build_capacitances,
    build_capacitances_batch,
)
from repro.materials.oxides import SI3N4, SIO2

RTOL = 1e-9


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_scalar_lanes(self, seed):
        rng = np.random.default_rng(seed)
        n_lanes = int(rng.integers(1, 9))
        xto = rng.uniform(3e-9, 7e-9, size=n_lanes)
        xco = xto + rng.uniform(1e-9, 6e-9, size=n_lanes)
        area = rng.uniform(1e-15, 1e-13, size=n_lanes)
        batch = build_capacitances_batch(SI3N4, SIO2, xco, xto, area)
        assert batch.n_lanes == n_lanes
        for i in range(n_lanes):
            scalar = build_capacitances(
                SI3N4, SIO2, float(xco[i]), float(xto[i]), float(area[i])
            )
            lane = batch.lane(i)
            for name in ("cfc", "cfs", "cfb", "cfd"):
                assert getattr(lane, name) == pytest.approx(
                    getattr(scalar, name), rel=RTOL
                )
            assert batch.total[i] == pytest.approx(scalar.total, rel=RTOL)
            assert batch.gate_coupling_ratio[i] == pytest.approx(
                scalar.gate_coupling_ratio, rel=RTOL
            )
            assert batch.drain_coupling_ratio[i] == pytest.approx(
                scalar.drain_coupling_ratio, rel=RTOL
            )

    def test_scalar_area_broadcasts(self):
        xto = np.array([4e-9, 5e-9])
        batch = build_capacitances_batch(
            SIO2, SIO2, xto + 3e-9, xto, 1e-14
        )
        assert batch.n_lanes == 2


class TestValidation:
    def test_thin_control_oxide_rejected_anywhere_in_batch(self):
        with pytest.raises(ConfigurationError):
            build_capacitances_batch(
                SIO2, SIO2,
                np.array([8e-9, 4e-9]),
                np.array([5e-9, 5e-9]),
                1e-14,
            )

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            build_capacitances_batch(
                SIO2, SIO2, np.array([]), np.array([]), np.array([])
            )
