"""The eq. (2) capacitive network."""

import pytest

from repro.electrostatics import FloatingGateCapacitances, build_capacitances
from repro.errors import ConfigurationError
from repro.materials import HFO2, SIO2
from repro.units import nm_to_m


@pytest.fixture()
def network():
    return build_capacitances(
        SIO2, SIO2, nm_to_m(8.0), nm_to_m(5.0), (100e-9) ** 2
    )


class TestEquationTwo:
    def test_total_is_sum_of_four(self, network):
        assert network.total == pytest.approx(
            network.cfc + network.cfs + network.cfb + network.cfd
        )

    def test_coupling_ratios_sum_below_one(self, network):
        total_ratio = (
            network.gate_coupling_ratio
            + network.drain_coupling_ratio
            + network.source_coupling_ratio
            + network.cfb / network.total
        )
        assert total_ratio == pytest.approx(1.0)

    def test_paper_default_gcr(self, network):
        """The default stack realises the paper's GCR = 0.6."""
        assert network.gate_coupling_ratio == pytest.approx(0.6, abs=1e-9)


class TestScaling:
    def test_scaled_to_gcr_hits_target(self, network):
        for target in (0.4, 0.5, 0.7):
            scaled = network.scaled_to_gcr(target)
            assert scaled.gate_coupling_ratio == pytest.approx(target)

    def test_scaling_preserves_other_caps(self, network):
        scaled = network.scaled_to_gcr(0.45)
        assert scaled.cfb == network.cfb
        assert scaled.cfs == network.cfs
        assert scaled.cfd == network.cfd

    def test_rejects_degenerate_gcr(self, network):
        with pytest.raises(ConfigurationError):
            network.scaled_to_gcr(0.0)
        with pytest.raises(ConfigurationError):
            network.scaled_to_gcr(1.0)


class TestLayeredBuilder:
    def test_ono_control_raises_gcr_at_same_thickness(self, network):
        from repro.electrostatics import build_capacitances_layered
        from repro.materials import LayeredDielectric

        ono = LayeredDielectric.ono(nm_to_m(2.0), nm_to_m(4.0), nm_to_m(2.0))
        layered = build_capacitances_layered(
            ono, SIO2, nm_to_m(5.0), (100e-9) ** 2
        )
        assert (
            layered.gate_coupling_ratio > network.gate_coupling_ratio
        )

    def test_single_layer_stack_matches_plain_builder(self, network):
        from repro.electrostatics import build_capacitances_layered
        from repro.materials import LayeredDielectric

        stack = LayeredDielectric.single(SIO2, nm_to_m(8.0))
        layered = build_capacitances_layered(
            stack, SIO2, nm_to_m(5.0), (100e-9) ** 2
        )
        assert layered.cfc == pytest.approx(network.cfc, rel=1e-12)
        assert layered.gate_coupling_ratio == pytest.approx(
            network.gate_coupling_ratio
        )

    def test_rejects_thin_control_stack(self):
        from repro.electrostatics import build_capacitances_layered
        from repro.materials import LayeredDielectric

        thin = LayeredDielectric.single(SIO2, nm_to_m(4.0))
        with pytest.raises(ConfigurationError):
            build_capacitances_layered(
                thin, SIO2, nm_to_m(5.0), 1e-14
            )


class TestBuilder:
    def test_high_k_control_oxide_raises_gcr(self):
        sio2_stack = build_capacitances(
            SIO2, SIO2, nm_to_m(8.0), nm_to_m(5.0), 1e-14
        )
        hfo2_stack = build_capacitances(
            HFO2, SIO2, nm_to_m(8.0), nm_to_m(5.0), 1e-14
        )
        assert (
            hfo2_stack.gate_coupling_ratio > sio2_stack.gate_coupling_ratio
        )

    def test_bigger_wrap_area_raises_gcr(self):
        small = build_capacitances(
            SIO2, SIO2, nm_to_m(8.0), nm_to_m(5.0), 1e-14,
            control_gate_area_multiplier=1.0,
        )
        big = build_capacitances(
            SIO2, SIO2, nm_to_m(8.0), nm_to_m(5.0), 1e-14,
            control_gate_area_multiplier=5.0,
        )
        assert big.gate_coupling_ratio > small.gate_coupling_ratio

    def test_rejects_control_thinner_than_tunnel(self):
        """Paper Section III: the control oxide is always thicker."""
        with pytest.raises(ConfigurationError):
            build_capacitances(
                SIO2, SIO2, nm_to_m(4.0), nm_to_m(5.0), 1e-14
            )

    def test_rejects_nonpositive_capacitance(self):
        with pytest.raises(ConfigurationError):
            FloatingGateCapacitances(cfc=0.0, cfs=1.0, cfb=1.0, cfd=1.0)
