"""Parity of the batched channel-well solver vs the scalar reference.

Randomized surface fields and sheet densities: every lane of
``solve_channel_well_batch`` must replay the scalar
``solve_channel_well`` trajectory -- same iteration count, same
subband energies, densities and potential profile at <= 1e-9.
"""

import numpy as np
import pytest

from repro.engine import channel_well_sweep
from repro.errors import ConfigurationError
from repro.electrostatics import (
    solve_channel_well,
    solve_channel_well_batch,
)

RTOL = 1e-9


def _assert_lane_matches(batch, i, scalar):
    assert int(batch.iterations[i]) == scalar.iterations
    np.testing.assert_allclose(
        batch.subband_energies_ev[i],
        scalar.subband_energies_ev,
        rtol=RTOL,
    )
    np.testing.assert_allclose(
        batch.subband_densities_m2[i],
        scalar.subband_densities_m2,
        rtol=RTOL,
    )
    np.testing.assert_allclose(
        batch.potential_ev[i],
        scalar.potential_ev,
        rtol=RTOL,
        atol=1e-12 * float(np.max(np.abs(scalar.potential_ev))),
    )


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_scalar_lanes(self, seed):
        rng = np.random.default_rng(seed)
        n_lanes = int(rng.integers(2, 6))
        fields = rng.uniform(2e8, 1e9, size=n_lanes)
        sheet = float(rng.uniform(5e15, 8e16))
        batch = solve_channel_well_batch(
            fields, sheet, n_nodes=121, n_subbands=3
        )
        assert batch.n_lanes == n_lanes
        for i, field in enumerate(fields):
            scalar = solve_channel_well(
                float(field), sheet, n_nodes=121, n_subbands=3
            )
            _assert_lane_matches(batch, i, scalar)

    def test_per_lane_sheet_densities(self):
        fields = np.array([4e8, 4e8, 7e8])
        sheets = np.array([1e16, 4e16, 2e16])
        batch = solve_channel_well_batch(
            fields, sheets, n_nodes=121, n_subbands=3
        )
        np.testing.assert_allclose(
            batch.total_sheet_density_m2, sheets, rtol=1e-6
        )
        for i in range(3):
            scalar = solve_channel_well(
                float(fields[i]), float(sheets[i]), n_nodes=121, n_subbands=3
            )
            _assert_lane_matches(batch, i, scalar)

    def test_single_lane_matches_scalar(self):
        batch = solve_channel_well_batch(
            np.array([5e8]), 1e16, n_nodes=151
        )
        scalar = solve_channel_well(5e8, 1e16, n_nodes=151)
        _assert_lane_matches(batch, 0, scalar)
        lane = batch.lane(0)
        assert lane.iterations == scalar.iterations
        np.testing.assert_allclose(
            lane.subband_energies_ev, scalar.subband_energies_ev, rtol=RTOL
        )
        assert lane.ground_state_ev == pytest.approx(
            scalar.ground_state_ev, rel=RTOL
        )

    def test_ground_state_rises_with_field(self):
        fields = np.linspace(3e8, 9e8, 5)
        batch = solve_channel_well_batch(fields, 1e16, n_nodes=121)
        assert np.all(np.diff(batch.ground_state_ev) > 0.0)


class TestEngineEntryPoint:
    def test_channel_well_sweep_forwards(self):
        fields = np.array([4e8, 6e8])
        via_engine = channel_well_sweep(fields, 1e16, n_nodes=121)
        direct = solve_channel_well_batch(fields, 1e16, n_nodes=121)
        np.testing.assert_array_equal(
            via_engine.subband_energies_ev, direct.subband_energies_ev
        )


class TestValidation:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            solve_channel_well_batch(np.array([]), 1e16)
        with pytest.raises(ConfigurationError):
            solve_channel_well_batch(np.array([0.0, 5e8]), 1e16)
        with pytest.raises(ConfigurationError):
            solve_channel_well_batch(np.array([5e8]), -1.0)
