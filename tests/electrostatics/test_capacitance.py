"""Elementary capacitance formulas."""

import pytest

from repro.constants import VACUUM_PERMITTIVITY
from repro.electrostatics import (
    capacitance_per_area,
    fringe_factor,
    parallel,
    parallel_plate_capacitance,
    series,
)
from repro.errors import ConfigurationError
from repro.units import nm_to_m


class TestParallelPlate:
    def test_textbook_value(self):
        c = parallel_plate_capacitance(3.9, 1e-12, nm_to_m(5.0))
        assert c == pytest.approx(
            3.9 * VACUUM_PERMITTIVITY * 1e-12 / 5e-9
        )

    def test_inverse_in_thickness(self):
        c5 = parallel_plate_capacitance(3.9, 1e-12, nm_to_m(5.0))
        c10 = parallel_plate_capacitance(3.9, 1e-12, nm_to_m(10.0))
        assert c5 == pytest.approx(2.0 * c10)

    def test_per_area_consistent(self):
        area = 2e-14
        assert capacitance_per_area(3.9, nm_to_m(8.0)) * area == pytest.approx(
            parallel_plate_capacitance(3.9, area, nm_to_m(8.0))
        )

    @pytest.mark.parametrize("bad", [(-1.0, 1.0, 1.0), (1.0, 0.0, 1.0), (1.0, 1.0, 0.0)])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ConfigurationError):
            parallel_plate_capacitance(*bad)


class TestCombinations:
    def test_series_of_equal_halves(self):
        assert series(2.0, 2.0) == pytest.approx(1.0)

    def test_series_dominated_by_smallest(self):
        assert series(1e-15, 1e-9) == pytest.approx(1e-15, rel=1e-5)

    def test_parallel_sums(self):
        assert parallel(1.0, 2.0, 3.0) == pytest.approx(6.0)

    def test_series_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            series(1.0, 0.0)

    def test_empty_combinations_rejected(self):
        with pytest.raises(ConfigurationError):
            series()
        with pytest.raises(ConfigurationError):
            parallel()


class TestFringe:
    def test_factor_exceeds_one(self):
        assert fringe_factor(nm_to_m(8.0), nm_to_m(60.0)) > 1.0

    def test_wide_plate_limit(self):
        near_ideal = fringe_factor(nm_to_m(1.0), 1e-3)
        assert near_ideal == pytest.approx(1.0, abs=1e-3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            fringe_factor(0.0, 1.0)
