"""Self-consistent Poisson-Schrodinger channel solver."""

import numpy as np
import pytest

from repro.electrostatics import (
    solve_channel_well,
    triangular_well_levels_ev,
)
from repro.errors import ConfigurationError


class TestTriangularWellReference:
    def test_airy_scaling_two_thirds_power(self):
        e1 = triangular_well_levels_ev(1e8, 0.26, 1)[0]
        e2 = triangular_well_levels_ev(8e8, 0.26, 1)[0]
        assert e2 / e1 == pytest.approx(8.0 ** (2.0 / 3.0), rel=1e-9)

    def test_level_ordering(self):
        levels = triangular_well_levels_ev(5e8, 0.26, 4)
        assert np.all(np.diff(levels) > 0.0)

    def test_rejects_too_many_levels(self):
        with pytest.raises(ConfigurationError):
            triangular_well_levels_ev(5e8, 0.26, 9)

    def test_rejects_nonpositive_field(self):
        with pytest.raises(ConfigurationError):
            triangular_well_levels_ev(0.0, 0.26)


class TestSelfConsistentSolver:
    @pytest.fixture(scope="class")
    def solution(self):
        return solve_channel_well(
            surface_field_v_per_m=5e8,
            sheet_density_m2=1e16,
            n_nodes=201,
            max_iterations=200,
        )

    def test_converges(self, solution):
        assert solution.iterations < 200

    def test_holds_requested_sheet_density(self, solution):
        assert solution.total_sheet_density_m2 == pytest.approx(
            1e16, rel=1e-3
        )

    def test_subbands_ordered(self, solution):
        assert np.all(np.diff(solution.subband_energies_ev) > 0.0)

    def test_ground_state_near_bare_triangular_level(self, solution):
        """With a light sheet charge the ground state stays within ~20%
        of the bare triangular-well Airy level."""
        bare = triangular_well_levels_ev(5e8, 0.26, 1)[0]
        assert solution.ground_state_ev == pytest.approx(bare, rel=0.2)

    def test_ground_subband_most_occupied(self, solution):
        densities = solution.subband_densities_m2
        assert densities[0] == max(densities)

    def test_screening_raises_levels(self):
        """More channel charge screens the field and shifts subbands up
        relative to the lightly loaded well."""
        light = solve_channel_well(5e8, 1e15, n_nodes=151)
        heavy = solve_channel_well(5e8, 3e16, n_nodes=151)
        assert (
            heavy.subband_energies_ev[0] > light.subband_energies_ev[0]
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            solve_channel_well(0.0, 1e16)
        with pytest.raises(ConfigurationError):
            solve_channel_well(5e8, -1.0)
