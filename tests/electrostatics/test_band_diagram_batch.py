"""Parity of the batched band-diagram assembly vs the scalar builder."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.electrostatics import (
    build_band_diagram,
    build_band_diagram_batch,
)
from repro.materials.oxides import SI3N4, SIO2
from repro.units import nm_to_m

RTOL = 1e-9

GEOMETRY = dict(
    tunnel_thickness_m=nm_to_m(5.0),
    control_thickness_m=nm_to_m(8.0),
    floating_gate_thickness_m=nm_to_m(3.0),
    channel_barrier_ev=3.61,
    gate_barrier_ev=3.8,
)


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_scalar_lanes(self, seed):
        rng = np.random.default_rng(seed)
        n_lanes = int(rng.integers(1, 8))
        vfg = rng.uniform(-8.0, 8.0, size=n_lanes)
        vcg = rng.uniform(-15.0, 15.0, size=n_lanes)
        batch = build_band_diagram_batch(
            SIO2, SI3N4, floating_gate_voltages_v=vfg,
            control_gate_voltages_v=vcg, **GEOMETRY
        )
        assert batch.n_lanes == n_lanes
        peaks = batch.barrier_peak_ev()
        distances = batch.tunnel_distance_at_fermi_m()
        for i in range(n_lanes):
            scalar = build_band_diagram(
                SIO2, SI3N4, floating_gate_voltage_v=float(vfg[i]),
                control_gate_voltage_v=float(vcg[i]), **GEOMETRY
            )
            np.testing.assert_allclose(batch.x_m, scalar.x_m, rtol=RTOL)
            np.testing.assert_allclose(
                batch.conduction_band_ev[i],
                scalar.conduction_band_ev,
                rtol=RTOL,
                atol=1e-12,
            )
            assert batch.region_labels == scalar.region_labels
            assert peaks[i] == pytest.approx(
                scalar.barrier_peak_ev(), rel=RTOL
            )
            assert distances[i] == pytest.approx(
                scalar.tunnel_distance_at_fermi_m(), rel=1e-6, abs=1e-15
            )
            lane = batch.lane(i)
            np.testing.assert_array_equal(
                lane.conduction_band_ev, batch.conduction_band_ev[i]
            )

    def test_scalar_vfg_broadcasts_against_vcg(self):
        vcg = np.linspace(5.0, 15.0, 4)
        batch = build_band_diagram_batch(
            SIO2, SIO2, floating_gate_voltages_v=6.0,
            control_gate_voltages_v=vcg, **GEOMETRY
        )
        assert batch.n_lanes == 4


class TestValidation:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            build_band_diagram_batch(
                SIO2, SIO2,
                tunnel_thickness_m=0.0,
                control_thickness_m=nm_to_m(8.0),
                floating_gate_thickness_m=nm_to_m(3.0),
                channel_barrier_ev=3.61,
                gate_barrier_ev=3.8,
                floating_gate_voltages_v=np.array([1.0]),
                control_gate_voltages_v=np.array([2.0]),
            )
        with pytest.raises(ConfigurationError):
            build_band_diagram_batch(
                SIO2, SIO2,
                floating_gate_voltages_v=np.array([]),
                control_gate_voltages_v=np.array([]),
                **GEOMETRY,
            )
