"""Floating-gate potential (paper eq. (3))."""

import pytest

from repro.electrostatics import (
    TerminalVoltages,
    build_capacitances,
    charge_for_floating_gate_voltage,
    floating_gate_voltage,
    floating_gate_voltage_simple,
    threshold_shift_v,
)
from repro.errors import ConfigurationError
from repro.materials import SIO2
from repro.units import nm_to_m


@pytest.fixture()
def network():
    return build_capacitances(
        SIO2, SIO2, nm_to_m(8.0), nm_to_m(5.0), (100e-9) ** 2
    )


class TestEquationThree:
    def test_paper_headline_number(self, network):
        """VGS = 15 V, GCR = 0.6, Q = 0 -> V_FG = 9 V (paper Section III)."""
        vfg = floating_gate_voltage(
            network, TerminalVoltages(vgs=15.0), charge_c=0.0
        )
        assert vfg == pytest.approx(9.0, abs=1e-9)

    def test_simple_form_matches_full_form_when_grounded(self, network):
        gcr = network.gate_coupling_ratio
        for vgs in (-15.0, 8.0, 17.0):
            assert floating_gate_voltage(
                network, TerminalVoltages(vgs=vgs)
            ) == pytest.approx(floating_gate_voltage_simple(gcr, vgs))

    def test_stored_electrons_lower_vfg(self, network):
        q = -1e-16  # electrons
        with_charge = floating_gate_voltage(
            network, TerminalVoltages(vgs=15.0), q
        )
        without = floating_gate_voltage(network, TerminalVoltages(vgs=15.0))
        assert with_charge < without
        assert without - with_charge == pytest.approx(
            -q / network.total
        )

    def test_drain_coupling_term(self, network):
        """Nonzero V_DS adds C_FD * V_DS / C_T."""
        base = floating_gate_voltage(network, TerminalVoltages(vgs=10.0))
        with_vds = floating_gate_voltage(
            network, TerminalVoltages(vgs=10.0, vds=1.0)
        )
        assert with_vds - base == pytest.approx(
            network.cfd / network.total
        )

    def test_charge_inversion_round_trip(self, network):
        voltages = TerminalVoltages(vgs=15.0)
        q = charge_for_floating_gate_voltage(network, voltages, 7.5)
        assert floating_gate_voltage(network, voltages, q) == pytest.approx(
            7.5
        )


class TestSimpleForm:
    def test_charge_term(self):
        vfg = floating_gate_voltage_simple(
            0.6, 15.0, charge_c=-1e-16, c_total_f=1e-16
        )
        assert vfg == pytest.approx(9.0 - 1.0)

    def test_requires_ct_with_charge(self):
        with pytest.raises(ConfigurationError):
            floating_gate_voltage_simple(0.6, 15.0, charge_c=1e-16)

    def test_rejects_bad_gcr(self):
        with pytest.raises(ConfigurationError):
            floating_gate_voltage_simple(1.2, 15.0)


class TestThresholdShift:
    def test_electrons_raise_threshold(self):
        assert threshold_shift_v(-1e-16, 1e-16) == pytest.approx(1.0)

    def test_depletion_lowers_threshold(self):
        assert threshold_shift_v(+1e-16, 1e-16) == pytest.approx(-1.0)

    def test_rejects_nonpositive_cfc(self):
        with pytest.raises(ConfigurationError):
            threshold_shift_v(1e-16, 0.0)
