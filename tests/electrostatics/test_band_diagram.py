"""Band diagrams of the biased gate stack (paper Figure 2 physics)."""

import numpy as np
import pytest

from repro.electrostatics import (
    build_band_diagram,
    oxide_fields_v_per_m,
    stored_charge_sheet_density,
)
from repro.errors import ConfigurationError
from repro.materials import SIO2
from repro.units import nm_to_m


def paper_diagram(vfg=9.0, vgs=15.0):
    return build_band_diagram(
        tunnel_dielectric=SIO2,
        control_dielectric=SIO2,
        tunnel_thickness_m=nm_to_m(5.0),
        control_thickness_m=nm_to_m(8.0),
        floating_gate_thickness_m=nm_to_m(2.0),
        channel_barrier_ev=3.61,
        gate_barrier_ev=3.61,
        floating_gate_voltage_v=vfg,
        control_gate_voltage_v=vgs,
    )


class TestTriangularBarrier:
    def test_band_starts_at_barrier_height(self):
        d = paper_diagram()
        assert d.conduction_band_ev[0] == pytest.approx(3.61)

    def test_band_linear_in_tunnel_oxide(self):
        d = paper_diagram()
        mask = [lbl == "tunnel_oxide" for lbl in d.region_labels]
        x = d.x_m[mask]
        y = d.conduction_band_ev[mask]
        slope = np.diff(y) / np.diff(x)
        assert np.allclose(slope, slope[0], rtol=1e-9)
        # Slope = -E = -(9 V / 5 nm) per metre (in eV/m, sign down).
        assert slope[0] == pytest.approx(-9.0 / nm_to_m(5.0), rel=1e-9)

    def test_apparent_thinning_at_high_field(self):
        """Paper: band bending results in 'apparent thinning' -- the
        forbidden distance at E=0 is phi_B/E_ox < X_TO."""
        d = paper_diagram()
        expected = 3.61 / (9.0 / nm_to_m(5.0))
        assert d.tunnel_distance_at_fermi_m() == pytest.approx(
            expected, rel=0.05
        )

    def test_no_bias_keeps_full_thickness(self):
        d = paper_diagram(vfg=0.0, vgs=0.0)
        assert d.tunnel_distance_at_fermi_m() >= nm_to_m(5.0)

    def test_floating_gate_region_flat(self):
        d = paper_diagram()
        mask = [lbl == "floating_gate" for lbl in d.region_labels]
        y = d.conduction_band_ev[mask]
        assert np.allclose(y, y[0])

    def test_barrier_peak_at_channel_interface(self):
        d = paper_diagram()
        assert d.barrier_peak_ev() == pytest.approx(3.61)


class TestOxideFields:
    def test_paper_fields(self):
        e_to, e_co = oxide_fields_v_per_m(
            nm_to_m(5.0), nm_to_m(8.0), 9.0, 15.0
        )
        assert e_to == pytest.approx(1.8e9)
        assert e_co == pytest.approx(0.75e9)

    def test_tunnel_field_dominates_for_paper_geometry(self):
        """Jin >> Jout requires E_TO > E_CO; guaranteed by X_CO > X_TO
        and V_FG > V_GS - V_FG at the paper's operating point."""
        e_to, e_co = oxide_fields_v_per_m(
            nm_to_m(5.0), nm_to_m(8.0), 9.0, 15.0
        )
        assert e_to > 2.0 * e_co

    def test_erase_reverses_both_fields(self):
        e_to, e_co = oxide_fields_v_per_m(
            nm_to_m(5.0), nm_to_m(8.0), -9.0, -15.0
        )
        assert e_to < 0.0 and e_co < 0.0


class TestReporting:
    def test_sheet_density_conversion(self):
        from repro.constants import ELEMENTARY_CHARGE

        q = -1000 * ELEMENTARY_CHARGE
        density = stored_charge_sheet_density(q, 1e-14)  # 1000 e over 1e-14 m^2
        assert density == pytest.approx(1000 / 1e-14 * 1e-4)

    def test_rejects_bad_area(self):
        with pytest.raises(ConfigurationError):
            stored_charge_sheet_density(1e-16, 0.0)

    def test_rejects_bad_thicknesses(self):
        with pytest.raises(ConfigurationError):
            build_band_diagram(
                SIO2, SIO2, 0.0, nm_to_m(8.0), nm_to_m(2.0),
                3.6, 3.6, 9.0, 15.0,
            )
