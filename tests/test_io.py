"""JSON configuration serialization."""

import pytest

from repro.device import FloatingGateTransistor, PROGRAM_BIAS
from repro.device.geometry import DeviceGeometry
from repro.errors import ConfigurationError
from repro.io import (
    design_point_from_dict,
    design_point_to_dict,
    device_from_dict,
    device_to_dict,
    experiment_result_to_dict,
    geometry_from_dict,
    geometry_to_dict,
    load_json,
    save_json,
)
from repro.optimization import DesignPoint
from repro.units import nm_to_m


class TestGeometryRoundTrip:
    def test_default_round_trip(self):
        g = DeviceGeometry()
        assert geometry_from_dict(geometry_to_dict(g)) == g

    def test_custom_round_trip(self):
        g = DeviceGeometry(
            tunnel_oxide_thickness_m=nm_to_m(6.0),
            control_oxide_thickness_m=nm_to_m(10.0),
            control_gate_area_multiplier=2.5,
        )
        assert geometry_from_dict(geometry_to_dict(g)) == g

    def test_validation_reapplied_on_load(self):
        record = geometry_to_dict(DeviceGeometry())
        record["tunnel_oxide_thickness_m"] = 1e-8  # > control oxide
        with pytest.raises(ConfigurationError):
            geometry_from_dict(record)


class TestDeviceRoundTrip:
    def test_default_device(self):
        device = FloatingGateTransistor()
        restored = device_from_dict(device_to_dict(device))
        assert restored == device

    def test_restored_device_behaves_identically(self):
        device = FloatingGateTransistor()
        restored = device_from_dict(device_to_dict(device))
        assert restored.floating_gate_voltage(
            PROGRAM_BIAS
        ) == pytest.approx(device.floating_gate_voltage(PROGRAM_BIAS))
        assert restored.gate_coupling_ratio == pytest.approx(
            device.gate_coupling_ratio
        )

    def test_materials_resolved_by_name(self):
        record = device_to_dict(FloatingGateTransistor())
        assert record["tunnel_dielectric"] == "SiO2"
        restored = device_from_dict(record)
        assert restored.tunnel_dielectric.name == "SiO2"

    def test_missing_field_rejected(self):
        record = device_to_dict(FloatingGateTransistor())
        del record["geometry"]
        with pytest.raises(ConfigurationError):
            device_from_dict(record)


class TestDesignPointRoundTrip:
    def test_round_trip(self):
        point = DesignPoint(program_voltage_v=16.0, tunnel_oxide_nm=6.0)
        assert design_point_from_dict(design_point_to_dict(point)) == point


class TestExperimentExport:
    def test_result_is_json_safe(self, tmp_path):
        import json

        from repro.experiments import run_experiment

        result = run_experiment("fig6")
        record = experiment_result_to_dict(result)
        text = json.dumps(record)  # must not raise
        assert "fig6" in text
        assert len(record["series"]) == 4
        assert all(c["passed"] for c in record["checks"])

    def test_result_round_trip(self):
        import numpy as np

        from repro.experiments import run_experiment
        from repro.io import experiment_result_from_dict

        result = run_experiment("fig8")
        restored = experiment_result_from_dict(
            experiment_result_to_dict(result)
        )
        assert restored.experiment_id == result.experiment_id
        assert restored.log_y == result.log_y
        assert len(restored.series) == len(result.series)
        for a, b in zip(restored.series, result.series):
            assert a.label == b.label
            assert np.array_equal(a.x, b.x)
            assert np.array_equal(a.y, b.y)
        assert [c.passed for c in restored.checks] == [
            bool(c.passed) for c in result.checks
        ]

    def test_round_trip_through_file(self, tmp_path):
        from repro.experiments import run_experiment
        from repro.io import experiment_result_from_dict

        result = run_experiment("fig6")
        path = save_json(
            experiment_result_to_dict(result), tmp_path / "fig6.json"
        )
        restored = experiment_result_from_dict(load_json(path))
        assert restored.render_plot()  # reconstructable figure

    def test_incomplete_result_record_rejected(self):
        from repro.io import experiment_result_from_dict

        with pytest.raises(ConfigurationError):
            experiment_result_from_dict({"experiment_id": "fig6"})

    def test_scenario_result_record_is_json_safe(self):
        import json

        from repro.api import Scenario, SimulationSession
        from repro.io import scenario_result_to_dict

        outcome = SimulationSession().run_scenario(
            Scenario("fig6", overrides={"n_points": 10})
        )
        record = scenario_result_to_dict(outcome)
        text = json.dumps(record)
        assert "fig6" in text
        assert record["cache"]["misses"] >= 0


class TestFileIo:
    def test_save_load_round_trip(self, tmp_path):
        record = device_to_dict(FloatingGateTransistor())
        path = save_json(record, tmp_path / "device.json")
        assert load_json(path) == record

    def test_load_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_json(tmp_path / "absent.json")

    def test_load_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"name": broken')
        with pytest.raises(ConfigurationError) as err:
            load_json(path)
        assert "malformed" in str(err.value)

    def test_save_creates_directories(self, tmp_path):
        path = save_json({"a": 1}, tmp_path / "deep" / "cfg.json")
        assert path.exists()
