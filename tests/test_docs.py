"""Documentation contract: docstrings and the top-level doc set.

Walks every module under :mod:`repro` and enforces the documentation
bar: each public module carries a module-level docstring, every public
class/function of the batch engine (:mod:`repro.engine`) and of the
session API (:mod:`repro.api`) is individually documented, and the
repository ships its README, architecture guide and API guide.
"""

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent


def iter_public_modules():
    """Import and yield every public module of the repro package."""
    yield "repro", repro
    prefix = repro.__name__ + "."
    for info in pkgutil.walk_packages(repro.__path__, prefix):
        short_names = info.name.split(".")
        if any(part.startswith("_") for part in short_names):
            continue
        yield info.name, importlib.import_module(info.name)


ALL_MODULES = sorted(iter_public_modules(), key=lambda pair: pair[0])


@pytest.mark.parametrize(
    "name,module", ALL_MODULES, ids=[name for name, _ in ALL_MODULES]
)
def test_module_docstring(name, module):
    """Every public module documents what it implements."""
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {name} has no module-level docstring"
    )


def iter_engine_members():
    """Yield every public class/function/method of repro.engine,
    repro.api and repro.service."""
    import repro.api.executor
    import repro.api.hashing
    import repro.api.plan
    import repro.api.scenario
    import repro.api.session
    import repro.engine
    import repro.engine.batch
    import repro.engine.cache
    import repro.service.app
    import repro.service.client
    import repro.service.jobs
    import repro.service.journal
    import repro.service.store
    import repro.testing.faults

    modules = (
        repro.engine.batch,
        repro.engine.cache,
        repro.api.session,
        repro.api.scenario,
        repro.api.plan,
        repro.api.executor,
        repro.api.hashing,
        repro.service.store,
        repro.service.jobs,
        repro.service.journal,
        repro.service.app,
        repro.service.client,
        repro.testing.faults,
    )
    for module in modules:
        for attr_name, member in vars(module).items():
            if attr_name.startswith("_"):
                continue
            # functools.lru_cache wrappers are callables, not functions.
            if not (inspect.isclass(member) or callable(member)):
                continue
            if getattr(member, "__module__", None) != module.__name__:
                continue
            yield f"{module.__name__}.{attr_name}", member
            if inspect.isclass(member):
                for meth_name, meth in vars(member).items():
                    if meth_name.startswith("_"):
                        continue
                    if inspect.isfunction(meth) or isinstance(
                        meth, property
                    ):
                        yield f"{module.__name__}.{attr_name}.{meth_name}", meth


ENGINE_MEMBERS = sorted(iter_engine_members(), key=lambda pair: pair[0])


@pytest.mark.parametrize(
    "name,member",
    ENGINE_MEMBERS,
    ids=[name for name, _ in ENGINE_MEMBERS],
)
def test_engine_member_docstring(name, member):
    """Every public engine class, function, method and property."""
    target = member.fget if isinstance(member, property) else member
    assert target.__doc__ and target.__doc__.strip(), (
        f"engine member {name} has no docstring"
    )


def test_engine_members_discovered():
    """The walker found the engine + session APIs (guards silent skips)."""
    names = {name for name, _ in ENGINE_MEMBERS}
    assert "repro.engine.batch.fn_batch" in names
    assert "repro.engine.batch.BatchSpec" in names
    assert "repro.engine.cache.fn_coefficients" in names
    assert "repro.engine.cache.CacheSet" in names
    assert "repro.api.session.SimulationSession" in names
    assert "repro.api.session.SimulationSession.run" in names
    assert "repro.api.scenario.Scenario" in names
    assert "repro.api.plan.RunPlan" in names
    assert "repro.api.plan.ParallelPlanResult" in names
    assert "repro.api.plan.ShardReport" in names
    assert "repro.api.executor.run_plan_parallel" in names
    assert "repro.api.executor.shard_plan" in names
    assert "repro.api.executor.Shard" in names
    assert "repro.api.session.derive_worker_seed" in names
    assert "repro.api.hashing.scenario_hash" in names
    assert "repro.api.hashing.plan_hash" in names
    assert "repro.service.store.ResultStore" in names
    assert "repro.service.store.ResultStore.put" in names
    assert "repro.service.store.run_plan_with_store" in names
    assert "repro.service.jobs.JobManager" in names
    assert "repro.service.jobs.JobManager.submit" in names
    assert "repro.service.jobs.JobManager.cancel" in names
    assert "repro.service.jobs.JobManager.protected_hashes" in names
    assert "repro.service.jobs.PriorityGate" in names
    assert "repro.service.jobs.PriorityGate.acquire" in names
    assert "repro.service.jobs.TokenBucket" in names
    assert "repro.service.store.ResultStore.prune" in names
    assert "repro.service.app.ServiceApp.prune" in names
    assert "repro.service.client.SimulationServiceClient.cancel" in names
    assert "repro.service.client.SimulationServiceClient.prune" in names
    assert "repro.service.app.ServiceApp" in names
    assert "repro.service.app.ServiceThread" in names
    assert "repro.service.client.SimulationServiceClient" in names
    assert "repro.service.client.SimulationServiceClient.run_plan" in names
    assert "repro.api.plan.ShardFailure" in names
    assert "repro.api.plan.ParallelPlanResult.results_by_position" in names
    assert "repro.api.executor.ShardExecutionError" in names
    assert "repro.testing.faults.FaultSpec" in names
    assert "repro.testing.faults.FaultSpec.matches" in names
    assert "repro.testing.faults.maybe_inject" in names
    assert "repro.testing.faults.faults_installed" in names
    assert "repro.service.jobs.PartialComputeError" in names
    assert "repro.service.journal.JobJournal" in names
    assert "repro.service.journal.JobJournal.append" in names
    assert "repro.service.journal.JobJournal.compact" in names
    assert "repro.service.journal.JobJournal.acquire_lease" in names
    assert "repro.service.journal.LeaseRecord" in names
    assert "repro.service.journal.JournalState" in names
    assert "repro.service.store.ResultStore.verify" in names
    assert "repro.service.store.VerifyReport" in names
    assert "repro.service.store.result_checksum" in names
    assert "repro.service.jobs.JobManager.recover" in names
    assert "repro.service.jobs.JobManager.drain" in names
    assert "repro.service.app.ServiceApp.drain" in names
    assert "repro.service.client.JobLostError" in names
    assert "repro.service.client.SimulationServiceClient.verify" in names


@pytest.mark.parametrize(
    "relative", ["README.md", "docs/ARCHITECTURE.md", "docs/API.md"]
)
def test_top_level_docs_exist(relative):
    """The README and architecture guide ship with the repository."""
    path = REPO_ROOT / relative
    assert path.is_file(), f"{relative} is missing"
    text = path.read_text(encoding="utf-8")
    assert len(text) > 500, f"{relative} looks like a stub"


def test_readme_covers_the_essentials():
    """README names the paper, the quickstart, tests and the layers."""
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8").lower()
    for needle in ("socc", "quickstart", "pytest", "repro.engine", "repro.api"):
        assert needle in text, f"README.md does not mention {needle!r}"


def test_api_guide_covers_the_workflow():
    """docs/API.md walks session -> scenario -> plan -> results."""
    text = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    for needle in (
        "SimulationSession",
        "Scenario",
        "RunPlan",
        "--set",
        "--plan",
        "--json-dir",
        "cache_stats",
    ):
        assert needle in text, f"docs/API.md does not mention {needle!r}"


def test_api_guide_covers_the_executor():
    """docs/API.md documents parallel execution end to end."""
    text = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    for needle in (
        "run_plan_parallel",
        "shard_by",
        "round-robin",
        "by-experiment",
        "by-cost",
        "derive_worker_seed",
        "ShardReport",
        "Determinism contract",
        "--workers",
    ):
        assert needle in text, f"docs/API.md does not mention {needle!r}"


def test_api_guide_covers_the_solver_backend():
    """docs/API.md documents the batched kernel contracts end to end."""
    text = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    assert "Numerical solver backend" in text
    for needle in (
        "wkb_action_batch",
        "transmission_probability_batch",
        "simulate_transient_batch",
        "current_density_scalar_reference",
        "integrate_rk4",
        "Scalar-fallback protocol",
        "RK4",
        "BENCH_results.json",
    ):
        assert needle in text, f"docs/API.md does not mention {needle!r}"


def test_api_guide_covers_the_electrostatics_reliability_backend():
    """docs/API.md documents the batched electrostatics + reliability layer."""
    text = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    assert "Electrostatics & reliability backend" in text
    for needle in (
        "solve_poisson_1d_batch",
        "solve_channel_well_batch",
        "refine_bound_states_batch",
        "channel_well_sweep",
        "simulate_scalar_reference",
        "simulate_batch",
        "stress_of_pulse_batch",
        "silc_current_density_batch",
        "endurance_samples",
        "test_bench_poisson_schrodinger.py",
        "test_bench_endurance.py",
    ):
        assert needle in text, f"docs/API.md does not mention {needle!r}"


def test_architecture_covers_the_electrostatics_reliability_backend():
    """docs/ARCHITECTURE.md explains the batched final two layers."""
    text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
        encoding="utf-8"
    )
    assert "Electrostatics & reliability backend" in text
    for needle in (
        "solve_tridiagonal_batch",
        "solve_poisson_1d_batch",
        "solve_schrodinger_1d_batch",
        "refine_bound_states_batch",
        "Rayleigh-quotient",
        "solve_channel_well_batch",
        "per-lane convergence masks",
        "build_band_diagram_batch",
        "build_capacitances_batch",
        "simulate_scalar_reference",
        "endurance_sweep",
        "silc_current_density_batch",
        "stress_of_pulse_batch",
    ):
        assert needle in text, (
            f"docs/ARCHITECTURE.md does not mention {needle!r}"
        )


def test_batch_entry_points_documented():
    """Every new public batch entry point carries a real docstring."""
    import repro.electrostatics as electrostatics
    import repro.engine as engine
    import repro.reliability as reliability
    import repro.solver as solver

    entry_points = (
        solver.solve_tridiagonal_batch,
        solver.solve_poisson_1d_batch,
        solver.solve_schrodinger_1d_batch,
        solver.refine_bound_states_batch,
        solver.PoissonBatchSolution1D,
        solver.BoundStatesBatch,
        electrostatics.solve_channel_well_batch,
        electrostatics.ChannelWellBatchSolution,
        electrostatics.build_band_diagram_batch,
        electrostatics.BandDiagramBatch,
        electrostatics.build_capacitances_batch,
        electrostatics.FloatingGateCapacitanceBatch,
        engine.channel_well_sweep,
        engine.endurance_sweep,
        reliability.EnduranceModel.simulate_batch,
        reliability.EnduranceModel.simulate_scalar_reference,
        reliability.EnduranceBatchResult,
        reliability.stress_of_pulse_batch,
        reliability.StressBatch,
        reliability.silc_current_density_batch,
        reliability.sampled_cycle_counts,
    )
    for member in entry_points:
        assert member.__doc__ and len(member.__doc__.strip()) > 40, (
            f"{getattr(member, '__qualname__', member)} lacks a substantive "
            "docstring"
        )


def test_api_guide_covers_the_memory_backend():
    """docs/API.md documents the array-wide memory backend."""
    text = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    assert "Memory array backend" in text
    for needle in (
        "build_vector_array",
        "program_page_batch",
        "program_mlc_page_batch",
        "interleave_decode_batch",
        "apply_read_disturb_batch",
        "derive_trajectory_seed",
        "array_program_sweep",
        "mlc_program_sweep",
        "bit-exact",
        "test_bench_nand_array.py",
    ):
        assert needle in text, f"docs/API.md does not mention {needle!r}"


def test_architecture_covers_the_memory_backend():
    """docs/ARCHITECTURE.md explains the array-wide memory layer."""
    text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
        encoding="utf-8"
    )
    assert "Memory array backend" in text
    for needle in (
        "ArrayState",
        "program_page_batch",
        "batch RNG contract",
        "program_mlc_page_batch",
        "GF(2) matrix",
        "apply_read_disturb_batch",
        "sample_trajectory_batch",
        "derive_trajectory_seed",
        "VectorMemoryArray",
        "array_program_sweep",
        "mem-array",
    ):
        assert needle in text, (
            f"docs/ARCHITECTURE.md does not mention {needle!r}"
        )


def test_memory_batch_entry_points_documented():
    """Every public memory batch entry point carries a real docstring."""
    import repro.engine as engine
    import repro.memory as memory

    entry_points = (
        memory.VectorMemoryArray,
        memory.build_vector_array,
        memory.ispp_step_batch,
        memory.program_page_batch,
        memory.program_page_scalar_reference,
        memory.IsppBatchOutcome,
        memory.program_mlc_page_batch,
        memory.program_mlc_page_scalar_reference,
        memory.read_mlc_page_batch,
        memory.HammingCode.encode_batch,
        memory.HammingCode.decode_batch,
        memory.interleave_encode_batch,
        memory.interleave_decode_batch,
        memory.apply_read_disturb_batch,
        memory.apply_read_disturb_scalar_reference,
        memory.apply_program_disturb_batch,
        memory.apply_program_disturb_scalar_reference,
        memory.RtnTrap.sample_trajectory_batch,
        memory.RtnTrap.sample_trajectory_scalar_reference,
        memory.derive_trajectory_seed,
        memory.SenseAmplifier.sense_page_batch,
        memory.SenseAmplifier.sense_page_scalar_reference,
        engine.array_program_sweep,
        engine.ArraySweepResult,
        engine.mlc_program_sweep,
        engine.MlcSweepResult,
    )
    for member in entry_points:
        assert member.__doc__ and len(member.__doc__.strip()) > 40, (
            f"{getattr(member, '__qualname__', member)} lacks a substantive "
            "docstring"
        )


def test_api_guide_covers_the_service():
    """docs/API.md documents the service, store and hash contract."""
    text = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    assert "Simulation service & result store" in text
    for needle in (
        "scenario_hash",
        "plan_hash",
        "code_version",
        "ResultStore",
        "single-flight",
        "Retry-After",
        "SimulationServiceClient",
        "ServiceThread",
        "repro-service",
        "--from-store",
        "--update-store",
        "/plans",
        "/jobs/{id}",
        "/healthz",
    ):
        assert needle in text, f"docs/API.md does not mention {needle!r}"


def test_api_guide_covers_operating_the_service():
    """docs/API.md documents the lifecycle/GC surface of the service."""
    text = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    assert "Operating the service" in text
    for needle in (
        "DELETE",
        "/admin/prune",
        "priority",
        "PriorityGate",
        "starvation-free",
        "cancelled",
        "jobs_cancelled",
        "expired",
        "job_ttl_s",
        "max_records",
        "protected_hashes",
        "repro-service prune",
        "repro-service cancel",
        "--prune-interval",
    ):
        assert needle in text, f"docs/API.md does not mention {needle!r}"


def test_architecture_covers_the_service():
    """docs/ARCHITECTURE.md explains the service/store tier."""
    text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
        encoding="utf-8"
    )
    assert "Simulation service & result store" in text
    for needle in (
        "ResultStore",
        "canonical scenario hash",
        "os.replace",
        "first-writer-wins",
        "JobManager",
        "single-flight",
        "token bucket",
        "asyncio.start_server",
        "SimulationServiceClient",
        "--from-store",
    ):
        assert needle in text, (
            f"docs/ARCHITECTURE.md does not mention {needle!r}"
        )


def test_architecture_covers_the_job_lifecycle():
    """docs/ARCHITECTURE.md explains the PR 8 lifecycle/GC layer."""
    text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
        encoding="utf-8"
    )
    for needle in (
        "PriorityGate",
        "starvation-free",
        "hand-off",
        "protected_hashes",
        "TOCTOU",
        "expired",
        "self-heals",
        "_evict_finished",
    ):
        assert needle in text, (
            f"docs/ARCHITECTURE.md does not mention {needle!r}"
        )


def test_service_entry_points_documented():
    """Every public service entry point carries a real docstring."""
    import repro.api as api
    import repro.service as service

    entry_points = (
        api.scenario_hash,
        api.plan_hash,
        api.canonical_json,
        api.canonical_scenario_record,
        api.code_version,
        service.ResultStore,
        service.StoreRecord,
        service.StoreReport,
        service.run_plan_with_store,
        service.Job,
        service.JobManager,
        service.JobQueueFull,
        service.JobRecord,
        service.RateLimiter,
        service.TokenBucket,
        service.PriorityGate,
        service.normalize_priority,
        service.expired_job_record,
        service.compute_scenario_results,
        service.ServiceApp,
        service.ServiceApp.prune,
        service.ServiceThread,
        service.ServiceError,
        service.SimulationServiceClient,
        service.SimulationServiceClient.cancel,
        service.SimulationServiceClient.prune,
        service.JobManager.cancel,
        service.JobManager.protected_hashes,
    )
    for member in entry_points:
        assert member.__doc__ and len(member.__doc__.strip()) > 40, (
            f"{getattr(member, '__qualname__', member)} lacks a substantive "
            "docstring"
        )


def test_api_guide_covers_durability():
    """docs/API.md documents the journal/verify durability surface."""
    text = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    assert "Durability & recovery" in text
    for needle in (
        "journal.jsonl",
        "write-ahead",
        "--journal",
        "--lease-ttl",
        "--drain-timeout",
        "--owner-id",
        "SIGTERM",
        "/admin/verify",
        "repro-service verify",
        "--repair",
        "quarantine",
        "JobLostError",
        "jobs_restored",
        "jobs_recovered",
    ):
        assert needle in text, f"docs/API.md does not mention {needle!r}"


def test_architecture_covers_durability():
    """docs/ARCHITECTURE.md explains the write-ahead journal layer."""
    text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
        encoding="utf-8"
    )
    assert "Durability & recovery" in text
    for needle in (
        "JobJournal",
        "fsync",
        "compact_every",
        "LeaseRecord",
        "heartbeat",
        "log order",
        "shutdown marker",
        "result_checksum",
        "quarantine/",
        "recover()",
        "re-queue",
        "clean",
        "crash",
    ):
        assert needle in text, (
            f"docs/ARCHITECTURE.md does not mention {needle!r}"
        )


def test_durability_entry_points_documented():
    """Every public durability entry point carries a real docstring."""
    import repro.service as service

    entry_points = (
        service.JobJournal,
        service.JobJournal.append,
        service.JobJournal.refresh,
        service.JobJournal.replay,
        service.JobJournal.compact,
        service.JobJournal.acquire_lease,
        service.JobJournal.renew_lease,
        service.JobJournal.release_lease,
        service.JournalEntry,
        service.JournalState,
        service.LeaseRecord,
        service.StoreIntegrityError,
        service.CorruptObject,
        service.VerifyReport,
        service.result_checksum,
        service.ResultStore.verify,
        service.JobManager.recover,
        service.JobManager.drain,
        service.ServiceApp.drain,
        service.JobLostError,
        service.SimulationServiceClient.verify,
        service.SimulationServiceClient.wait,
    )
    for member in entry_points:
        assert member.__doc__ and len(member.__doc__.strip()) > 40, (
            f"{getattr(member, '__qualname__', member)} lacks a substantive "
            "docstring"
        )


def test_api_guide_covers_fault_tolerance():
    """docs/API.md documents the supervised executor and chaos harness."""
    text = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    assert "Fault tolerance & chaos testing" in text
    for needle in (
        "timeout_s",
        "max_shard_retries",
        "raise_on_failure",
        "split_failed_shards",
        "ShardFailure",
        "ShardExecutionError",
        "results_by_position",
        "repro.testing.faults",
        "FaultSpec",
        "REPRO_FAULTS",
        "faults_installed",
        "--shard-timeout",
        "--shard-retries",
        "--job-timeout",
        "total_timeout_s",
        "PartialComputeError",
        "jobs_timeout",
    ):
        assert needle in text, f"docs/API.md does not mention {needle!r}"


def test_architecture_covers_fault_tolerance():
    """docs/ARCHITECTURE.md explains the supervision layer."""
    text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
        encoding="utf-8"
    )
    assert "Fault tolerance & chaos testing" in text
    for needle in (
        "_ShardSupervisor",
        "FIRST_COMPLETED",
        "completion order",
        "BrokenProcessPool",
        "Split-on-last-retry",
        "ShardFailure",
        "REPRO_FAULTS",
        "chaos-smoke",
        "PartialComputeError",
        "jobs_timeout",
        "total_timeout_s",
    ):
        assert needle in text, (
            f"docs/ARCHITECTURE.md does not mention {needle!r}"
        )


def test_architecture_covers_the_solver_backend():
    """docs/ARCHITECTURE.md explains the vectorized numerical layer."""
    text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
        encoding="utf-8"
    )
    assert "Numerical solver backend" in text
    for needle in (
        "wkb_action_batch",
        "transmission_probability_batch",
        "simulate_transient_batch",
        "CompiledCellBank",
        "vectorized-potential protocol",
        "lband=uband=0",
        "integrate_rk4",
        "bit-stable",
    ):
        assert needle in text, (
            f"docs/ARCHITECTURE.md does not mention {needle!r}"
        )
