"""Shared fixtures: reference device, barriers and calibrated kernels.

Session-scoped where construction is expensive (kernel calibration runs
real transients) so the suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import FloatingGateTransistor
from repro.memory import CellKernel, calibrate_kernel
from repro.tunneling import TunnelBarrier
from repro.units import nm_to_m


def pytest_addoption(parser):
    """Add ``--update-golden``: regenerate the golden snapshots.

    ``pytest tests/golden --update-golden`` rewrites every snapshot
    under ``tests/golden/snapshots/`` from a fresh run instead of
    comparing against it; commit the diff deliberately -- it is the
    record of an intentional numeric change.
    """
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/snapshots/ from fresh runs instead "
        "of comparing",
    )


@pytest.fixture(scope="session")
def paper_device() -> FloatingGateTransistor:
    """The paper's reference design: GCR 0.6, 5 nm / 8 nm SiO2 stack."""
    return FloatingGateTransistor()


@pytest.fixture(scope="session")
def sio2_barrier() -> TunnelBarrier:
    """Graphene/SiO2 5 nm tunnel barrier."""
    return TunnelBarrier(
        barrier_height_ev=3.61, thickness_m=nm_to_m(5.0), mass_ratio=0.42
    )


@pytest.fixture(scope="session")
def cell_kernel(paper_device: FloatingGateTransistor) -> CellKernel:
    """Device-calibrated array cell kernel (expensive; share it)."""
    return calibrate_kernel(paper_device)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic RNG for stochastic components."""
    return np.random.default_rng(12345)
