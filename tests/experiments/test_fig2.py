"""Figure 2 band-diagram reproduction."""

import numpy as np
import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def result():
    return run_experiment("fig2")


class TestFig2:
    def test_all_checks_pass(self, result):
        assert result.all_checks_pass, result.render_checks()

    def test_unbiased_diagram_flat_in_oxides(self, result):
        flat = result.series[0]
        # Unbiased: barrier height everywhere inside the tunnel oxide.
        first_nm = flat.y[flat.x < 5.0]
        assert np.allclose(first_nm, first_nm[0])

    def test_biased_band_falls_across_tunnel_oxide(self, result):
        biased = result.series[1]
        in_tunnel = biased.x < 5.0
        y = biased.y[in_tunnel]
        assert y[0] > y[-1]
        # Total drop = V_FG = 9 V.
        assert y[0] - y[-1] == pytest.approx(9.0, rel=0.02)

    def test_vfg_parameter_recorded(self, result):
        assert result.parameters["vfg_v"] == pytest.approx(9.0, abs=1e-6)

    def test_linear_scale_flagged(self, result):
        assert not result.log_y
