"""Ablation experiments."""

import pytest

from repro.experiments.ablations import (
    run_model_comparison,
    run_quantum_capacitance,
    run_temperature,
)


class TestModelComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_model_comparison(n_points=6)

    def test_checks_pass(self, result):
        assert result.all_checks_pass, result.render_checks()

    def test_three_models_compared(self, result):
        assert len(result.series) == 3

    def test_fn_within_decade_of_exact(self, result):
        import numpy as np

        j_fn = result.series[0].y
        j_tm = result.series[1].y
        assert np.max(np.abs(np.log10(j_fn / j_tm))) < 1.0


class TestQuantumCapacitance:
    @pytest.fixture(scope="class")
    def result(self):
        return run_quantum_capacitance(max_layers=8)

    def test_checks_pass(self, result):
        assert result.all_checks_pass, result.render_checks()

    def test_effective_gcr_below_geometric(self, result):
        effective = result.series[0].y
        geometric = result.series[1].y
        assert (effective <= geometric + 1e-12).all()

    def test_monotonic_recovery_with_layers(self, result):
        import numpy as np

        effective = result.series[0].y
        assert np.all(np.diff(effective) >= -1e-12)


class TestTemperature:
    @pytest.fixture(scope="class")
    def result(self):
        return run_temperature(n_points=7)

    def test_checks_pass(self, result):
        assert result.all_checks_pass, result.render_checks()

    def test_factor_above_unity(self, result):
        assert (result.series[0].y > 1.0).all()
