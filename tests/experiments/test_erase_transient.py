"""Erase-transient experiment (dynamic mirror of Figure 5)."""

import numpy as np
import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def result():
    return run_experiment("erase-transient")


class TestEraseTransient:
    def test_all_checks_pass(self, result):
        assert result.all_checks_pass, result.render_checks()

    def test_depletion_endpoints_signed_correctly(self, result):
        """Starts negative (programmed), ends positive (depleted)."""
        assert result.parameters["initial_charge_c"] < 0.0
        assert result.parameters["q_equilibrium_c"] > 0.0

    def test_charge_magnitude_dips_through_neutrality(self, result):
        q_abs = result.series[2].y
        assert q_abs.min() < 0.05 * q_abs[0]

    def test_tsat_recorded(self, result):
        assert result.parameters["t_sat_s"] is not None
        assert 0.0 < result.parameters["t_sat_s"] < 1.0

    def test_symmetry_with_program(self, result):
        q_prog = result.parameters["initial_charge_c"]
        q_erase = result.parameters["q_equilibrium_c"]
        assert q_erase == pytest.approx(-q_prog, rel=1e-3)
