"""The memory-array experiments (mem-*) and their overrides."""

import pytest

from repro.api import SimulationSession
from repro.errors import ConfigurationError
from repro.experiments import available_experiments

MEM_EXPERIMENTS = ["mem-array", "mem-mlc", "mem-ftl", "mem-disturb"]


@pytest.fixture(scope="module")
def session():
    return SimulationSession(seed=7)


class TestRegistration:
    def test_mem_experiments_registered(self):
        ids = available_experiments()
        for eid in MEM_EXPERIMENTS:
            assert eid in ids


class TestDefaults:
    @pytest.mark.parametrize("experiment_id", MEM_EXPERIMENTS)
    def test_default_run_passes_checks(self, experiment_id, session):
        result = session.run(experiment_id)
        assert result.experiment_id == experiment_id
        assert result.series
        failing = [c for c in result.checks if not c.passed]
        assert not failing, [c.claim for c in failing]

    @pytest.mark.parametrize("experiment_id", MEM_EXPERIMENTS)
    def test_runs_are_session_order_independent(self, experiment_id):
        """Explicit seeds only: results never depend on session state."""
        fresh = SimulationSession(seed=99).run(experiment_id)
        warmed_session = SimulationSession(seed=99)
        warmed_session.run("mem-array", n_pages=2, bitlines=16)
        warmed = warmed_session.run(experiment_id)
        for a, b in zip(fresh.series, warmed.series):
            assert (a.x == b.x).all()
            assert (a.y == b.y).all()


class TestOverrides:
    def test_array_geometry_override(self, session):
        result = session.run("mem-array", n_pages=3, bitlines=32)
        assert result.parameters["n_pages"] == 3
        assert result.parameters["bitlines"] == 32
        assert all(c.passed for c in result.checks)

    def test_mlc_geometry_override(self, session):
        result = session.run("mem-mlc", n_pages=2, cells_per_page=48)
        assert result.parameters["cells_per_page"] == 48
        assert all(c.passed for c in result.checks)

    def test_ftl_workload_override(self, session):
        result = session.run(
            "mem-ftl", n_requests=150, workload_seed=11
        )
        assert result.parameters["n_requests"] == 150
        assert all(c.passed for c in result.checks)

    def test_disturb_read_count_override(self, session):
        result = session.run("mem-disturb", n_reads=80)
        assert result.parameters["n_reads"] == 80
        assert all(c.passed for c in result.checks)

    def test_unknown_override_rejected(self, session):
        with pytest.raises(ConfigurationError):
            session.run("mem-array", nonsense=1)
