"""The reliability-facing experiments (rel-*) and their overrides."""

import numpy as np
import pytest

from repro.api import Scenario, SimulationSession
from repro.errors import ConfigurationError
from repro.experiments import available_experiments, run_experiment


@pytest.fixture(scope="module")
def session():
    return SimulationSession(seed=7)


class TestRegistration:
    def test_rel_experiments_registered(self):
        ids = available_experiments()
        for eid in ("rel-endurance", "rel-bake", "rel-silc"):
            assert eid in ids


class TestDefaults:
    @pytest.mark.parametrize(
        "experiment_id", ["rel-endurance", "rel-bake", "rel-silc"]
    )
    def test_default_run_reproduces(self, experiment_id, session):
        result = session.run(experiment_id)
        assert result.experiment_id == experiment_id
        assert result.series
        failing = [c for c in result.checks if not c.passed]
        assert not failing, [c.claim for c in failing]


class TestOverrides:
    def test_endurance_corner_override(self, session):
        result = session.run(
            "rel-endurance",
            n_cycles=2_000,
            n_samples=12,
            trapped_charge_fractions=(0.01, 0.2),
        )
        assert len(result.series) == 2
        assert result.parameters["n_cycles"] == 2_000
        assert result.series[0].x.size <= 12

    def test_bake_range_override(self, session):
        result = session.run(
            "rel-bake",
            n_points=5,
            bake_temperature_range_k=(423.15, 473.15),
            activation_energy_ev=0.9,
        )
        assert result.series[0].x.size == 5
        assert result.parameters["activation_energy_ev"] == 0.9

    def test_silc_grid_override(self, session):
        result = session.run(
            "rel-silc",
            n_points=6,
            retention_fields_mv_per_cm=(3.0, 5.0, 7.0),
        )
        assert len(result.series) == 3
        assert result.series[0].x.size == 6

    def test_unknown_override_rejected(self, session):
        with pytest.raises(ConfigurationError):
            session.run("rel-bake", nonsense=1)

    def test_scenario_threading(self, session):
        scenario = Scenario(
            experiment_id="rel-endurance",
            overrides={"n_cycles": 1_500, "n_samples": 10},
        )
        result = session.run_scenario(scenario)
        assert result.result.parameters["n_cycles"] == 1_500


class TestSummaryEnduranceSamples:
    def test_endurance_samples_is_an_override(self, session):
        fast = session.run(
            "device-summary", endurance_cycles=1_000, endurance_samples=4
        )
        assert fast.parameters["cycles_to_breakdown"] > 1e4
        # The default path still reproduces the committed record.
        default = session.run("device-summary")
        assert default.parameters["gcr"] == pytest.approx(0.6, rel=1e-6)

    def test_scenario_override_path(self, session):
        scenario = Scenario(
            experiment_id="device-summary",
            overrides={"endurance_cycles": 1_000, "endurance_samples": 4},
        )
        result = session.run_scenario(scenario)
        assert result.result.experiment_id == "device-summary"


class TestPhysics:
    def test_more_trapped_charge_closes_window_faster(self, session):
        result = session.run(
            "rel-endurance",
            trapped_charge_fractions=(0.02, 0.10),
            n_cycles=5_000,
            n_samples=10,
        )
        low, high = (np.asarray(s.y) for s in result.series)
        assert np.all(high > low)

    def test_hotter_bake_is_shorter(self, session):
        result = session.run("rel-bake")
        hours = np.asarray(result.series[0].y)
        assert np.all(np.diff(hours) < 0.0)
