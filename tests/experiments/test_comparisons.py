"""Baseline-comparison experiments (cmp-si, cmp-che)."""

import pytest

from repro.experiments import run_experiment
from repro.experiments.comparisons import (
    run_che_comparison,
    run_silicon_comparison,
)


class TestSiliconComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_silicon_comparison(n_points=15)

    def test_all_checks_pass(self, result):
        assert result.all_checks_pass, result.render_checks()

    def test_two_devices_compared(self, result):
        labels = [s.label for s in result.series]
        assert any("MLGNR" in lbl for lbl in labels)
        assert any("Si" in lbl for lbl in labels)

    def test_barriers_recorded(self, result):
        gnr_phi, si_phi = result.parameters["barriers_ev"]
        assert gnr_phi == pytest.approx(3.61, abs=0.01)
        assert si_phi == pytest.approx(3.10, abs=0.01)


class TestCheComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_che_comparison(n_points=15)

    def test_all_checks_pass(self, result):
        assert result.all_checks_pass, result.render_checks()

    def test_registered_in_runner(self):
        result = run_experiment("cmp-che")
        assert result.experiment_id == "cmp-che"
