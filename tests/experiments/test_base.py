"""Experiment framework primitives."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.base import (
    ExperimentResult,
    ShapeCheck,
    decades_between,
    monotonic_increasing,
    series_ordering_check,
)
from repro.reporting import PlotSeries


def series(label, scale):
    x = np.linspace(1.0, 10.0, 10)
    return PlotSeries(label=label, x=x, y=scale * x)


class TestHelpers:
    def test_monotonic_increasing_strict(self):
        assert monotonic_increasing(np.array([1.0, 2.0, 3.0]))
        assert not monotonic_increasing(np.array([1.0, 1.0, 3.0]))
        assert monotonic_increasing(
            np.array([1.0, 1.0, 3.0]), strict=False
        )

    def test_series_ordering_check_passes_when_sorted(self):
        check = series_ordering_check(
            [series("low", 1.0), series("high", 10.0)],
            claim="ordered",
        )
        assert check.passed
        assert "low" in check.detail and "high" in check.detail

    def test_series_ordering_check_fails_when_inverted(self):
        check = series_ordering_check(
            [series("high", 10.0), series("low", 1.0)],
            claim="ordered",
        )
        assert not check.passed

    def test_series_ordering_needs_two(self):
        with pytest.raises(ConfigurationError):
            series_ordering_check([series("only", 1.0)], claim="x")

    def test_decades_between(self):
        assert decades_between(1.0, 1000.0) == pytest.approx(3.0)
        assert np.isnan(decades_between(0.0, 10.0))


class TestExperimentResult:
    @pytest.fixture()
    def result(self):
        return ExperimentResult(
            experiment_id="unit",
            title="unit-test figure",
            x_label="x",
            y_label="y",
            series=(series("a", 1.0), series("b", 2.0)),
            parameters={"p": 1},
            checks=(
                ShapeCheck(claim="good", passed=True, detail="yes"),
                ShapeCheck(claim="bad", passed=False, detail="no"),
            ),
        )

    def test_all_checks_pass_reflects_failures(self, result):
        assert not result.all_checks_pass

    def test_render_plot_contains_id_and_labels(self, result):
        out = result.render_plot()
        assert "unit" in out
        assert "a" in out and "b" in out

    def test_render_checks_shows_both_verdicts(self, result):
        table = result.render_checks()
        assert "PASS" in table and "FAIL" in table
        assert "good" in table and "bad" in table
