"""Device figure-of-merit summary experiment."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def result():
    return run_experiment("device-summary")


class TestSummary:
    def test_all_checks_pass(self, result):
        assert result.all_checks_pass, result.render_checks()

    def test_metrics_complete(self, result):
        expected_keys = {
            "gcr",
            "tunnel_barrier_ev",
            "vfg_at_program_v",
            "jin_t0_a_m2",
            "t_sat_s",
            "stored_electrons",
            "memory_window_v",
            "retention_10y_fraction",
            "cycles_to_breakdown",
        }
        assert expected_keys <= set(result.parameters)

    def test_headline_numbers_consistent_with_paper(self, result):
        p = result.parameters
        assert p["vfg_at_program_v"] == pytest.approx(9.0, abs=1e-6)
        assert p["gcr"] == pytest.approx(0.6, abs=1e-6)

    def test_charge_trajectory_monotonic(self, result):
        import numpy as np

        q = result.series[0].y
        assert np.all(np.diff(q) >= -1e-30)
