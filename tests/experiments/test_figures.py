"""Every paper figure reproduces with all shape checks passing.

These are the headline reproduction tests: each asserts that the
regenerated figure satisfies the qualitative claims the paper makes
about it (monotonicity, curve ordering, decade-scale separations,
saturation behaviour).
"""

import numpy as np
import pytest

from repro.experiments import PAPER_FIGURES, run_experiment


@pytest.fixture(scope="module")
def results():
    return {fid: run_experiment(fid) for fid in PAPER_FIGURES}


class TestAllFigures:
    @pytest.mark.parametrize("figure_id", PAPER_FIGURES)
    def test_every_shape_check_passes(self, results, figure_id):
        result = results[figure_id]
        failing = [c for c in result.checks if not c.passed]
        assert not failing, "\n".join(
            f"{c.claim}: {c.detail}" for c in failing
        )

    @pytest.mark.parametrize("figure_id", PAPER_FIGURES)
    def test_result_is_renderable(self, results, figure_id):
        result = results[figure_id]
        plot = result.render_plot()
        assert result.experiment_id in plot
        table = result.render_checks()
        assert "PASS" in table


class TestFig4Specifics:
    def test_initial_vfg_is_nine_volts(self, results):
        fig4 = results["fig4"]
        vfg_check = fig4.checks[0]
        assert "9" in vfg_check.detail

    def test_jin_jout_separation_is_decades(self, results):
        fig4 = results["fig4"]
        jin = fig4.series[0].y
        jout = fig4.series[1].y
        assert jin[0] / jout[0] > 1e6


class TestFig5Specifics:
    def test_tsat_recorded_in_parameters(self, results):
        params = results["fig5"].parameters
        assert params["t_sat_s"] is not None
        assert 0.0 < params["t_sat_s"] < 1.0

    def test_equilibrium_charge_negative(self, results):
        assert results["fig5"].parameters["q_equilibrium_c"] < 0.0


class TestFig6Fig8Symmetry:
    def test_program_and_erase_sweeps_mirror(self, results):
        """Same GCR family, mirrored voltages, zero charge: identical
        magnitudes (the paper runs 'the same set of analysis')."""
        fig6 = {s.label: s for s in results["fig6"].series}
        fig8 = {s.label: s for s in results["fig8"].series}
        for label in fig6:
            assert np.allclose(
                fig6[label].y, fig8[label].y, rtol=1e-9
            ), f"asymmetry in {label}"


class TestFig7Fig9OxideFamilies:
    @pytest.mark.parametrize("figure_id", ["fig7", "fig9"])
    def test_five_thickness_series(self, results, figure_id):
        assert len(results[figure_id].series) == 5

    def test_sub7nm_knee_quantified(self, results):
        """The 'significant increase below 7 nm' check carries numbers."""
        knee_checks = [
            c
            for c in results["fig7"].checks
            if "7 nm" in c.claim or "removed nm" in c.claim
        ]
        assert knee_checks and all(c.passed for c in knee_checks)
