"""Shared figure-sweep machinery (eqs. (3) + (7) composition)."""

import numpy as np
import pytest

from repro.experiments import (
    SweepSettings,
    fn_density_vs_gate_voltage,
    gcr_family,
    oxide_family,
)


class TestEquationComposition:
    def test_matches_manual_composition(self):
        """Sweep output must equal FN(GCR * VGS / XTO) computed by hand."""
        from repro.tunneling import TunnelBarrier, FowlerNordheimModel
        from repro.units import nm_to_m

        settings = SweepSettings()
        vgs = np.array([12.0])
        got = fn_density_vs_gate_voltage(vgs, 0.6, 5.0, settings)[0]
        model = FowlerNordheimModel(
            TunnelBarrier(
                settings.barrier_height_ev,
                nm_to_m(5.0),
                settings.mass_ratio,
            )
        )
        expected = model.current_density_from_voltage(0.6 * 12.0)
        assert got == pytest.approx(expected)

    def test_erase_polarity_magnitude(self):
        j_neg = fn_density_vs_gate_voltage(np.array([-15.0]), 0.6, 5.0)
        j_pos = fn_density_vs_gate_voltage(np.array([15.0]), 0.6, 5.0)
        assert j_neg[0] == pytest.approx(j_pos[0])
        assert j_neg[0] > 0.0  # magnitudes for plotting

    def test_default_settings_are_graphene_sio2(self):
        s = SweepSettings()
        assert s.barrier_height_ev == pytest.approx(3.61)
        assert s.mass_ratio == pytest.approx(0.42)


class TestFamilies:
    def test_gcr_family_labels_and_order(self):
        series = gcr_family(
            np.linspace(8, 17, 5), (0.4, 0.5, 0.6, 0.7), 5.0
        )
        assert [s.label for s in series] == [
            "GCR=40%",
            "GCR=50%",
            "GCR=60%",
            "GCR=70%",
        ]

    def test_oxide_family_sorted_thickest_first(self):
        series = oxide_family(
            np.linspace(10, 17, 5), (5.0, 8.0, 4.0), 0.6
        )
        assert [s.label for s in series] == [
            "XTO=8nm",
            "XTO=5nm",
            "XTO=4nm",
        ]

    def test_family_members_share_x(self):
        vgs = np.linspace(8, 17, 7)
        for s in gcr_family(vgs, (0.4, 0.6), 5.0):
            assert np.array_equal(s.x, vgs)
