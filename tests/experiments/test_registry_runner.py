"""Experiment registry and CLI runner."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    PAPER_FIGURES,
    available_experiments,
    get_experiment,
    run_experiment,
)
from repro.experiments.runner import main


class TestRegistry:
    def test_all_paper_figures_registered(self):
        available = available_experiments()
        for fid in PAPER_FIGURES:
            assert fid in available

    def test_ablations_registered(self):
        available = available_experiments()
        for aid in ("abl-wkb", "abl-cq", "abl-temp"):
            assert aid in available

    def test_unknown_id_raises_with_listing(self):
        with pytest.raises(ConfigurationError) as err:
            get_experiment("fig99")
        assert "fig6" in str(err.value)

    def test_run_experiment_returns_result(self):
        result = run_experiment("fig6")
        assert result.experiment_id == "fig6"


class TestRunnerCli:
    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "abl-temp" in out

    def test_single_experiment_run(self, capsys):
        code = main(["fig6", "--no-plot"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 failures" in out
        assert "fig6" in out

    def test_csv_export(self, tmp_path, capsys):
        code = main(["fig6", "--no-plot", "--csv-dir", str(tmp_path)])
        assert code == 0
        csv_file = tmp_path / "fig6.csv"
        assert csv_file.exists()
        header = csv_file.read_text().splitlines()[0]
        assert header == "series,V_GS [V],J_FN [A/m^2]"

    def test_plot_mode_renders_axes(self, capsys):
        code = main(["fig7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "XTO=4nm" in out

    def test_paper_only_runs_exactly_the_figures(self, capsys):
        code = main(["--paper-only", "--no-plot"])
        out = capsys.readouterr().out
        assert code == 0
        for fid in PAPER_FIGURES:
            assert f"{fid}:" in out
        assert "abl-wkb" not in out
        assert "cmp-si" not in out


class TestRunnerSetOption:
    def test_set_overrides_a_parameter(self, capsys):
        code = main(["fig6", "--no-plot", "--set", "temperature_k=400"])
        out = capsys.readouterr().out
        assert code == 0
        assert "temperature_k=400" in out
        assert "0 failures" in out

    def test_set_parses_json_lists(self, capsys):
        code = main(["fig6", "--no-plot", "--set", "gcrs=[0.45,0.65]"])
        out = capsys.readouterr().out
        assert code == 0
        assert "GCR=45%" in out and "GCR=65%" in out

    def test_unknown_set_key_is_an_error(self, capsys):
        code = main(["fig6", "--no-plot", "--set", "bogus_key=1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "bogus_key" in err

    def test_malformed_set_is_an_error(self, capsys):
        code = main(["fig6", "--no-plot", "--set", "novalue"])
        assert code == 2


class TestRunnerJsonExport:
    def test_json_dir_exports_result(self, tmp_path, capsys):
        import json

        code = main(["fig6", "--no-plot", "--json-dir", str(tmp_path)])
        assert code == 0
        record = json.loads((tmp_path / "fig6.json").read_text())
        assert record["experiment_id"] == "fig6"
        assert len(record["series"]) == 4
        assert all(c["passed"] for c in record["checks"])

    def test_json_round_trip_through_io(self, tmp_path):
        from repro.io import experiment_result_from_dict, load_json

        main(["fig6", "--no-plot", "--json-dir", str(tmp_path)])
        restored = experiment_result_from_dict(
            load_json(tmp_path / "fig6.json")
        )
        import numpy as np

        from repro.experiments import run_experiment

        fresh = run_experiment("fig6")
        for a, b in zip(restored.series, fresh.series):
            np.testing.assert_allclose(a.y, b.y, rtol=1e-12)


class TestRunnerPlanMode:
    def _write_plan(self, tmp_path):
        import json

        plan = {
            "name": "cli-plan",
            "scenarios": [
                {"experiment_id": "fig6", "overrides": {"n_points": 10}},
                {"experiment_id": "fig8", "overrides": {"n_points": 10}},
                {
                    "experiment_id": "fig7",
                    "sweep": {"temperature_k": [0.0, 300.0]},
                    "overrides": {"n_points": 8},
                },
            ],
        }
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan))
        return path

    def test_plan_runs_through_one_session(self, tmp_path, capsys):
        code = main(
            ["--plan", str(self._write_plan(tmp_path)), "--no-plot"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4 scenarios" in out
        assert "cross-scenario cache hits" in out

    def test_plan_exports_scenario_records(self, tmp_path, capsys):
        import json

        out_dir = tmp_path / "out"
        code = main(
            [
                "--plan",
                str(self._write_plan(tmp_path)),
                "--no-plot",
                "--json-dir",
                str(out_dir),
            ]
        )
        assert code == 0
        records = sorted(out_dir.glob("*.json"))
        assert len(records) == 4
        first = json.loads(records[0].read_text())
        assert "scenario" in first and "result" in first

    def test_plan_conflicts_with_set(self, tmp_path, capsys):
        code = main(
            [
                "--plan",
                str(self._write_plan(tmp_path)),
                "--set",
                "temperature_k=400",
            ]
        )
        assert code == 2

    def test_missing_plan_file_is_an_error(self, tmp_path, capsys):
        code = main(["--plan", str(tmp_path / "absent.json")])
        assert code == 2

    def test_malformed_plan_file_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text('{"scenarios": [')
        code = main(["--plan", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err

    def test_repeated_scenarios_export_distinct_files(self, tmp_path, capsys):
        import json

        plan = {
            "scenarios": [
                {"experiment_id": "fig6", "overrides": {"n_points": 8}},
                {"experiment_id": "fig6", "overrides": {"n_points": 8}},
            ]
        }
        plan_path = tmp_path / "twice.json"
        plan_path.write_text(json.dumps(plan))
        out_dir = tmp_path / "out"
        code = main(
            ["--plan", str(plan_path), "--no-plot", "--json-dir", str(out_dir)]
        )
        assert code == 0
        assert len(list(out_dir.glob("*.json"))) == 2
