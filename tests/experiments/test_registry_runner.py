"""Experiment registry and CLI runner."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    PAPER_FIGURES,
    available_experiments,
    get_experiment,
    run_experiment,
)
from repro.experiments.runner import main


class TestRegistry:
    def test_all_paper_figures_registered(self):
        available = available_experiments()
        for fid in PAPER_FIGURES:
            assert fid in available

    def test_ablations_registered(self):
        available = available_experiments()
        for aid in ("abl-wkb", "abl-cq", "abl-temp"):
            assert aid in available

    def test_unknown_id_raises_with_listing(self):
        with pytest.raises(ConfigurationError) as err:
            get_experiment("fig99")
        assert "fig6" in str(err.value)

    def test_run_experiment_returns_result(self):
        result = run_experiment("fig6")
        assert result.experiment_id == "fig6"


class TestRunnerCli:
    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "abl-temp" in out

    def test_single_experiment_run(self, capsys):
        code = main(["fig6", "--no-plot"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 failures" in out
        assert "fig6" in out

    def test_csv_export(self, tmp_path, capsys):
        code = main(["fig6", "--no-plot", "--csv-dir", str(tmp_path)])
        assert code == 0
        csv_file = tmp_path / "fig6.csv"
        assert csv_file.exists()
        header = csv_file.read_text().splitlines()[0]
        assert header == "series,V_GS [V],J_FN [A/m^2]"

    def test_plot_mode_renders_axes(self, capsys):
        code = main(["fig7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "XTO=4nm" in out

    def test_paper_only_runs_exactly_the_figures(self, capsys):
        code = main(["--paper-only", "--no-plot"])
        out = capsys.readouterr().out
        assert code == 0
        for fid in PAPER_FIGURES:
            assert f"{fid}:" in out
        assert "abl-wkb" not in out
        assert "cmp-si" not in out
