"""The shard supervisor: retries, deadlines, splitting, partial salvage.

Exercises :func:`repro.api.run_plan_parallel`'s fault-tolerance layer
through the deterministic injector (:mod:`repro.testing.faults`) on the
thread executor, where everything stays in-process and cheap. The
process-pool (genuine ``os._exit``) variants live in ``tests/chaos``.

The load-bearing contract in every recovery test: a retried or split
shard reuses its derived seed, so whatever the supervisor had to do to
finish, the surviving results are bit-identical to the serial run.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    RunPlan,
    Scenario,
    ShardExecutionError,
    ShardFailure,
    SimulationSession,
    merge_shard_results,
    run_plan_parallel,
    run_shard,
    shard_plan,
)
from repro.errors import ConfigurationError
from repro.io import experiment_result_to_dict
from repro.testing import FaultSpec, InjectedFault, faults_installed

# Three concrete scenarios; round-robin over two workers puts positions
# (0, 2) on shard 0 and (1,) on shard 1 -- small enough to retry
# repeatedly in the suite, structured enough to salvage around a loss.
PLAN = RunPlan(
    name="supervisor-suite",
    scenarios=(
        Scenario("fig6", overrides={"n_points": 6},
                 sweep={"temperature_k": [300.0, 400.0]}),
        Scenario("abl-temp", overrides={"n_points": 4}),
    ),
)
SEED = 5


def _canonical(result) -> str:
    return json.dumps(experiment_result_to_dict(result), sort_keys=True)


@pytest.fixture(scope="module")
def serial():
    """The reference serial run every recovered result must reproduce."""
    return SimulationSession(seed=SEED).run_plan(PLAN)


class TestRetryRecovery:
    def test_one_shot_failure_recovers_bit_identically(self, serial):
        """A shard that fails once is retried and loses nothing."""
        with faults_installed(FaultSpec(kind="raise", shard=0, attempt=0)):
            outcome = run_plan_parallel(
                PLAN, workers=2, executor="thread", seed=SEED
            )
        assert outcome.complete
        assert outcome.failed_positions == ()
        for ours, theirs in zip(
            serial.scenario_results, outcome.scenario_results
        ):
            assert _canonical(ours.result) == _canonical(theirs.result)

    def test_mid_shard_failure_recovers(self, serial):
        """Failing *after* completed work still retries the whole unit."""
        with faults_installed(
            FaultSpec(kind="raise", shard=0, attempt=0, position=2)
        ):
            outcome = run_plan_parallel(
                PLAN, workers=2, executor="thread", seed=SEED
            )
        assert outcome.complete
        assert _canonical(outcome.scenario_results[2].result) == _canonical(
            serial.scenario_results[2].result
        )

    def test_zero_retries_fails_fast(self):
        with faults_installed(FaultSpec(kind="raise", shard=0)):
            with pytest.raises(
                ShardExecutionError, match=r"after 1 attempt\(s\)"
            ):
                run_plan_parallel(
                    PLAN,
                    workers=2,
                    executor="thread",
                    seed=SEED,
                    max_shard_retries=0,
                )

    def test_configuration_errors_are_never_retried(self):
        """A bad plan fails once, with shard context, however many
        retries the budget allows."""
        bad = RunPlan(scenarios=(Scenario("no-such-experiment"),))
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            run_plan_parallel(
                bad, workers=2, executor="thread", max_shard_retries=3,
                timeout_s=30.0,
            )


class TestPartialSalvage:
    def test_split_isolates_the_poison_scenario(self, serial):
        """A persistent per-scenario fault loses only that scenario."""
        with faults_installed(FaultSpec(kind="raise", position=2)):
            outcome = run_plan_parallel(
                PLAN,
                workers=2,
                executor="thread",
                seed=SEED,
                max_shard_retries=1,
                raise_on_failure=False,
            )
        assert not outcome.complete
        assert outcome.failed_positions == (2,)
        salvaged = outcome.results_by_position()
        assert sorted(salvaged) == [0, 1]
        for position, scenario_result in salvaged.items():
            assert _canonical(scenario_result.result) == _canonical(
                serial.scenario_results[position].result
            )
        (failure,) = outcome.failures
        assert failure.index == 0
        assert failure.cause == "error"
        assert failure.positions == (2,)
        assert len(failure.scenario_ids) == 1
        assert failure.attempts == 2
        assert "InjectedFault" in failure.message

    def test_split_disabled_loses_the_whole_shard(self):
        with faults_installed(FaultSpec(kind="raise", position=2)):
            outcome = run_plan_parallel(
                PLAN,
                workers=2,
                executor="thread",
                seed=SEED,
                max_shard_retries=1,
                raise_on_failure=False,
                split_failed_shards=False,
            )
        assert outcome.failed_positions == (0, 2)
        (failure,) = outcome.failures
        assert failure.positions == (0, 2)

    def test_raise_on_failure_names_the_lost_scenarios(self):
        with faults_installed(FaultSpec(kind="raise", shard=1)):
            with pytest.raises(ShardExecutionError) as excinfo:
                run_plan_parallel(
                    PLAN,
                    workers=2,
                    executor="thread",
                    seed=SEED,
                    max_shard_retries=1,
                )
        error = excinfo.value
        assert "shard 1" in str(error)
        assert "fig6" in str(error)
        assert isinstance(error.__cause__, InjectedFault)
        assert isinstance(error.failure, ShardFailure)
        assert error.failure.index == 1
        assert error.failure.attempts == 2
        assert error.failure.positions == (1,)


class TestDeadlines:
    def test_timed_out_shard_retries_on_a_fresh_pool(self, serial):
        """Blowing the per-shard deadline once costs time, not results."""
        with faults_installed(
            FaultSpec(kind="hang", shard=0, attempt=0, seconds=2.0)
        ):
            outcome = run_plan_parallel(
                PLAN,
                workers=2,
                executor="thread",
                seed=SEED,
                timeout_s=0.3,
            )
        assert outcome.complete
        for ours, theirs in zip(
            serial.scenario_results, outcome.scenario_results
        ):
            assert _canonical(ours.result) == _canonical(theirs.result)

    def test_exhausted_deadline_is_a_typed_timeout_failure(self):
        plan = RunPlan(
            scenarios=(Scenario("abl-temp", overrides={"n_points": 4}),)
        )
        with faults_installed(FaultSpec(kind="hang", seconds=1.0)):
            outcome = run_plan_parallel(
                plan,
                workers=1,
                executor="thread",
                seed=SEED,
                timeout_s=0.15,
                max_shard_retries=0,
                raise_on_failure=False,
            )
        assert not outcome.complete
        (failure,) = outcome.failures
        assert failure.cause == "timeout"
        assert "deadline" in failure.message
        assert outcome.scenario_results == ()

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ConfigurationError, match="timeout_s"):
            run_plan_parallel(PLAN, timeout_s=0.0)

    def test_invalid_retry_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="max_shard_retries"):
            run_plan_parallel(PLAN, max_shard_retries=-1)


class TestPartialMerge:
    def _outputs(self, shards):
        return tuple(run_shard(s, seed=SEED) for s in shards)

    def test_failures_complete_the_partition(self):
        shards = shard_plan(PLAN, 2, "round-robin")
        outputs = self._outputs(shards[:1])  # positions (0, 2) computed
        failure = ShardFailure(
            index=1, positions=(1,), scenario_ids=("x",),
            attempts=2, cause="crash",
        )
        merged = merge_shard_results(PLAN, outputs, failures=(failure,))
        assert not merged.complete
        assert merged.failed_positions == (1,)
        assert sorted(merged.results_by_position()) == [0, 2]

    def test_overlapping_failure_rejected(self):
        shards = shard_plan(PLAN, 2, "round-robin")
        outputs = self._outputs(shards)  # every position computed
        failure = ShardFailure(
            index=1, positions=(1,), scenario_ids=("x",),
            attempts=1, cause="error",
        )
        with pytest.raises(ConfigurationError, match="twice"):
            merge_shard_results(PLAN, outputs, failures=(failure,))

    def test_uncovered_position_rejected(self):
        shards = shard_plan(PLAN, 2, "round-robin")
        outputs = self._outputs(shards[:1])  # position 1 never accounted
        with pytest.raises(ConfigurationError, match="partition"):
            merge_shard_results(PLAN, outputs)
