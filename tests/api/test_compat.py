"""Protocol-redesign compatibility: shim, laziness, bit-for-bit defaults."""

import subprocess
import sys

import numpy as np
import pytest

from repro.api import SimulationSession, ensure_context
from repro.errors import ConfigurationError
from repro.experiments import (
    available_experiments,
    get_experiment,
    run_experiment,
)
from repro.experiments.registry import _SPECS, resolve_experiment

ALL_IDS = available_experiments()


class TestZeroArgShim:
    @pytest.mark.parametrize("experiment_id", ["fig6", "abl-cq"])
    def test_zero_arg_call_still_works(self, experiment_id):
        result = get_experiment(experiment_id)()
        assert result.experiment_id == experiment_id

    @pytest.mark.parametrize("experiment_id", ["fig6", "fig8", "abl-wkb"])
    def test_default_params_reproduce_zero_arg_bit_for_bit(
        self, experiment_id
    ):
        legacy = run_experiment(experiment_id)
        session = SimulationSession().run(experiment_id)
        assert len(legacy.series) == len(session.series)
        for a, b in zip(legacy.series, session.series):
            np.testing.assert_allclose(a.y, b.y, rtol=1e-9)
            assert np.array_equal(a.x, b.x)

    def test_run_experiment_with_context_uses_session_caches(self):
        from repro.engine import default_caches

        default_caches().clear()
        session = SimulationSession()
        run_experiment("fig6", session.context(), n_points=8)
        assert session.cache_stats().misses > 0
        stats = default_caches().stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_run_experiment_unknown_param_is_configuration_error(self):
        with pytest.raises(ConfigurationError) as err:
            run_experiment("fig6", None, bogus=1)
        assert "accepted overrides" in str(err.value)

    def test_ensure_context_rejects_wrong_type(self):
        with pytest.raises(ConfigurationError):
            ensure_context("not a context")

    def test_ensure_context_passthrough(self):
        ctx = SimulationSession().context()
        assert ensure_context(ctx) is ctx


class TestProtocol:
    @pytest.mark.parametrize("experiment_id", ALL_IDS)
    def test_every_experiment_accepts_a_context(self, experiment_id):
        import inspect

        fn = resolve_experiment(experiment_id)
        parameters = inspect.signature(fn).parameters
        assert "ctx" in parameters
        assert parameters["ctx"].default is None

    @pytest.mark.parametrize("experiment_id", ALL_IDS)
    def test_every_experiment_has_an_override(self, experiment_id):
        from repro.api import accepted_parameters

        fn = resolve_experiment(experiment_id)
        assert accepted_parameters(fn), (
            f"{experiment_id} accepts no parameter overrides"
        )

    def test_fig6_temperature_override_is_distinct_and_checked(self):
        # The acceptance scenario: fig6 at 400 K differs from the paper
        # default yet still satisfies every shape check.
        session = SimulationSession()
        cold = session.run("fig6")
        hot = session.run("fig6", temperature_k=400.0)
        assert hot.all_checks_pass
        assert len(hot.series) == len(cold.series)
        for c, h in zip(cold.series, hot.series):
            assert h.y.shape == c.y.shape
            assert not np.allclose(c.y, h.y)
            assert np.all(h.y > c.y)  # thermal broadening raises J


class TestLazyRegistry:
    def test_broken_module_does_not_break_others(self, monkeypatch):
        monkeypatch.setitem(
            _SPECS, "broken", "repro.experiments.does_not_exist:run"
        )
        with pytest.raises(ConfigurationError) as err:
            resolve_experiment("broken")
        assert "does_not_exist" in str(err.value)
        assert run_experiment("fig6").experiment_id == "fig6"

    def test_missing_attribute_reported(self, monkeypatch):
        monkeypatch.setitem(
            _SPECS, "broken-attr", "repro.experiments.fig6:no_such_run"
        )
        with pytest.raises(ConfigurationError):
            resolve_experiment("broken-attr")

    def test_import_api_does_not_import_figure_modules(self):
        code = (
            "import sys; import repro.api; "
            "mods = [m for m in sys.modules if m.startswith("
            "'repro.experiments.fig')]; "
            "assert not mods, mods; print('lazy-ok')"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=False,
        )
        assert proc.returncode == 0, proc.stderr
        assert "lazy-ok" in proc.stdout
