"""SimulationSession: cache isolation, defaults, context builders."""

import numpy as np
import pytest

from repro.api import SimulationSession
from repro.engine import active_caches, default_caches
from repro.errors import ConfigurationError
from repro.memory import WorkloadSpec


class TestCacheIsolation:
    def test_two_sessions_do_not_share_cache_state(self):
        a = SimulationSession()
        b = SimulationSession()
        a.run("fig6")
        assert a.cache_stats().misses > 0
        assert b.cache_stats().hits == 0
        assert b.cache_stats().misses == 0
        assert b.cache_stats().currsize == 0

    def test_session_work_does_not_touch_default_caches(self):
        default_caches().clear()
        SimulationSession().run("fig6")
        stats = default_caches().stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_repeat_run_hits_session_cache(self):
        session = SimulationSession()
        session.run("fig6")
        before = session.cache_stats().hits
        session.run("fig6")
        assert session.cache_stats().hits > before

    def test_activate_restores_previous_cache_set(self):
        session = SimulationSession()
        outside = active_caches()
        with session.activate():
            assert active_caches() is session.caches
        assert active_caches() is outside

    def test_clear_caches_is_per_session(self):
        a = SimulationSession()
        b = SimulationSession()
        a.run("fig6")
        b.run("fig6")
        a.clear_caches()
        assert a.cache_stats().currsize == 0
        assert b.cache_stats().currsize > 0

    def test_concurrent_sessions_on_threads_stay_isolated(self):
        import threading

        sessions = [SimulationSession() for _ in range(4)]
        errors = []

        def work(session):
            try:
                for _ in range(3):
                    session.run("fig6")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(s,)) for s in sessions
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Each session served its own reruns from its own set: one
        # coefficient-pair miss each, never a neighbour's entries.
        for session in sessions:
            stats = session.cache_stats()
            assert stats.misses == 1
            assert stats.hits == 2


class TestParameters:
    def test_unknown_parameter_rejected_with_listing(self):
        session = SimulationSession()
        with pytest.raises(ConfigurationError) as err:
            session.run("fig6", not_a_param=1.0)
        assert "temperature_k" in str(err.value)

    def test_session_defaults_apply_where_accepted(self):
        plain = SimulationSession().run("fig6")
        heated = SimulationSession(
            defaults={"temperature_k": 400.0}
        ).run("fig6")
        assert not np.allclose(plain.series[0].y, heated.series[0].y)

    def test_session_defaults_skipped_where_not_accepted(self):
        session = SimulationSession(defaults={"temperature_k": 400.0})
        result = session.run("abl-cq")  # accepts no temperature
        assert result.experiment_id == "abl-cq"

    def test_explicit_param_overrides_session_default(self):
        session = SimulationSession(defaults={"temperature_k": 400.0})
        cold = session.run("fig6", temperature_k=0.0)
        assert cold.parameters["temperature_k"] == 0.0


class TestContextBuilders:
    def test_device_geometry_overrides(self):
        ctx = SimulationSession().context()
        device = ctx.device(tunnel_oxide_nm=6.0, control_oxide_nm=10.0)
        assert device.geometry.tunnel_oxide_thickness_m == pytest.approx(6e-9)
        assert device.geometry.control_oxide_thickness_m == pytest.approx(1e-8)

    def test_device_gcr_override(self):
        ctx = SimulationSession().context()
        device = ctx.device(gcr=0.5)
        assert device.gate_coupling_ratio == pytest.approx(0.5)

    def test_default_device_matches_reference(self):
        from repro.device import FloatingGateTransistor

        assert SimulationSession().device() == FloatingGateTransistor()

    def test_bias_lookup_and_override(self):
        ctx = SimulationSession().context()
        assert ctx.bias("program").voltages.vgs == 15.0
        assert ctx.bias("erase", vgs_v=-12.0).voltages.vgs == -12.0
        with pytest.raises(ConfigurationError):
            ctx.bias("bogus")

    def test_sweep_settings_override(self):
        ctx = SimulationSession().context()
        settings = ctx.sweep_settings(temperature_k=300.0)
        assert settings.temperature_k == 300.0
        assert ctx.sweep_settings().temperature_k == 0.0


class TestDeterminism:
    def test_equal_seeds_replay_workloads(self):
        spec = WorkloadSpec(
            kind="uniform", n_requests=16, capacity_pages=32, page_bits=8
        )
        pages_a = [
            r.logical_page for r in SimulationSession(seed=5).workload(spec)
        ]
        pages_b = [
            r.logical_page for r in SimulationSession(seed=5).workload(spec)
        ]
        assert pages_a == pages_b

    def test_different_seeds_differ(self):
        spec = WorkloadSpec(
            kind="uniform", n_requests=32, capacity_pages=1024, page_bits=8
        )
        pages_a = [
            r.logical_page for r in SimulationSession(seed=5).workload(spec)
        ]
        pages_b = [
            r.logical_page for r in SimulationSession(seed=6).workload(spec)
        ]
        assert pages_a != pages_b

    def test_explicit_spec_seed_wins(self):
        spec = WorkloadSpec(
            kind="zipf",
            n_requests=16,
            capacity_pages=64,
            page_bits=8,
            seed=99,
        )
        pages_a = [
            r.logical_page for r in SimulationSession(seed=1).workload(spec)
        ]
        pages_b = [
            r.logical_page for r in SimulationSession(seed=2).workload(spec)
        ]
        assert pages_a == pages_b

    def test_rng_streams_are_independent(self):
        session = SimulationSession(seed=4)
        first = session.rng().integers(0, 1 << 30, 8).tolist()
        second = session.rng().integers(0, 1 << 30, 8).tolist()
        assert first != second


class TestKernelAndOptimizer:
    def test_cell_kernel_memoized_per_session(self):
        session = SimulationSession()
        assert session.cell_kernel() is session.cell_kernel()
        assert session.cache_stats().misses > 0

    def test_optimizer_consumes_session_caches(self):
        from repro.optimization import ConstraintSet, optimise_program_time

        session = SimulationSession()
        result = optimise_program_time(
            constraints=ConstraintSet(
                max_tunnel_field_v_per_m=2.6e9,
                max_program_time_s=1e-2,
                min_memory_window_v=2.0,
                min_cycles=1e4,
            ),
            max_evaluations=25,
            session=session,
        )
        assert result.evaluations > 0
        assert session.cache_stats().misses > 0
