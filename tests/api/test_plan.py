"""RunPlan execution: one session, many scenarios, visible cache reuse."""

import json

import numpy as np
import pytest

from repro.api import RunPlan, Scenario, SimulationSession, run_scenario
from repro.errors import ConfigurationError
from repro.io import plan_result_to_dict, run_plan_from_dict, run_plan_to_dict


@pytest.fixture(scope="module")
def plan():
    return RunPlan(
        name="coverage",
        scenarios=(
            Scenario("fig6", overrides={"n_points": 12}),
            Scenario("fig8", overrides={"n_points": 12}),
            Scenario(
                "fig7",
                overrides={"n_points": 10},
                sweep={"temperature_k": [0.0, 300.0]},
            ),
        ),
    )


@pytest.fixture(scope="module")
def outcome(plan):
    return SimulationSession(seed=11).run_plan(plan)


class TestPlanExecution:
    def test_expansion_count(self, plan, outcome):
        assert len(plan.expanded()) == 4
        assert len(outcome.scenario_results) == 4

    def test_all_scenarios_shape_checked(self, outcome):
        assert outcome.all_checks_pass
        assert all(r.result.checks for r in outcome.scenario_results)

    def test_cross_scenario_cache_hits_reported(self, outcome):
        # fig6/fig7/fig8 share one FN coefficient pair: every scenario
        # after the first must be served from the session cache.
        assert outcome.cross_scenario_hits > 0
        later = outcome.scenario_results[1:]
        assert all(r.cache_stats.misses == 0 for r in later)
        assert all(r.reused_hits > 0 for r in later)
        assert outcome.scenario_results[0].reused_hits == 0

    def test_disjoint_scenarios_report_no_false_reuse(self):
        # Two transients at different gate voltages compile different
        # cells; each scenario re-hits only its *own* entry, which must
        # not count as cross-scenario reuse.
        outcome = SimulationSession().run_plan(
            RunPlan(
                scenarios=(
                    Scenario("fig5", overrides={"vgs_v": 15.0, "n_samples": 20}),
                    Scenario("fig5", overrides={"vgs_v": 16.0, "n_samples": 20}),
                )
            )
        )
        assert outcome.cross_scenario_hits == 0
        assert outcome.scenario_results[1].cache_stats.hits > 0

    def test_repeated_scenario_reports_real_reuse(self):
        scenario = Scenario("fig5", overrides={"n_samples": 20})
        outcome = SimulationSession().run_plan(
            RunPlan(scenarios=(scenario, scenario))
        )
        second = outcome.scenario_results[1]
        assert second.reused_hits > 0
        assert second.cache_stats.misses == 0
        assert second.cache_stats.currsize == 0  # added no entries

    def test_elapsed_recorded(self, outcome):
        assert all(r.elapsed_s >= 0.0 for r in outcome.scenario_results)

    def test_plan_totals_match_scenario_deltas(self, outcome):
        assert outcome.cache_stats.hits == sum(
            r.cache_stats.hits for r in outcome.scenario_results
        )

    def test_plan_results_match_direct_runs(self, outcome):
        direct = SimulationSession().run("fig6", n_points=12)
        first = outcome.scenario_results[0].result
        for a, b in zip(direct.series, first.series):
            assert np.array_equal(a.y, b.y)


class TestRunScenario:
    def test_family_scenario_rejected(self):
        session = SimulationSession()
        family = Scenario("fig6", sweep={"temperature_k": [0.0, 300.0]})
        with pytest.raises(ConfigurationError):
            run_scenario(session, family)

    def test_single_scenario_runs(self):
        session = SimulationSession()
        result = session.run_scenario(
            Scenario("fig6", overrides={"temperature_k": 300.0})
        )
        assert result.result.experiment_id == "fig6"
        assert result.all_checks_pass


class TestPlanSerialization:
    def test_dict_round_trip(self, plan):
        assert run_plan_from_dict(run_plan_to_dict(plan)) == plan

    def test_file_round_trip(self, plan, tmp_path):
        path = plan.save(tmp_path / "plan.json")
        assert RunPlan.load(path) == plan

    def test_empty_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            RunPlan(scenarios=())

    def test_plan_result_record_is_plain_json(self, outcome):
        record = plan_result_to_dict(outcome)
        text = json.dumps(record)
        assert "cross_scenario_hits" in text
        assert len(record["scenario_results"]) == 4
