"""The deterministic fault injector: specs, matching, env plumbing.

:mod:`repro.testing.faults` is the chaos harness every supervisor and
chaos test stands on, so its own contracts are pinned here: spec
validation, exact-vs-wildcard coordinate matching, JSON round-trips
through the ``REPRO_FAULTS`` encoding, the ``faults_installed``
save/restore discipline, and each ``maybe_inject`` behaviour (raise,
slow-then-continue, crash downgraded to a raise outside process
pools, hang bounded by its ``seconds``).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.testing import (
    FAULT_KINDS,
    FAULTS_ENV,
    FaultSpec,
    InjectedFault,
    active_faults,
    decode_faults,
    encode_faults,
    faults_installed,
    maybe_inject,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown fault kind"):
            FaultSpec(kind="explode")

    def test_negative_seconds_rejected(self):
        with pytest.raises(ReproError, match="seconds"):
            FaultSpec(kind="slow", seconds=-1.0)

    def test_exact_selectors_match_exactly(self):
        spec = FaultSpec(kind="raise", shard=2, attempt=1, position=5)
        assert spec.matches(2, 1, 5, first_position=False)
        assert not spec.matches(1, 1, 5, first_position=False)
        assert not spec.matches(2, 0, 5, first_position=False)
        assert not spec.matches(2, 1, 4, first_position=True)

    def test_wildcards_match_any_coordinate(self):
        spec = FaultSpec(kind="raise", position=3)
        assert spec.matches(0, 0, 3, first_position=False)
        assert spec.matches(7, 4, 3, first_position=False)

    def test_none_position_targets_only_the_first_scenario(self):
        spec = FaultSpec(kind="raise", shard=1)
        assert spec.matches(1, 0, 9, first_position=True)
        assert not spec.matches(1, 0, 9, first_position=False)

    def test_from_dict_requires_a_kind(self):
        with pytest.raises(ReproError, match="kind"):
            FaultSpec.from_dict({"shard": 0})

    @given(
        kind=st.sampled_from(FAULT_KINDS),
        shard=st.none() | st.integers(0, 64),
        attempt=st.none() | st.integers(0, 8),
        position=st.none() | st.integers(0, 512),
        seconds=st.floats(0.0, 120.0, allow_nan=False),
        message=st.text(max_size=40),
    )
    def test_dict_round_trip(
        self, kind, shard, attempt, position, seconds, message
    ):
        spec = FaultSpec(
            kind=kind,
            shard=shard,
            attempt=attempt,
            position=position,
            seconds=seconds,
            message=message,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestEncoding:
    def test_encode_decode_round_trip(self):
        specs = (
            FaultSpec(kind="crash", shard=2, attempt=1),
            FaultSpec(kind="slow", seconds=0.25, message="straggler"),
        )
        assert decode_faults(encode_faults(specs)) == specs

    def test_decode_rejects_garbage(self):
        with pytest.raises(ReproError, match="unparseable"):
            decode_faults("not json")

    def test_decode_rejects_non_list(self):
        with pytest.raises(ReproError, match="JSON list"):
            decode_faults('{"kind": "raise"}')

    def test_active_faults_empty_without_env(self):
        assert active_faults(environ={}) == ()

    def test_active_faults_reads_the_env_var(self):
        spec = FaultSpec(kind="raise", shard=3)
        env = {FAULTS_ENV: encode_faults([spec])}
        assert active_faults(environ=env) == (spec,)


class TestFaultsInstalled:
    def test_installs_and_removes(self):
        spec = FaultSpec(kind="raise", shard=0)
        assert FAULTS_ENV not in os.environ
        with faults_installed(spec):
            assert active_faults() == (spec,)
        assert FAULTS_ENV not in os.environ

    def test_restores_previous_value(self):
        outer = FaultSpec(kind="slow", seconds=0.0)
        inner = FaultSpec(kind="raise")
        with faults_installed(outer):
            with faults_installed(inner):
                assert active_faults() == (inner,)
            assert active_faults() == (outer,)

    def test_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with faults_installed(FaultSpec(kind="raise")):
                raise RuntimeError("boom")
        assert FAULTS_ENV not in os.environ


class TestMaybeInject:
    def _env(self, *specs):
        return {FAULTS_ENV: encode_faults(list(specs))}

    def test_no_op_without_faults(self):
        maybe_inject(0, 0, 0, first_position=True, environ={})

    def test_no_op_when_coordinates_miss(self):
        env = self._env(FaultSpec(kind="raise", shard=2))
        maybe_inject(0, 0, 0, first_position=True, environ=env)

    def test_raise_kind_raises(self):
        env = self._env(
            FaultSpec(kind="raise", shard=1, attempt=0, message="kaboom")
        )
        with pytest.raises(InjectedFault, match="shard 1, attempt 0"):
            maybe_inject(1, 0, 4, first_position=True, environ=env)

    def test_crash_downgrades_to_raise_without_allow_crash(self):
        # Guards the host interpreter: a crash spec reaching a thread
        # or inline worker must raise, never os._exit.
        env = self._env(FaultSpec(kind="crash", shard=0))
        with pytest.raises(InjectedFault, match="downgraded"):
            maybe_inject(
                0, 0, 0, first_position=True, allow_crash=False, environ=env
            )

    def test_hang_raises_after_its_bounded_sleep(self):
        env = self._env(FaultSpec(kind="hang", seconds=0.0))
        with pytest.raises(InjectedFault, match="hang"):
            maybe_inject(0, 0, 0, first_position=True, environ=env)

    def test_slow_continues_normally(self):
        env = self._env(FaultSpec(kind="slow", seconds=0.0))
        maybe_inject(0, 0, 0, first_position=True, environ=env)

    def test_first_matching_spec_wins(self):
        env = self._env(
            FaultSpec(kind="slow", seconds=0.0, message="first"),
            FaultSpec(kind="raise", message="second"),
        )
        # The slow spec matches first and returns; the raise never fires.
        maybe_inject(0, 0, 0, first_position=True, environ=env)

    def test_injected_fault_is_retryable(self):
        from repro.errors import ConfigurationError

        assert not issubclass(InjectedFault, ConfigurationError)
