"""Property-based tests for the scenario layer's data contracts.

Hypothesis generates adversarial-but-valid scenarios, plans and result
records and checks the invariants the executor and io layers lean on:

* ``Scenario`` / ``RunPlan`` / ``ScenarioResult`` survive their JSON
  round trips exactly (through real ``json.dumps``/``loads`` text, not
  just dict conversion), and
* ``RunPlan.expanded()`` is the cartesian product it claims to be --
  count, ordering and override precedence.

Hypothesis ships in the ``dev`` extra; when it is absent the module
skips as a whole (``pytest.importorskip``) instead of failing
collection, so the tier-1 suite still runs on minimal installs.
"""

from __future__ import annotations

import itertools
import json
import math

import pytest

hypothesis = pytest.importorskip(
    "hypothesis", reason="property tests need the dev extra (hypothesis)"
)

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.api import RunPlan, Scenario, ScenarioResult  # noqa: E402
from repro.engine.cache import CacheStats  # noqa: E402
from repro.experiments.base import ExperimentResult, ShapeCheck  # noqa: E402
from repro.io import (  # noqa: E402
    run_plan_from_dict,
    run_plan_to_dict,
    scenario_from_dict,
    scenario_result_from_dict,
    scenario_result_to_dict,
    scenario_to_dict,
)
from repro.reporting.ascii_plot import PlotSeries  # noqa: E402

# JSON-representable scalars that survive a text round trip exactly:
# finite floats (repr round-trips), bounded ints, bools, short text.
scalars = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.booleans(),
    st.text(max_size=12),
)

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=10
)


@st.composite
def scenarios(draw):
    """A valid Scenario: overrides and sweep axes over disjoint names."""
    keys = draw(
        st.lists(names, unique=True, max_size=6)
    )
    split = draw(st.integers(min_value=0, max_value=len(keys)))
    overrides = {k: draw(scalars) for k in keys[:split]}
    sweep = {
        k: tuple(
            draw(st.lists(scalars, min_size=1, max_size=3))
        )
        for k in keys[split:]
    }
    return Scenario(
        experiment_id=draw(names),
        overrides=overrides,
        sweep=sweep,
        label=draw(st.one_of(st.none(), st.text(max_size=12))),
    )


@st.composite
def plans(draw):
    """A valid RunPlan of 1..4 scenario families."""
    return RunPlan(
        name=draw(st.text(max_size=12)),
        scenarios=tuple(
            draw(st.lists(scenarios(), min_size=1, max_size=4))
        ),
    )


def _through_json(record):
    """A real serialize/parse cycle, not just dict identity."""
    return json.loads(json.dumps(record))


class TestScenarioRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(scenario=scenarios())
    def test_json_round_trip_is_identity(self, scenario):
        """Scenario -> JSON text -> Scenario reproduces the original."""
        rebuilt = scenario_from_dict(_through_json(scenario_to_dict(scenario)))
        assert rebuilt == scenario
        assert rebuilt.name == scenario.name

    @settings(max_examples=100, deadline=None)
    @given(plan=plans())
    def test_plan_json_round_trip_is_identity(self, plan):
        """RunPlan -> JSON text -> RunPlan reproduces the original."""
        assert run_plan_from_dict(_through_json(run_plan_to_dict(plan))) == plan


class TestExpansionInvariants:
    @settings(max_examples=100, deadline=None)
    @given(scenario=scenarios())
    def test_count_is_cartesian_product(self, scenario):
        """len(expand()) is the product of the axis lengths."""
        expected = math.prod(len(v) for v in scenario.sweep.values())
        assert len(scenario.expand()) == expected

    @settings(max_examples=100, deadline=None)
    @given(scenario=scenarios())
    def test_order_is_product_over_sorted_axes(self, scenario):
        """Expansion enumerates itertools.product over sorted axis names."""
        axes = sorted(scenario.sweep)
        points = [
            dict(zip(axes, values))
            for values in itertools.product(
                *(scenario.sweep[a] for a in axes)
            )
        ]
        expanded = scenario.expand()
        assert len(expanded) == len(points)
        for concrete, point in zip(expanded, points):
            for axis, value in point.items():
                assert concrete.overrides[axis] == value

    @settings(max_examples=100, deadline=None)
    @given(scenario=scenarios())
    def test_expansion_preserves_base_overrides(self, scenario):
        """Base overrides survive into every concrete scenario."""
        for concrete in scenario.expand():
            assert not concrete.sweep
            assert concrete.experiment_id == scenario.experiment_id
            for key, value in scenario.overrides.items():
                assert concrete.overrides[key] == value

    @settings(max_examples=100, deadline=None)
    @given(plan=plans())
    def test_plan_expansion_concatenates_in_order(self, plan):
        """A plan expands each family in place, preserving order."""
        concatenated = tuple(
            concrete
            for scenario in plan.scenarios
            for concrete in scenario.expand()
        )
        assert plan.expanded() == concatenated

    def test_sweep_axis_colliding_with_override_rejected(self):
        """The precedence question never arises: collisions are errors."""
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Scenario("fig6", overrides={"a": 1}, sweep={"a": [1, 2]})


@st.composite
def experiment_results(draw):
    """A synthetic ExperimentResult with JSON-faithful payloads."""
    n = draw(st.integers(min_value=1, max_value=5))
    series = tuple(
        PlotSeries(
            label=draw(st.text(max_size=8)),
            x=[
                draw(st.floats(allow_nan=False, allow_infinity=False))
                for _ in range(n)
            ],
            y=[
                draw(st.floats(allow_nan=False, allow_infinity=False))
                for _ in range(n)
            ],
        )
        for _ in range(draw(st.integers(min_value=1, max_value=3)))
    )
    checks = tuple(
        ShapeCheck(
            claim=draw(st.text(max_size=12)),
            passed=draw(st.booleans()),
            detail=draw(st.text(max_size=12)),
        )
        for _ in range(draw(st.integers(min_value=0, max_value=3)))
    )
    return ExperimentResult(
        experiment_id=draw(names),
        title=draw(st.text(max_size=12)),
        x_label=draw(st.text(max_size=8)),
        y_label=draw(st.text(max_size=8)),
        series=series,
        parameters={draw(names): draw(scalars)},
        checks=checks,
        log_y=draw(st.booleans()),
    )


@st.composite
def scenario_results(draw):
    """A ScenarioResult over a concrete scenario and synthetic counters."""
    concrete = draw(
        scenarios().filter(lambda s: not s.sweep)
    )
    counts = st.integers(min_value=0, max_value=10_000)
    per_cache = {
        name: (draw(counts), draw(counts), draw(counts))
        for name in draw(st.lists(names, unique=True, max_size=3))
    }
    stats = CacheStats(
        hits=sum(c[0] for c in per_cache.values()),
        misses=sum(c[1] for c in per_cache.values()),
        currsize=sum(c[2] for c in per_cache.values()),
        per_cache=tuple(per_cache.items()),
    )
    return ScenarioResult(
        scenario=concrete,
        result=draw(experiment_results()),
        elapsed_s=draw(
            st.floats(min_value=0.0, allow_nan=False, allow_infinity=False)
        ),
        cache_stats=stats,
        reused_hits=draw(counts),
    )


class TestScenarioResultRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(result=scenario_results())
    def test_json_round_trip_preserves_record(self, result):
        """ScenarioResult -> JSON text -> ScenarioResult is stable.

        Equality is checked on the canonical export record (the result
        holds numpy arrays, whose ``==`` is elementwise), which is
        exactly the fidelity the executor and io layers rely on.
        """
        record = scenario_result_to_dict(result)
        rebuilt = scenario_result_from_dict(_through_json(record))
        assert scenario_result_to_dict(rebuilt) == record
        assert rebuilt.scenario == result.scenario
        assert rebuilt.reused_hits == result.reused_hits
        assert rebuilt.cache_stats == result.cache_stats
