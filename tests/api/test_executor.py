"""The sharded executor: partitioning, determinism, merge contracts.

The spine of the suite is the executor's determinism contract: for the
same plan and seed, parallel execution must reproduce ``run_plan``'s
serial results *bit-identically* (canonical JSON equality on every
scenario result), checked here over three experiments and multiple
shard strategies, on both pool kinds. Around it: shard_plan unit
invariants, worker seeding, merge validation, and the regression test
for the documented order-dependence contract of cache attribution
(serial and parallel runs must agree on the conserved totals even
though reuse attribution legitimately differs).
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ParallelPlanResult,
    RunPlan,
    Scenario,
    SimulationSession,
    derive_worker_seed,
    merge_shard_results,
    run_plan_parallel,
    run_shard,
    scenario_cost,
    shard_plan,
)
from repro.errors import ConfigurationError
from repro.experiments.registry import experiment_cost
from repro.io import experiment_result_to_dict

# Three experiments (a temperature sweep, a GCR family and an ablation)
# expanded to seven concrete scenarios -- small enough for the suite,
# structured enough to exercise every strategy's grouping.
PLAN = RunPlan(
    name="executor-suite",
    scenarios=(
        Scenario("fig6", overrides={"n_points": 10},
                 sweep={"temperature_k": [0.0, 300.0, 400.0]}),
        Scenario("fig7", overrides={"n_points": 8},
                 sweep={"gcr": [0.5, 0.6, 0.7]}),
        Scenario("abl-temp", overrides={"n_points": 5}),
    ),
)
SEED = 11


def _canonical(result) -> str:
    return json.dumps(experiment_result_to_dict(result), sort_keys=True)


@pytest.fixture(scope="module")
def serial():
    """The reference serial run every parallel result must reproduce."""
    return SimulationSession(seed=SEED).run_plan(PLAN)


class TestShardPlan:
    @pytest.mark.parametrize(
        "shard_by", ["round-robin", "by-experiment", "by-cost"]
    )
    @pytest.mark.parametrize("workers", [1, 2, 3, 5, 16])
    def test_sharding_is_a_partition(self, shard_by, workers):
        """Every strategy covers each expanded scenario exactly once."""
        shards = shard_plan(PLAN, workers, shard_by)
        positions = sorted(p for s in shards for p, _ in s.items)
        assert positions == list(range(len(PLAN.expanded())))
        assert [s.index for s in shards] == list(range(len(shards)))
        assert len(shards) <= workers

    def test_round_robin_assignment(self):
        shards = shard_plan(PLAN, 2, "round-robin")
        assert [p for p, _ in shards[0].items] == [0, 2, 4, 6]
        assert [p for p, _ in shards[1].items] == [1, 3, 5]

    def test_by_experiment_keeps_families_together(self):
        shards = shard_plan(PLAN, 3, "by-experiment")
        for shard in shards:
            ids = {s.experiment_id for _, s in shard.items}
            # One experiment never straddles two shards.
            for other in shards:
                if other is not shard:
                    assert ids.isdisjoint(
                        {s.experiment_id for _, s in other.items}
                    )

    def test_by_cost_balances_on_hints(self):
        """LPT packing: no shard carries more than half the total cost
        when two shards are available and no single scenario dominates."""
        shards = shard_plan(PLAN, 2, "by-cost")
        costs = [shard.cost for shard in shards]
        assert sum(costs) == sum(
            scenario_cost(s) for s in PLAN.expanded()
        )
        heaviest = max(scenario_cost(s) for s in PLAN.expanded())
        assert max(costs) <= sum(costs) / 2 + heaviest

    def test_shards_run_in_plan_order_within_a_shard(self):
        for shard_by in ("round-robin", "by-experiment", "by-cost"):
            for shard in shard_plan(PLAN, 3, shard_by):
                positions = [p for p, _ in shard.items]
                assert positions == sorted(positions)

    def test_groups_sharing_a_bucket_stay_in_plan_order(self):
        """Regression: by-experiment packs heavy groups first (LPT), so
        a cheap-but-earlier group landing in the same bucket as a
        costlier later one must still run in plan order."""
        plan = RunPlan(
            scenarios=(
                Scenario("fig6"),  # cost 1.0, position 0
                Scenario("abl-wkb"),  # cost 400, packed first
            )
        )
        for shard_by in ("by-experiment", "by-cost"):
            (shard,) = shard_plan(plan, 1, shard_by)
            assert [p for p, _ in shard.items] == [0, 1]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            shard_plan(PLAN, 2, "by-vibes")

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            shard_plan(PLAN, 0)

    def test_cost_hints_resolve(self):
        assert experiment_cost("abl-wkb") > experiment_cost("fig6")
        assert experiment_cost("never-registered") == 1.0


class TestWorkerSeeding:
    def test_derivation_is_deterministic(self):
        assert derive_worker_seed(11, 3) == derive_worker_seed(11, 3)

    def test_derivation_separates_shards_and_seeds(self):
        seeds = {
            derive_worker_seed(root, shard)
            for root in (0, 1, 11, -5)
            for shard in (0, 1, 2, 3)
        }
        assert len(seeds) == 16  # no collisions across nearby inputs

    def test_worker_sessions_get_derived_seeds(self):
        shards = shard_plan(PLAN, 2, "round-robin")
        report, _ = run_shard(shards[1], seed=SEED)
        assert report.seed == derive_worker_seed(SEED, 1)
        assert report.index == 1


class TestDeterminismContract:
    """The acceptance bar: parallel == serial, bit for bit."""

    @pytest.mark.parametrize(
        "shard_by", ["round-robin", "by-experiment", "by-cost"]
    )
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_bit_identical_to_serial(
        self, serial, shard_by, executor
    ):
        parallel = run_plan_parallel(
            PLAN,
            workers=3,
            shard_by=shard_by,
            seed=SEED,
            executor=executor,
        )
        assert isinstance(parallel, ParallelPlanResult)
        assert len(parallel.scenario_results) == len(serial.scenario_results)
        for ours, theirs in zip(
            serial.scenario_results, parallel.scenario_results
        ):
            assert ours.scenario == theirs.scenario
            assert _canonical(ours.result) == _canonical(theirs.result)

    def test_single_worker_runs_inline_and_matches(self, serial):
        parallel = run_plan_parallel(PLAN, workers=1, seed=SEED)
        assert parallel.worker_count == 1
        for ours, theirs in zip(
            serial.scenario_results, parallel.scenario_results
        ):
            assert _canonical(ours.result) == _canonical(theirs.result)

    def test_parallel_runs_are_reproducible(self):
        first = run_plan_parallel(
            PLAN, workers=3, seed=SEED, executor="thread"
        )
        second = run_plan_parallel(
            PLAN, workers=3, seed=SEED, executor="thread"
        )
        for a, b in zip(first.scenario_results, second.scenario_results):
            assert _canonical(a.result) == _canonical(b.result)
        assert [r.seed for r in first.shard_reports] == [
            r.seed for r in second.shard_reports
        ]


class TestAttributionConsistency:
    """Regression for the documented order-dependence contract.

    ``cross_scenario_hits`` and per-scenario cache deltas depend on
    execution order; what serial and parallel merges must always agree
    on is the conserved work: per-scenario ``hits + misses``, the
    plan-wide lookup total, and plan totals equalling the sum of their
    parts. (Before the contract was documented it was tempting to
    assert parallel ``cross_scenario_hits`` equals the serial count --
    it must not: a worker can never reuse another shard's entries.)
    """

    @pytest.mark.parametrize(
        "shard_by", ["round-robin", "by-experiment", "by-cost"]
    )
    def test_conserved_totals_match_serial(self, serial, shard_by):
        parallel = run_plan_parallel(
            PLAN, workers=3, shard_by=shard_by, seed=SEED, executor="thread"
        )
        serial_lookups = [
            r.cache_stats.hits + r.cache_stats.misses
            for r in serial.scenario_results
        ]
        parallel_lookups = [
            r.cache_stats.hits + r.cache_stats.misses
            for r in parallel.scenario_results
        ]
        assert parallel_lookups == serial_lookups
        assert (
            parallel.cache_stats.hits + parallel.cache_stats.misses
            == serial.cache_stats.hits + serial.cache_stats.misses
        )

    def test_plan_totals_are_sums_of_their_parts(self):
        parallel = run_plan_parallel(
            PLAN, workers=3, seed=SEED, executor="thread"
        )
        assert parallel.cache_stats.hits == sum(
            r.cache_stats.hits for r in parallel.shard_reports
        )
        assert parallel.cache_stats.misses == sum(
            r.cache_stats.misses for r in parallel.shard_reports
        )
        assert parallel.cross_scenario_hits == sum(
            r.reused_hits for r in parallel.scenario_results
        )

    def test_parallel_reuse_never_exceeds_serial(self, serial):
        parallel = run_plan_parallel(
            PLAN, workers=3, seed=SEED, executor="thread"
        )
        assert parallel.cross_scenario_hits <= serial.cross_scenario_hits


class TestMergeValidation:
    def test_duplicate_positions_rejected(self):
        shards = shard_plan(PLAN, 2, "round-robin")
        output = run_shard(shards[0], seed=SEED)
        with pytest.raises(ConfigurationError, match="twice"):
            merge_shard_results(PLAN, (output, output))

    def test_incomplete_partition_rejected(self):
        shards = shard_plan(PLAN, 2, "round-robin")
        output = run_shard(shards[0], seed=SEED)
        with pytest.raises(ConfigurationError, match="partition"):
            merge_shard_results(PLAN, (output,))

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError, match="executor"):
            run_plan_parallel(PLAN, executor="fleet")

    def test_worker_errors_propagate(self):
        bad = RunPlan(scenarios=(Scenario("no-such-experiment"),))
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            run_plan_parallel(bad, workers=2, executor="thread")


class TestSessionConvenience:
    def test_session_forwards_seed_and_defaults(self, serial):
        session = SimulationSession(seed=SEED)
        parallel = session.run_plan_parallel(
            PLAN, workers=2, executor="thread"
        )
        assert parallel.shard_reports[0].seed == derive_worker_seed(SEED, 0)
        for ours, theirs in zip(
            serial.scenario_results, parallel.scenario_results
        ):
            assert _canonical(ours.result) == _canonical(theirs.result)
        # The caller's own cache set stayed untouched.
        assert session.cache_stats().hits == 0
        assert session.cache_stats().misses == 0

    def test_session_defaults_reach_workers(self):
        plan = RunPlan(scenarios=(Scenario("fig6", overrides={"n_points": 8}),))
        hot = SimulationSession(
            seed=0, defaults={"temperature_k": 400.0}
        ).run_plan_parallel(plan, workers=1)
        cold = SimulationSession(seed=0).run_plan_parallel(plan, workers=1)
        assert _canonical(hot.scenario_results[0].result) != _canonical(
            cold.scenario_results[0].result
        )
