"""Scenario: expansion semantics and the JSON round trip."""

import pytest

from repro.api import Scenario
from repro.errors import ConfigurationError
from repro.io import scenario_from_dict, scenario_to_dict


class TestValidation:
    def test_needs_experiment_id(self):
        with pytest.raises(ConfigurationError):
            Scenario(experiment_id="")

    def test_empty_sweep_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario("fig6", sweep={"temperature_k": []})

    def test_override_sweep_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(
                "fig6",
                overrides={"temperature_k": 300.0},
                sweep={"temperature_k": [0.0, 300.0]},
            )


class TestExpansion:
    def test_no_sweep_expands_to_itself(self):
        scenario = Scenario("fig6", overrides={"n_points": 12})
        assert scenario.expand() == (scenario,)

    def test_cartesian_product(self):
        family = Scenario(
            "fig6",
            sweep={
                "temperature_k": [0.0, 300.0],
                "tunnel_oxide_nm": [4.0, 5.0, 6.0],
            },
        )
        expanded = family.expand()
        assert len(expanded) == 6
        points = {
            (s.overrides["temperature_k"], s.overrides["tunnel_oxide_nm"])
            for s in expanded
        }
        assert (300.0, 4.0) in points and (0.0, 6.0) in points
        assert all(not s.sweep for s in expanded)

    def test_expansion_keeps_base_overrides(self):
        family = Scenario(
            "fig6",
            overrides={"n_points": 8},
            sweep={"temperature_k": [0.0, 300.0]},
        )
        assert all(
            s.overrides["n_points"] == 8 for s in family.expand()
        )

    def test_expanded_labels_identify_the_point(self):
        family = Scenario("fig6", sweep={"temperature_k": [300.0]})
        assert "temperature_k=300.0" in family.expand()[0].name


class TestJsonRoundTrip:
    def test_dict_round_trip(self):
        scenario = Scenario(
            "fig7",
            overrides={"gcr": 0.5, "tunnel_oxides_nm": (4.0, 6.0, 8.0)},
            sweep={"temperature_k": [0.0, 300.0]},
            label="oxide-study",
        )
        assert scenario_from_dict(scenario_to_dict(scenario)) == scenario

    def test_file_round_trip(self, tmp_path):
        scenario = Scenario("fig6", overrides={"temperature_k": 400.0})
        path = scenario.save(tmp_path / "scenario.json")
        assert Scenario.load(path) == scenario

    def test_record_is_plain_json(self):
        import json

        record = scenario_to_dict(
            Scenario("fig6", overrides={"gcrs": (0.4, 0.6)})
        )
        assert json.loads(json.dumps(record)) == record

    def test_unknown_record_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_from_dict({"experiment_id": "fig6", "bogus": 1})

    def test_missing_id_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_from_dict({"overrides": {}})
