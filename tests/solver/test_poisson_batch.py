"""Parity of the batched tridiagonal / Poisson solves vs the scalar path.

Randomized systems and charge profiles: every lane of
``solve_tridiagonal_batch`` / ``solve_poisson_1d_batch`` must agree
with the corresponding scalar Thomas-algorithm solve at <= 1e-9
relative tolerance (the two paths factorize the same matrices with
different but exact algorithms).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.solver import (
    PoissonProblem1D,
    solve_poisson_1d,
    solve_poisson_1d_batch,
    solve_tridiagonal,
    solve_tridiagonal_batch,
    uniform_grid,
)

RTOL = 1e-9


class TestTridiagonalBatch:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scalar_lanes(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 60))
        n_sys = int(rng.integers(1, 9))
        # Diagonally dominant systems: well conditioned for both paths.
        diag = rng.uniform(3.0, 6.0, size=(n_sys, n))
        lower = rng.uniform(-1.0, 1.0, size=(n_sys, n - 1))
        upper = rng.uniform(-1.0, 1.0, size=(n_sys, n - 1))
        rhs = rng.normal(size=(n_sys, n))
        batch = solve_tridiagonal_batch(lower, diag, upper, rhs)
        for i in range(n_sys):
            scalar = solve_tridiagonal(lower[i], diag[i], upper[i], rhs[i])
            np.testing.assert_allclose(
                batch[i], scalar, rtol=RTOL, atol=1e-12
            )

    def test_shared_offdiagonals_broadcast(self):
        rng = np.random.default_rng(99)
        diag = rng.uniform(3.0, 6.0, size=(4, 20))
        off = np.full(19, -1.0)
        rhs = rng.normal(size=(4, 20))
        batch = solve_tridiagonal_batch(off, diag, off, rhs)
        for i in range(4):
            scalar = solve_tridiagonal(off, diag[i], off, rhs[i])
            np.testing.assert_allclose(batch[i], scalar, rtol=RTOL)

    def test_lanes_stay_decoupled(self):
        """A lane's solution is unchanged by its batch neighbours."""
        rng = np.random.default_rng(7)
        diag = rng.uniform(3.0, 6.0, size=(6, 31))
        off = rng.uniform(-1.0, 1.0, size=(6, 30))
        rhs = rng.normal(size=(6, 31))
        full = solve_tridiagonal_batch(off, diag, off[:, ::-1], rhs)
        alone = solve_tridiagonal_batch(
            off[2:3], diag[2:3], off[2:3, ::-1], rhs[2:3]
        )
        np.testing.assert_array_equal(full[2], alone[0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_tridiagonal_batch(
                np.ones((2, 3)), np.ones((2, 4)), np.ones((2, 3)),
                np.ones((2, 5)),
            )


class TestPoissonBatch:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_scalar_lanes(self, seed):
        rng = np.random.default_rng(200 + seed)
        n = int(rng.integers(5, 120))
        grid = uniform_grid(0.0, 15e-9, n)
        eps = np.full(n - 1, rng.uniform(1e-11, 4e-10))
        n_lanes = int(rng.integers(1, 7))
        rho = rng.normal(scale=1e7, size=(n_lanes, n))
        left = rng.normal(size=n_lanes)
        right = rng.normal(size=n_lanes)
        batch = solve_poisson_1d_batch(grid, eps, rho, left, right)
        assert batch.n_lanes == n_lanes
        for i in range(n_lanes):
            scalar = solve_poisson_1d(
                PoissonProblem1D(
                    grid, eps, rho[i], float(left[i]), float(right[i])
                )
            )
            np.testing.assert_allclose(
                batch.potential[i], scalar.potential, rtol=RTOL, atol=1e-12
            )
            np.testing.assert_allclose(
                batch.field_midpoints[i],
                scalar.field_midpoints,
                rtol=RTOL,
                atol=1e-3,
            )
            lane = batch.lane(i)
            np.testing.assert_array_equal(lane.potential, batch.potential[i])

    def test_scalar_boundaries_broadcast(self):
        grid = uniform_grid(0.0, 10e-9, 21)
        eps = np.full(20, 1e-10)
        rho = np.zeros((3, 21))
        batch = solve_poisson_1d_batch(grid, eps, rho, 0.0, -1.0)
        # Charge-free solution is the linear divider for every lane.
        expected = np.linspace(0.0, -1.0, 21)
        for i in range(3):
            np.testing.assert_allclose(
                batch.potential[i], expected, rtol=RTOL, atol=1e-12
            )

    def test_validation(self):
        grid = uniform_grid(0.0, 10e-9, 21)
        with pytest.raises(ConfigurationError):
            solve_poisson_1d_batch(
                grid, np.full(19, 1e-10), np.zeros((2, 21))
            )
        with pytest.raises(ConfigurationError):
            solve_poisson_1d_batch(
                grid, np.full(20, -1e-10), np.zeros((2, 21))
            )
        with pytest.raises(ConfigurationError):
            solve_poisson_1d_batch(
                grid, np.full(20, 1e-10), np.zeros((2, 20))
            )
