"""1-D Poisson solver: analytic cases and interface conditions."""

import numpy as np
import pytest

from repro.constants import VACUUM_PERMITTIVITY
from repro.errors import ConfigurationError
from repro.solver import (
    PoissonProblem1D,
    nonuniform_grid,
    solve_poisson_1d,
    uniform_grid,
)


def _uniform_problem(n=101, phi_l=0.0, phi_r=1.0, rho=None, eps_r=1.0):
    grid = uniform_grid(0.0, 1e-8, n)
    eps = np.full(grid.n - 1, eps_r * VACUUM_PERMITTIVITY)
    charge = np.zeros(grid.n) if rho is None else rho
    return PoissonProblem1D(grid, eps, charge, phi_l, phi_r)


class TestLaplaceSolutions:
    def test_zero_charge_gives_linear_potential(self):
        sol = solve_poisson_1d(_uniform_problem())
        x = sol.grid.points
        expected = x / x[-1]
        assert np.allclose(sol.potential, expected, atol=1e-12)

    def test_constant_field_everywhere(self):
        sol = solve_poisson_1d(_uniform_problem(phi_r=5.0))
        assert np.allclose(
            sol.field_midpoints, sol.field_midpoints[0], rtol=1e-10
        )
        # E = -dphi/dx = -5 V / 10 nm.
        assert sol.field_midpoints[0] == pytest.approx(-5.0 / 1e-8)

    def test_equal_boundaries_give_flat_potential(self):
        sol = solve_poisson_1d(_uniform_problem(phi_l=2.0, phi_r=2.0))
        assert np.allclose(sol.potential, 2.0)


class TestDielectricInterface:
    def test_displacement_continuous_across_interface(self):
        grid = nonuniform_grid([0.0, 5e-9, 13e-9], [40, 60])
        eps = np.where(
            grid.midpoints() < 5e-9, 3.9, 25.0
        ) * VACUUM_PERMITTIVITY
        problem = PoissonProblem1D(grid, eps, np.zeros(grid.n), 0.0, 3.0)
        sol = solve_poisson_1d(problem)
        d = sol.displacement_midpoints
        assert np.allclose(d, d[0], rtol=1e-9)

    def test_field_ratio_is_inverse_permittivity_ratio(self):
        grid = nonuniform_grid([0.0, 5e-9, 10e-9], [50, 50])
        eps = np.where(grid.midpoints() < 5e-9, 2.0, 8.0) * VACUUM_PERMITTIVITY
        sol = solve_poisson_1d(
            PoissonProblem1D(grid, eps, np.zeros(grid.n), 0.0, 1.0)
        )
        e_low = sol.field_at(2.5e-9)
        e_high = sol.field_at(7.5e-9)
        assert e_low / e_high == pytest.approx(4.0, rel=1e-9)


class TestChargedSolutions:
    def test_uniform_charge_parabolic_potential(self):
        """phi'' = -rho/eps with phi(0)=phi(L)=0 has the parabola
        phi = rho/(2 eps) x (L - x)."""
        n = 201
        grid = uniform_grid(0.0, 1e-8, n)
        rho_value = 1e6  # C/m^3
        eps = np.full(grid.n - 1, VACUUM_PERMITTIVITY)
        sol = solve_poisson_1d(
            PoissonProblem1D(
                grid, eps, np.full(grid.n, rho_value), 0.0, 0.0
            )
        )
        x = grid.points
        expected = rho_value / (2.0 * VACUUM_PERMITTIVITY) * x * (x[-1] - x)
        assert np.allclose(sol.potential, expected, rtol=1e-3, atol=1e-9)

    def test_sign_convention_positive_charge_positive_potential(self):
        sol = solve_poisson_1d(
            _uniform_problem(rho=np.full(101, 1e5), phi_r=0.0)
        )
        assert sol.potential[50] > 0.0


class TestValidation:
    def test_rejects_wrong_permittivity_length(self):
        grid = uniform_grid(0.0, 1.0, 10)
        with pytest.raises(ConfigurationError):
            PoissonProblem1D(
                grid, np.ones(10), np.zeros(10), 0.0, 1.0
            )

    def test_rejects_negative_permittivity(self):
        grid = uniform_grid(0.0, 1.0, 10)
        with pytest.raises(ConfigurationError):
            PoissonProblem1D(
                grid, -np.ones(9), np.zeros(10), 0.0, 1.0
            )

    def test_rejects_wrong_charge_length(self):
        grid = uniform_grid(0.0, 1.0, 10)
        with pytest.raises(ConfigurationError):
            PoissonProblem1D(grid, np.ones(9), np.zeros(9), 0.0, 1.0)

    def test_two_node_problem_is_linear(self):
        grid = uniform_grid(0.0, 1.0, 2)
        sol = solve_poisson_1d(
            PoissonProblem1D(
                grid, np.array([VACUUM_PERMITTIVITY]), np.zeros(2), 1.0, 3.0
            )
        )
        assert np.allclose(sol.potential, [1.0, 3.0])
