"""Parity of the batched transfer-matrix kernel against the scalar one.

Randomized piecewise barriers (segment potentials, masses, widths, lead
offsets) and energy grids spanning deep-evanescent to far-above-barrier:
every lane of ``transmission_probability_batch`` must agree with the
per-energy scalar reference at <= 1e-9 relative tolerance.
"""

import numpy as np
import pytest

from repro.constants import ELECTRON_MASS
from repro.solver import (
    BarrierSegment,
    PiecewiseBarrier,
    transmission_probability,
    transmission_probability_batch,
)
from repro.units import ev_to_j, nm_to_m

RTOL = 1e-9


def _random_barrier(rng) -> PiecewiseBarrier:
    n_segments = int(rng.integers(1, 8))
    segments = tuple(
        BarrierSegment(
            width_m=nm_to_m(rng.uniform(0.1, 1.5)),
            potential_j=ev_to_j(rng.uniform(-0.5, 4.0)),
            mass_kg=rng.uniform(0.2, 1.2) * ELECTRON_MASS,
        )
        for _ in range(n_segments)
    )
    return PiecewiseBarrier(
        segments=segments,
        lead_potential_left_j=ev_to_j(rng.uniform(-0.2, 0.0)),
        lead_potential_right_j=ev_to_j(rng.uniform(-2.0, 0.0)),
        lead_mass_left_kg=rng.uniform(0.5, 1.0) * ELECTRON_MASS,
        lead_mass_right_kg=rng.uniform(0.5, 1.0) * ELECTRON_MASS,
    )


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_scalar_reference(self, seed):
        rng = np.random.default_rng(seed)
        barrier = _random_barrier(rng)
        energies = ev_to_j(rng.uniform(-1.0, 6.0, size=23))
        batch = transmission_probability_batch(barrier, energies)
        scalar = np.array(
            [transmission_probability(barrier, float(e)) for e in energies]
        )
        np.testing.assert_allclose(batch, scalar, rtol=RTOL, atol=1e-300)

    def test_band_edge_energies(self):
        """Energies exactly at a lead/segment edge get the same nudge."""
        rng = np.random.default_rng(42)
        barrier = _random_barrier(rng)
        edges = np.array(
            [barrier.lead_potential_left_j, barrier.lead_potential_right_j]
            + [seg.potential_j for seg in barrier.segments]
        )
        batch = transmission_probability_batch(barrier, edges)
        scalar = np.array(
            [transmission_probability(barrier, float(e)) for e in edges]
        )
        np.testing.assert_allclose(batch, scalar, rtol=RTOL, atol=0.0)

    def test_shape_preserved(self):
        rng = np.random.default_rng(3)
        barrier = _random_barrier(rng)
        energies = ev_to_j(rng.uniform(0.1, 3.0, size=(2, 5)))
        batch = transmission_probability_batch(barrier, energies)
        assert batch.shape == (2, 5)

    def test_probabilities_bounded(self):
        rng = np.random.default_rng(11)
        barrier = _random_barrier(rng)
        energies = ev_to_j(np.linspace(-0.5, 8.0, 64))
        batch = transmission_probability_batch(barrier, energies)
        assert np.all(batch >= 0.0)
        assert np.all(batch <= 1.0)

    def test_below_lead_energies_blocked(self):
        barrier = PiecewiseBarrier(
            segments=(BarrierSegment(nm_to_m(1.0), ev_to_j(3.0), ELECTRON_MASS),),
            lead_potential_left_j=0.0,
            lead_potential_right_j=ev_to_j(-1.0),
        )
        energies = ev_to_j(np.array([-0.5, 0.0]))
        batch = transmission_probability_batch(barrier, energies)
        np.testing.assert_array_equal(batch, np.zeros(2))
