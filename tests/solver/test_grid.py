"""Grid construction and queries."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.solver import Grid1D, nonuniform_grid, uniform_grid


class TestUniformGrid:
    def test_endpoints_and_count(self):
        g = uniform_grid(0.0, 1.0, 11)
        assert g.n == 11
        assert g.points[0] == 0.0
        assert g.points[-1] == 1.0

    def test_is_uniform(self):
        assert uniform_grid(0.0, 1.0, 7).is_uniform

    def test_length(self):
        assert uniform_grid(2.0, 5.0, 4).length == pytest.approx(3.0)

    def test_rejects_reversed_bounds(self):
        with pytest.raises(ConfigurationError):
            uniform_grid(1.0, 0.0, 5)

    def test_rejects_single_node(self):
        with pytest.raises(ConfigurationError):
            uniform_grid(0.0, 1.0, 1)


class TestNonuniformGrid:
    def test_interfaces_fall_on_nodes(self):
        g = nonuniform_grid([0.0, 5e-9, 13e-9], [5, 8])
        assert 5e-9 in g.points
        assert g.n == 5 + 8 + 1

    def test_region_resolutions_differ(self):
        g = nonuniform_grid([0.0, 1.0, 2.0], [2, 10])
        h = g.spacing
        assert h[0] == pytest.approx(0.5)
        assert h[-1] == pytest.approx(0.1)
        assert not g.is_uniform

    def test_rejects_mismatched_region_count(self):
        with pytest.raises(ConfigurationError):
            nonuniform_grid([0.0, 1.0, 2.0], [5])

    def test_rejects_empty_region(self):
        with pytest.raises(ConfigurationError):
            nonuniform_grid([0.0, 1.0], [0])


class TestGridQueries:
    def test_midpoints_between_nodes(self):
        g = uniform_grid(0.0, 1.0, 3)
        assert np.allclose(g.midpoints(), [0.25, 0.75])

    def test_locate_interior_point(self):
        g = uniform_grid(0.0, 1.0, 5)  # cells of width 0.25
        assert g.locate(0.3) == 1

    def test_locate_clamps_to_domain(self):
        g = uniform_grid(0.0, 1.0, 5)
        assert g.locate(-1.0) == 0
        assert g.locate(2.0) == g.n - 2

    def test_rejects_non_monotonic_points(self):
        with pytest.raises(ConfigurationError):
            Grid1D(np.array([0.0, 2.0, 1.0]))
