"""WKB action integrals against closed forms."""

import math

import pytest

from repro.constants import ELECTRON_MASS, ELEMENTARY_CHARGE, HBAR
from repro.errors import ConfigurationError
from repro.solver import wkb_action, wkb_transmission
from repro.solver.wkb import triangular_action_exact
from repro.units import ev_to_j, nm_to_m


class TestRectangularBarrier:
    def test_action_matches_closed_form(self):
        """Constant barrier: S = kappa * width."""
        height = ev_to_j(3.0)
        energy = ev_to_j(1.0)
        width = nm_to_m(2.0)
        mass = 0.42 * ELECTRON_MASS
        kappa = math.sqrt(2.0 * mass * (height - energy)) / HBAR
        got = wkb_action(lambda x: height, energy, mass, 0.0, width)
        assert got == pytest.approx(kappa * width, rel=1e-6)

    def test_transmission_is_exp_minus_two_s(self):
        height = ev_to_j(2.0)
        energy = ev_to_j(0.5)
        width = nm_to_m(1.0)
        s = wkb_action(lambda x: height, energy, ELECTRON_MASS, 0.0, width)
        t = wkb_transmission(
            lambda x: height, energy, ELECTRON_MASS, 0.0, width
        )
        assert t == pytest.approx(math.exp(-2.0 * s), rel=1e-12)

    def test_allowed_region_contributes_nothing(self):
        """Energy above the barrier everywhere: zero action."""
        got = wkb_action(
            lambda x: ev_to_j(1.0), ev_to_j(2.0), ELECTRON_MASS, 0.0, 1e-9
        )
        assert got == 0.0


class TestTriangularBarrier:
    def test_numeric_matches_exact_triangular_action(self):
        phi = ev_to_j(3.2)
        mass = 0.42 * ELECTRON_MASS
        field = 1.0e9

        def profile(x):
            return phi - ELEMENTARY_CHARGE * field * x

        width = phi / (ELEMENTARY_CHARGE * field)  # exit point
        numeric = wkb_action(profile, 0.0, mass, 0.0, width, n_points=20001)
        exact = triangular_action_exact(phi, field, mass)
        assert numeric == pytest.approx(exact, rel=1e-4)

    def test_triangular_action_equals_fn_exponent(self):
        """exp(-2S) of the triangular barrier equals exp(-B/E) of eq. (4)."""
        from repro.tunneling import fn_coefficient_b

        phi_ev = 3.2
        mass_ratio = 0.42
        field = 9.0e8
        b = fn_coefficient_b(phi_ev, mass_ratio)
        s = triangular_action_exact(
            ev_to_j(phi_ev), field, mass_ratio * ELECTRON_MASS
        )
        assert 2.0 * s == pytest.approx(b / field, rel=1e-12)

    def test_higher_field_lowers_action(self):
        phi = ev_to_j(3.0)
        mass = ELECTRON_MASS
        s1 = triangular_action_exact(phi, 5e8, mass)
        s2 = triangular_action_exact(phi, 1e9, mass)
        assert s2 < s1


class TestValidation:
    def test_rejects_reversed_limits(self):
        with pytest.raises(ConfigurationError):
            wkb_action(lambda x: 1.0, 0.0, ELECTRON_MASS, 1.0, 0.0)

    def test_rejects_nonpositive_mass(self):
        with pytest.raises(ConfigurationError):
            wkb_action(lambda x: 1.0, 0.0, 0.0, 0.0, 1.0)

    def test_triangular_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            triangular_action_exact(-1.0, 1e9, ELECTRON_MASS)
        with pytest.raises(ConfigurationError):
            triangular_action_exact(1e-19, 0.0, ELECTRON_MASS)
