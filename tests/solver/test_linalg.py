"""Tridiagonal solver against dense numpy reference."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.solver import solve_tridiagonal, tridiagonal_matrix


def test_matches_dense_solver_random_system(rng):
    n = 50
    lower = rng.normal(size=n - 1)
    upper = rng.normal(size=n - 1)
    diag = rng.normal(size=n) + 10.0  # diagonally dominant
    rhs = rng.normal(size=n)
    dense = tridiagonal_matrix(lower, diag, upper)
    expected = np.linalg.solve(dense, rhs)
    got = solve_tridiagonal(lower, diag, upper, rhs)
    assert np.allclose(got, expected, rtol=1e-10)


def test_identity_system():
    n = 5
    x = solve_tridiagonal(
        np.zeros(n - 1), np.ones(n), np.zeros(n - 1), np.arange(n, dtype=float)
    )
    assert np.allclose(x, np.arange(n))


def test_two_by_two_system():
    # [[2, 1], [1, 3]] x = [3, 5] -> x = [4/5, 7/5]
    x = solve_tridiagonal([1.0], [2.0, 3.0], [1.0], [3.0, 5.0])
    assert np.allclose(x, [0.8, 1.4])


def test_dense_assembly_layout():
    m = tridiagonal_matrix([7.0], [1.0, 2.0], [5.0])
    assert m[0, 0] == 1.0 and m[1, 1] == 2.0
    assert m[0, 1] == 5.0  # upper
    assert m[1, 0] == 7.0  # lower


def test_rejects_bad_lengths():
    with pytest.raises(ConfigurationError):
        solve_tridiagonal([1.0], [1.0, 1.0, 1.0], [1.0], [1.0, 1.0, 1.0])
    with pytest.raises(ConfigurationError):
        solve_tridiagonal([1.0], [1.0, 1.0], [1.0], [1.0, 1.0, 1.0])


def test_laplacian_solve_is_linear_profile():
    """Discrete Laplacian with Dirichlet data reproduces a line."""
    n = 20
    diag = np.full(n, 2.0)
    off = np.full(n - 1, -1.0)
    rhs = np.zeros(n)
    rhs[-1] = 1.0  # boundary value folded into rhs
    x = solve_tridiagonal(off, diag, off, rhs)
    expected = np.arange(1, n + 1) / (n + 1)
    assert np.allclose(x, expected, atol=1e-12)
