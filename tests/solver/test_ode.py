"""ODE wrapper: analytic decays, events, failure handling."""

import math

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.solver import integrate_ivp


class TestExponentialDecay:
    def test_matches_analytic_solution(self):
        result = integrate_ivp(
            lambda t, y: -2.0 * y, (0.0, 3.0), [1.0], dense_samples=50
        )
        expected = np.exp(-2.0 * result.t)
        assert np.allclose(result.y[0], expected, rtol=1e-6)

    def test_final_state_and_time(self):
        result = integrate_ivp(lambda t, y: -y, (0.0, 1.0), [5.0])
        assert result.final_time == pytest.approx(1.0)
        assert result.final_state[0] == pytest.approx(5.0 / math.e, rel=1e-6)


class TestSystems:
    def test_harmonic_oscillator_conserves_energy(self):
        def rhs(_t, y):
            return np.array([y[1], -y[0]])

        result = integrate_ivp(
            rhs, (0.0, 20.0), [1.0, 0.0], rtol=1e-10, atol=1e-12,
            dense_samples=100,
        )
        energy = result.y[0] ** 2 + result.y[1] ** 2
        assert np.allclose(energy, 1.0, rtol=1e-6)


class TestEvents:
    def test_terminal_event_stops_integration(self):
        def crossing(_t, y):
            return y[0] - 0.5

        crossing.terminal = True
        result = integrate_ivp(
            lambda t, y: -y, (0.0, 10.0), [1.0], events=[crossing]
        )
        assert result.terminated_by_event
        assert result.final_time == pytest.approx(math.log(2.0), rel=1e-6)
        assert result.event_times[0][0] == pytest.approx(
            math.log(2.0), rel=1e-6
        )

    def test_non_terminal_event_recorded_but_continues(self):
        def crossing(_t, y):
            return y[0] - 0.5

        result = integrate_ivp(
            lambda t, y: -y, (0.0, 5.0), [1.0], events=[crossing]
        )
        assert not result.terminated_by_event
        assert result.event_times[0].size == 1


class TestStiffProblem:
    def test_stiff_decay_integrates(self):
        """A classically stiff system (rate 1e6 vs 1): LSODA handles it."""

        def rhs(_t, y):
            return np.array([-1e6 * (y[0] - math.cos(_t))])

        result = integrate_ivp(rhs, (0.0, 1.0), [0.0])
        assert result.final_state[0] == pytest.approx(
            math.cos(1.0), rel=1e-4
        )


class TestFailure:
    def test_explosive_growth_raises(self):
        with pytest.raises(ConvergenceError):
            integrate_ivp(
                lambda t, y: y * y,
                (0.0, 10.0),
                [1.0],
                method="RK45",
            )


class TestRk4:
    def test_exponential_decay_accuracy(self):
        import numpy as np

        from repro.solver import integrate_rk4

        grid = np.linspace(0.0, 1.0, 201)
        result = integrate_rk4(lambda t, y: -y, grid, [1.0])
        assert result.y[0, -1] == pytest.approx(math.exp(-1.0), rel=1e-9)

    def test_vector_lanes_advance_independently(self):
        """Elementwise RHS lanes are bit-identical alone or stacked."""
        import numpy as np

        from repro.solver import integrate_rk4

        rates = np.array([-1.0, -2.0, -0.5])
        grid = np.geomspace(1e-3, 1.0, 101)
        grid = np.concatenate([[0.0], grid])
        stacked = integrate_rk4(
            lambda t, y: rates * y, grid, np.ones(3)
        )
        for i, rate in enumerate(rates):
            alone = integrate_rk4(
                lambda t, y, r=rate: r * y, grid, [1.0]
            )
            np.testing.assert_array_equal(stacked.y[i], alone.y[0])

    def test_rejects_bad_grids(self):
        import numpy as np

        from repro.solver import integrate_rk4

        with pytest.raises(ConvergenceError):
            integrate_rk4(lambda t, y: y, np.array([0.0]), [1.0])
        with pytest.raises(ConvergenceError):
            integrate_rk4(lambda t, y: y, np.array([0.0, 0.0]), [1.0])

    def test_divergence_raises(self):
        import numpy as np

        from repro.solver import integrate_rk4

        with np.errstate(over="ignore"), pytest.raises(ConvergenceError):
            integrate_rk4(
                lambda t, y: y * y,
                np.linspace(0.0, 10.0, 11),
                [10.0],
            )
