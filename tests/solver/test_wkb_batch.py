"""Parity of the batched WKB kernels against the scalar reference.

Randomized barriers, energies and masses: every lane of
``wkb_action_batch`` must agree with a scalar ``wkb_action`` call at
<= 1e-9 relative tolerance (in practice the two paths are bit-identical
-- they evaluate the same samples in the same order).
"""

import numpy as np
import pytest

from repro.constants import ELECTRON_MASS, ELEMENTARY_CHARGE
from repro.errors import ConfigurationError
from repro.solver import (
    wkb_action,
    wkb_action_batch,
    wkb_transmission,
    wkb_transmission_batch,
)
from repro.solver.wkb import sample_potential
from repro.units import ev_to_j, nm_to_m

RTOL = 1e-9


def _random_barrier(rng):
    """A random trapezoidal barrier profile plus its geometry."""
    height_j = ev_to_j(rng.uniform(1.0, 4.5))
    width_m = nm_to_m(rng.uniform(1.0, 8.0))
    slope = ELEMENTARY_CHARGE * rng.uniform(0.0, 2e9)

    def profile(x):
        return height_j - slope * x

    return profile, height_j, width_m


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_action_matches_scalar_lanes(self, seed):
        rng = np.random.default_rng(seed)
        profile, height_j, width_m = _random_barrier(rng)
        mass = rng.uniform(0.1, 1.0) * ELECTRON_MASS
        energies = rng.uniform(0.0, 1.2 * height_j, size=17)
        batch = wkb_action_batch(
            profile, energies, mass, 0.0, width_m, n_points=301
        )
        scalar = np.array(
            [
                wkb_action(profile, float(e), mass, 0.0, width_m, n_points=301)
                for e in energies
            ]
        )
        np.testing.assert_allclose(batch, scalar, rtol=RTOL, atol=0.0)

    @pytest.mark.parametrize("seed", range(4))
    def test_transmission_matches_scalar_lanes(self, seed):
        rng = np.random.default_rng(100 + seed)
        profile, height_j, width_m = _random_barrier(rng)
        mass = rng.uniform(0.1, 1.0) * ELECTRON_MASS
        energies = rng.uniform(0.0, height_j, size=9)
        batch = wkb_transmission_batch(
            profile, energies, mass, 0.0, width_m, n_points=201
        )
        scalar = np.array(
            [
                wkb_transmission(
                    profile, float(e), mass, 0.0, width_m, n_points=201
                )
                for e in energies
            ]
        )
        np.testing.assert_allclose(batch, scalar, rtol=RTOL, atol=0.0)

    def test_random_masses_broadcast(self):
        rng = np.random.default_rng(7)
        profile, height_j, width_m = _random_barrier(rng)
        energies = rng.uniform(0.0, height_j, size=5)
        masses = rng.uniform(0.1, 1.0, size=5) * ELECTRON_MASS
        batch = wkb_action_batch(
            profile, energies, masses, 0.0, width_m, n_points=201
        )
        for i in range(5):
            scalar = wkb_action(
                profile,
                float(energies[i]),
                float(masses[i]),
                0.0,
                width_m,
                n_points=201,
            )
            assert batch[i] == pytest.approx(scalar, rel=RTOL)


class TestVectorizedPotentialProtocol:
    def test_batched_barrier_grid(self):
        """A (bias, energy) grid from one vectorized potential call."""
        height_j = ev_to_j(3.5)
        width_m = nm_to_m(5.0)
        slopes = ELEMENTARY_CHARGE * np.linspace(0.5e9, 1.5e9, 4)

        def profiles(xs):
            return height_j - slopes[:, np.newaxis, np.newaxis] * xs

        energies = ev_to_j(np.linspace(0.0, 1.0, 6))
        grid = wkb_action_batch(
            profiles, energies, ELECTRON_MASS, 0.0, width_m, n_points=101
        )
        assert grid.shape == (4, 6)
        for i, slope in enumerate(slopes):
            for j, energy in enumerate(energies):
                scalar = wkb_action(
                    lambda x, s=slope: height_j - s * x,
                    float(energy),
                    ELECTRON_MASS,
                    0.0,
                    width_m,
                    n_points=101,
                )
                assert grid[i, j] == pytest.approx(scalar, rel=RTOL)

    def test_scalar_only_callable_falls_back(self):
        """A potential that rejects arrays still evaluates correctly."""
        import math

        height_j = ev_to_j(3.0)
        width_m = nm_to_m(3.0)

        def scalar_only(x):
            return height_j * math.exp(-x / width_m)

        energies = ev_to_j(np.array([0.1, 0.4]))
        batch = wkb_action_batch(
            scalar_only, energies, ELECTRON_MASS, 0.0, width_m, n_points=101
        )
        scalar = np.array(
            [
                wkb_action(
                    scalar_only,
                    float(e),
                    ELECTRON_MASS,
                    0.0,
                    width_m,
                    n_points=101,
                )
                for e in energies
            ]
        )
        np.testing.assert_array_equal(batch, scalar)

    def test_constant_scalar_return_means_constant_potential(self):
        height_j = ev_to_j(2.0)
        xs = np.linspace(0.0, 1.0, 11)
        sampled = sample_potential(lambda x: height_j, xs)
        np.testing.assert_array_equal(sampled, np.full(11, height_j))

    def test_scalar_energy_returns_float(self):
        value = wkb_action_batch(
            lambda x: ev_to_j(2.0),
            ev_to_j(0.5),
            ELECTRON_MASS,
            0.0,
            nm_to_m(2.0),
            n_points=101,
        )
        assert isinstance(value, float)
        assert value == pytest.approx(
            wkb_action(
                lambda x: ev_to_j(2.0),
                ev_to_j(0.5),
                ELECTRON_MASS,
                0.0,
                nm_to_m(2.0),
                n_points=101,
            ),
            rel=RTOL,
        )


class TestValidation:
    def test_rejects_reversed_limits(self):
        with pytest.raises(ConfigurationError):
            wkb_action_batch(lambda x: 1.0, 0.0, ELECTRON_MASS, 1.0, 0.0)

    def test_rejects_nonpositive_mass(self):
        with pytest.raises(ConfigurationError):
            wkb_action_batch(lambda x: 1.0, 0.0, 0.0, 0.0, 1.0)

    def test_rejects_too_few_points(self):
        with pytest.raises(ConfigurationError):
            wkb_action_batch(
                lambda x: 1.0, 0.0, ELECTRON_MASS, 0.0, 1.0, n_points=2
            )
