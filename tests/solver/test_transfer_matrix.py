"""Transfer-matrix transmission against analytic results."""

import cmath
import math

import pytest

from repro.constants import ELECTRON_MASS, HBAR
from repro.errors import ConfigurationError
from repro.solver import (
    BarrierSegment,
    PiecewiseBarrier,
    transmission_probability,
)
from repro.units import ev_to_j, nm_to_m


def analytic_rectangular_transmission(energy_j, height_j, width_m, mass_kg):
    """Exact T(E) for a rectangular barrier (standard textbook result)."""
    k = math.sqrt(2.0 * mass_kg * energy_j) / HBAR
    if energy_j < height_j:
        kappa = math.sqrt(2.0 * mass_kg * (height_j - energy_j)) / HBAR
        s = math.sinh(kappa * width_m)
        return 1.0 / (
            1.0
            + (k**2 + kappa**2) ** 2 / (4.0 * k**2 * kappa**2) * s**2
        )
    q = math.sqrt(2.0 * mass_kg * (energy_j - height_j)) / HBAR
    s = math.sin(q * width_m)
    return 1.0 / (
        1.0 + (k**2 - q**2) ** 2 / (4.0 * k**2 * q**2) * s**2
    )


class TestRectangularBarrier:
    @pytest.mark.parametrize("energy_ev", [0.5, 1.0, 2.0, 2.9])
    def test_subbarrier_matches_analytic(self, energy_ev):
        height = ev_to_j(3.0)
        width = nm_to_m(1.0)
        barrier = PiecewiseBarrier(
            [BarrierSegment(width, height, ELECTRON_MASS)]
        )
        got = transmission_probability(barrier, ev_to_j(energy_ev))
        ref = analytic_rectangular_transmission(
            ev_to_j(energy_ev), height, width, ELECTRON_MASS
        )
        assert got == pytest.approx(ref, rel=1e-9)

    @pytest.mark.parametrize("energy_ev", [3.5, 5.0, 8.0])
    def test_above_barrier_matches_analytic(self, energy_ev):
        height = ev_to_j(3.0)
        width = nm_to_m(1.0)
        barrier = PiecewiseBarrier(
            [BarrierSegment(width, height, ELECTRON_MASS)]
        )
        got = transmission_probability(barrier, ev_to_j(energy_ev))
        ref = analytic_rectangular_transmission(
            ev_to_j(energy_ev), height, width, ELECTRON_MASS
        )
        assert got == pytest.approx(ref, rel=1e-9)

    def test_no_barrier_transmits_fully(self):
        barrier = PiecewiseBarrier(
            [BarrierSegment(nm_to_m(2.0), 0.0, ELECTRON_MASS)]
        )
        assert transmission_probability(barrier, ev_to_j(1.0)) == pytest.approx(
            1.0, rel=1e-12
        )

    def test_transmission_bounded(self):
        barrier = PiecewiseBarrier(
            [BarrierSegment(nm_to_m(3.0), ev_to_j(4.0), 0.42 * ELECTRON_MASS)]
        )
        for e_ev in (0.1, 1.0, 3.0, 5.0, 10.0):
            t = transmission_probability(barrier, ev_to_j(e_ev))
            assert 0.0 <= t <= 1.0

    def test_thicker_barrier_transmits_less(self):
        thin = PiecewiseBarrier(
            [BarrierSegment(nm_to_m(1.0), ev_to_j(3.0), ELECTRON_MASS)]
        )
        thick = PiecewiseBarrier(
            [BarrierSegment(nm_to_m(2.0), ev_to_j(3.0), ELECTRON_MASS)]
        )
        e = ev_to_j(1.0)
        assert transmission_probability(thick, e) < transmission_probability(
            thin, e
        )


class TestResonantStructures:
    def test_double_barrier_has_resonance(self):
        """A symmetric double barrier shows a transmission peak between
        the off-resonance floors (resonant tunneling diode physics)."""
        m = ELECTRON_MASS
        seg = lambda w, v: BarrierSegment(nm_to_m(w), ev_to_j(v), m)
        barrier = PiecewiseBarrier(
            [seg(1.0, 0.4), seg(4.0, 0.0), seg(1.0, 0.4)]
        )
        energies = [0.01 + 0.002 * i for i in range(150)]
        ts = [
            transmission_probability(barrier, ev_to_j(e)) for e in energies
        ]
        peak = max(ts)
        assert peak > 0.5  # sharp resonance well above the floor
        assert peak > 50.0 * min(ts)

    def test_split_slab_equals_single_slab(self):
        """Slicing one rectangular barrier into segments must not change T."""
        m = 0.5 * ELECTRON_MASS
        height = ev_to_j(2.0)
        single = PiecewiseBarrier([BarrierSegment(nm_to_m(2.0), height, m)])
        split = PiecewiseBarrier(
            [
                BarrierSegment(nm_to_m(0.5), height, m),
                BarrierSegment(nm_to_m(1.0), height, m),
                BarrierSegment(nm_to_m(0.5), height, m),
            ]
        )
        e = ev_to_j(0.8)
        assert transmission_probability(split, e) == pytest.approx(
            transmission_probability(single, e), rel=1e-10
        )


class TestProfileDiscretisation:
    def test_from_profile_converges_to_analytic_rectangular(self):
        height = ev_to_j(3.0)
        width = nm_to_m(1.5)
        barrier = PiecewiseBarrier.from_profile(
            lambda x: height, width, ELECTRON_MASS, n_slabs=80
        )
        got = transmission_probability(barrier, ev_to_j(1.2))
        ref = analytic_rectangular_transmission(
            ev_to_j(1.2), height, width, ELECTRON_MASS
        )
        assert got == pytest.approx(ref, rel=1e-6)

    def test_energy_exactly_at_band_edge_regularised(self):
        """Regression: E == V inside a segment used to divide by zero
        (k = 0 in the interface matching); it must now return a finite
        probability continuous with neighbouring energies."""
        height = ev_to_j(1.0)
        barrier = PiecewiseBarrier(
            [BarrierSegment(nm_to_m(1.0), height, ELECTRON_MASS)]
        )
        t_at = transmission_probability(barrier, height)
        t_below = transmission_probability(barrier, height * (1 - 1e-9))
        t_above = transmission_probability(barrier, height * (1 + 1e-9))
        assert 0.0 <= t_at <= 1.0
        assert t_below <= t_at <= t_above or abs(t_above - t_below) < 1e-6

    def test_below_lead_energy_returns_zero(self):
        barrier = PiecewiseBarrier(
            [BarrierSegment(nm_to_m(1.0), ev_to_j(3.0), ELECTRON_MASS)],
            lead_potential_left_j=ev_to_j(0.5),
        )
        assert transmission_probability(barrier, ev_to_j(0.2)) == 0.0


class TestValidation:
    def test_rejects_empty_segments(self):
        with pytest.raises(ConfigurationError):
            PiecewiseBarrier([])

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ConfigurationError):
            BarrierSegment(0.0, ev_to_j(1.0), ELECTRON_MASS)

    def test_rejects_nonpositive_mass(self):
        with pytest.raises(ConfigurationError):
            BarrierSegment(nm_to_m(1.0), ev_to_j(1.0), 0.0)
