"""Root finding and series crossing detection."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.solver import bisect, brentq_checked, find_crossing


class TestBisect:
    def test_finds_simple_root(self):
        root = bisect(lambda x: x * x - 2.0, 0.0, 2.0)
        assert root == pytest.approx(math.sqrt(2.0), abs=1e-10)

    def test_endpoint_root_returned_immediately(self):
        assert bisect(lambda x: x, 0.0, 1.0) == 0.0
        assert bisect(lambda x: x - 1.0, 0.0, 1.0) == 1.0

    def test_rejects_non_bracketing(self):
        with pytest.raises(ConfigurationError):
            bisect(lambda x: x * x + 1.0, -1.0, 1.0)

    def test_handles_decades_spanning_function(self):
        """Crossing between two exponentials 20 decades apart at the ends."""

        def f(x):
            return math.exp(20.0 * x) - math.exp(10.0 * (1.0 - x))

        root = bisect(f, 0.0, 1.0, tol=1e-14)
        assert 20.0 * root == pytest.approx(10.0 * (1.0 - root), rel=1e-9)


class TestBrentq:
    def test_matches_bisect(self):
        f = lambda x: math.cos(x) - x
        assert brentq_checked(f, 0.0, 1.0) == pytest.approx(
            bisect(f, 0.0, 1.0), abs=1e-9
        )

    def test_rejects_non_bracketing(self):
        with pytest.raises(ConfigurationError):
            brentq_checked(lambda x: 1.0 + x * x, -1.0, 1.0)


class TestFindCrossing:
    def test_linear_crossing_interpolated(self):
        t = np.linspace(0.0, 1.0, 11)
        assert find_crossing(t, 1.0 - t, t) == pytest.approx(0.5)

    def test_exact_tie_at_sample_returned(self):
        t = np.array([0.0, 1.0, 2.0])
        a = np.array([2.0, 1.0, 0.0])
        b = np.array([0.0, 1.0, 2.0])
        assert find_crossing(t, a, b) == pytest.approx(1.0)

    def test_no_crossing_returns_none(self):
        t = np.linspace(0.0, 1.0, 5)
        assert find_crossing(t, t + 1.0, t) is None

    def test_first_of_multiple_crossings(self):
        t = np.linspace(0.0, 2.0 * math.pi, 400)
        got = find_crossing(t, np.sin(t), np.zeros_like(t) + 0.5)
        assert got == pytest.approx(math.asin(0.5), abs=1e-3)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            find_crossing(np.arange(3.0), np.arange(3.0), np.arange(4.0))

    def test_rejects_too_few_samples(self):
        with pytest.raises(ConfigurationError):
            find_crossing(np.array([0.0]), np.array([1.0]), np.array([2.0]))
