"""Parity of the batched eigenlevel kernels vs the scalar eigensolver.

Randomized confining potentials: every lane of
``solve_schrodinger_1d_batch`` must reproduce the scalar
``solve_schrodinger_1d`` eigenpairs at <= 1e-9, and the
Rayleigh-quotient tracker ``refine_bound_states_batch`` must land on
the exact eigenpairs of the *updated* Hamiltonians whether its guess
was good (fast path) or useless (verified fallback).
"""

import numpy as np
import pytest

from repro.constants import ELECTRON_MASS
from repro.errors import ConfigurationError
from repro.solver import (
    refine_bound_states_batch,
    solve_schrodinger_1d,
    solve_schrodinger_1d_batch,
    uniform_grid,
)
from repro.units import ev_to_j

RTOL = 1e-9
MASS = 0.26 * ELECTRON_MASS


def _random_wells(rng, n_lanes, n_nodes):
    """Stacked triangular-ish wells with random fields and bowing."""
    grid = uniform_grid(0.0, 15e-9, n_nodes)
    fields = rng.uniform(2e8, 1.2e9, size=n_lanes)
    bow = rng.uniform(0.0, 0.3, size=n_lanes)
    x = grid.points / grid.points[-1]
    pots = ev_to_j(
        fields[:, None] * grid.points[None, :]
        + bow[:, None] * np.sin(np.pi * x)[None, :]
    )
    return grid, pots


class TestColdBatch:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_scalar_lanes(self, seed):
        rng = np.random.default_rng(seed)
        n_lanes = int(rng.integers(1, 7))
        grid, pots = _random_wells(rng, n_lanes, 151)
        batch = solve_schrodinger_1d_batch(grid, pots, MASS, n_states=4)
        assert batch.n_lanes == n_lanes and batch.n_states == 4
        for i in range(n_lanes):
            scalar = solve_schrodinger_1d(grid, pots[i], MASS, n_states=4)
            np.testing.assert_allclose(
                batch.energies[i], scalar.energies, rtol=RTOL
            )
            # Eigenvector sign is arbitrary; densities are not.
            np.testing.assert_allclose(
                np.abs(batch.wavefunctions[i]),
                np.abs(scalar.wavefunctions),
                rtol=1e-6,
                atol=1e-9 * float(np.max(np.abs(scalar.wavefunctions))),
            )

    def test_density_batch_matches_scalar(self):
        rng = np.random.default_rng(42)
        grid, pots = _random_wells(rng, 3, 121)
        batch = solve_schrodinger_1d_batch(grid, pots, MASS, n_states=3)
        occ = rng.uniform(0.0, 1e16, size=(3, 3))
        dens = batch.density_batch(occ)
        for i in range(3):
            np.testing.assert_allclose(
                dens[i], batch.lane(i).density(occ[i]), rtol=RTOL
            )

    def test_density_batch_shape_checked(self):
        rng = np.random.default_rng(0)
        grid, pots = _random_wells(rng, 2, 61)
        batch = solve_schrodinger_1d_batch(grid, pots, MASS, n_states=2)
        with pytest.raises(ConfigurationError):
            batch.density_batch(np.ones((2, 3)))


class TestRefineTracker:
    @pytest.mark.parametrize("seed", range(6))
    def test_small_update_tracks_exactly(self, seed):
        """A damped-iteration-sized update refines to the exact pairs."""
        rng = np.random.default_rng(300 + seed)
        n_lanes = int(rng.integers(1, 6))
        grid, pots = _random_wells(rng, n_lanes, 151)
        guess = solve_schrodinger_1d_batch(grid, pots, MASS, n_states=4)
        delta = rng.uniform(1e-4, 5e-3)
        x = grid.points / grid.points[-1]
        pots2 = pots + ev_to_j(delta) * np.cos(np.pi * x)[None, :]
        refined = refine_bound_states_batch(grid, pots2, MASS, guess)
        exact = solve_schrodinger_1d_batch(grid, pots2, MASS, n_states=4)
        np.testing.assert_allclose(
            refined.energies, exact.energies, rtol=RTOL
        )
        np.testing.assert_allclose(
            np.abs(refined.wavefunctions),
            np.abs(exact.wavefunctions),
            rtol=1e-6,
            atol=1e-9 * float(np.max(np.abs(exact.wavefunctions))),
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_large_update_falls_back_exactly(self, seed):
        """A guess-invalidating update still returns the exact pairs."""
        rng = np.random.default_rng(400 + seed)
        grid, pots = _random_wells(rng, 4, 121)
        guess = solve_schrodinger_1d_batch(grid, pots, MASS, n_states=4)
        pots2 = pots * rng.uniform(1.5, 3.0)
        refined = refine_bound_states_batch(grid, pots2, MASS, guess)
        exact = solve_schrodinger_1d_batch(grid, pots2, MASS, n_states=4)
        np.testing.assert_allclose(
            refined.energies, exact.energies, rtol=RTOL
        )

    def test_single_state_branch_jump_is_caught(self):
        """A 1-state guess that drifted onto an excited branch falls back.

        With ``n_states == 1`` there is no ordering check to trip, so
        only the Sturm-count branch certificate stands between a
        drifted guess and silently returning an excited state as the
        ground state.
        """
        rng = np.random.default_rng(11)
        grid, pots = _random_wells(rng, 3, 151)
        exact2 = solve_schrodinger_1d_batch(grid, pots, MASS, n_states=2)
        # Adversarial guess: the first-excited pair labelled as state 0.
        from repro.solver import BoundStatesBatch

        bad_guess = BoundStatesBatch(
            energies=exact2.energies[:, 1:2],
            wavefunctions=exact2.wavefunctions[:, :, 1:2],
            grid=grid,
        )
        refined = refine_bound_states_batch(grid, pots, MASS, bad_guess)
        np.testing.assert_allclose(
            refined.energies, exact2.energies[:, :1], rtol=RTOL
        )

    def test_identity_update_is_stable(self):
        """Refining with the unchanged Hamiltonian keeps the pairs."""
        rng = np.random.default_rng(5)
        grid, pots = _random_wells(rng, 3, 151)
        guess = solve_schrodinger_1d_batch(grid, pots, MASS, n_states=4)
        refined = refine_bound_states_batch(grid, pots, MASS, guess)
        np.testing.assert_allclose(
            refined.energies, guess.energies, rtol=RTOL
        )

    def test_shape_mismatch_rejected(self):
        rng = np.random.default_rng(1)
        grid, pots = _random_wells(rng, 2, 61)
        guess = solve_schrodinger_1d_batch(grid, pots, MASS, n_states=2)
        grid3, pots3 = _random_wells(rng, 3, 61)
        with pytest.raises(ConfigurationError):
            refine_bound_states_batch(grid3, pots3, MASS, guess)
