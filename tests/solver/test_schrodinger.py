"""Schrodinger eigensolver against analytic spectra."""

import math

import numpy as np
import pytest

from repro.constants import ELECTRON_MASS, HBAR
from repro.errors import ConfigurationError
from repro.solver import solve_schrodinger_1d, uniform_grid
from repro.units import ev_to_j


def infinite_well_levels(length_m, mass_kg, n_levels):
    return [
        (n * math.pi / length_m) ** 2 * HBAR**2 / (2.0 * mass_kg)
        for n in range(1, n_levels + 1)
    ]


class TestInfiniteWell:
    def test_energies_match_analytic(self):
        L = 10e-9
        grid = uniform_grid(0.0, L, 1501)
        states = solve_schrodinger_1d(
            grid, np.zeros(grid.n), ELECTRON_MASS, n_states=4
        )
        exact = infinite_well_levels(L, ELECTRON_MASS, 4)
        for got, ref in zip(states.energies, exact):
            assert got == pytest.approx(ref, rel=1e-4)

    def test_wavefunctions_normalised(self):
        grid = uniform_grid(0.0, 5e-9, 501)
        states = solve_schrodinger_1d(
            grid, np.zeros(grid.n), ELECTRON_MASS, n_states=3
        )
        h = grid.spacing[0]
        norms = np.sum(np.abs(states.wavefunctions) ** 2, axis=0) * h
        assert np.allclose(norms, 1.0, rtol=1e-10)

    def test_ground_state_has_no_node(self):
        grid = uniform_grid(0.0, 5e-9, 501)
        states = solve_schrodinger_1d(
            grid, np.zeros(grid.n), ELECTRON_MASS, n_states=2
        )
        psi0 = states.wavefunctions[:, 0]
        assert np.all(psi0 > 0) or np.all(psi0 < 0)

    def test_first_excited_has_one_node(self):
        grid = uniform_grid(0.0, 5e-9, 501)
        states = solve_schrodinger_1d(
            grid, np.zeros(grid.n), ELECTRON_MASS, n_states=2
        )
        psi1 = states.wavefunctions[:, 1]
        sign_changes = int(np.sum(np.abs(np.diff(np.sign(psi1))) > 1))
        assert sign_changes == 1


class TestHarmonicOscillator:
    def test_evenly_spaced_levels(self):
        """V = (1/2) m w^2 x^2 has levels hbar*w*(n + 1/2)."""
        omega = 2.0e14
        L = 40e-9
        grid = uniform_grid(-L / 2, L / 2, 3001)
        v = 0.5 * ELECTRON_MASS * omega**2 * grid.points**2
        states = solve_schrodinger_1d(grid, v, ELECTRON_MASS, n_states=3)
        expected = [HBAR * omega * (n + 0.5) for n in range(3)]
        for got, ref in zip(states.energies, expected):
            assert got == pytest.approx(ref, rel=1e-3)


class TestEffectiveMass:
    def test_lighter_mass_raises_energies(self):
        grid = uniform_grid(0.0, 5e-9, 801)
        heavy = solve_schrodinger_1d(
            grid, np.zeros(grid.n), ELECTRON_MASS, n_states=1
        )
        light = solve_schrodinger_1d(
            grid, np.zeros(grid.n), 0.2 * ELECTRON_MASS, n_states=1
        )
        assert light.energies[0] == pytest.approx(
            5.0 * heavy.energies[0], rel=1e-6
        )


class TestDensityAndValidation:
    def test_density_integrates_to_total_occupation(self):
        grid = uniform_grid(0.0, 5e-9, 401)
        states = solve_schrodinger_1d(
            grid, np.zeros(grid.n), ELECTRON_MASS, n_states=2
        )
        occ = np.array([3.0, 1.5])
        density = states.density(occ)
        total = np.sum(density) * grid.spacing[0]
        assert total == pytest.approx(4.5, rel=1e-10)

    def test_rejects_nonuniform_grid(self):
        from repro.solver import nonuniform_grid

        grid = nonuniform_grid([0.0, 1e-9, 5e-9], [5, 5])
        with pytest.raises(ConfigurationError):
            solve_schrodinger_1d(grid, np.zeros(grid.n), ELECTRON_MASS)

    def test_rejects_bad_occupation_length(self):
        grid = uniform_grid(0.0, 5e-9, 101)
        states = solve_schrodinger_1d(
            grid, np.zeros(grid.n), ELECTRON_MASS, n_states=2
        )
        with pytest.raises(ConfigurationError):
            states.density(np.ones(3))

    def test_barrier_raises_energy_vs_free_well(self):
        grid = uniform_grid(0.0, 10e-9, 801)
        barrier = np.where(
            np.abs(grid.points - 5e-9) < 1e-9, ev_to_j(0.3), 0.0
        )
        free = solve_schrodinger_1d(
            grid, np.zeros(grid.n), ELECTRON_MASS, n_states=1
        )
        blocked = solve_schrodinger_1d(
            grid, barrier, ELECTRON_MASS, n_states=1
        )
        assert blocked.energies[0] > free.energies[0]
