"""Silicon baseline vs the MLGNR-CNT proposal."""

import pytest

from repro.device import (
    PROGRAM_BIAS,
    barrier_advantage_ev,
    mlgnr_reference_fgt,
    silicon_baseline_fgt,
    simulate_transient,
)


class TestSiliconBaseline:
    def test_si_sio2_barrier_matches_literature(self):
        device = silicon_baseline_fgt()
        tunnel, _ = device.barrier_heights_ev()
        assert tunnel == pytest.approx(3.10, abs=0.05)

    def test_same_geometry_as_reference(self):
        si = silicon_baseline_fgt()
        gnr = mlgnr_reference_fgt()
        assert si.geometry == gnr.geometry
        assert si.gate_coupling_ratio == pytest.approx(
            gnr.gate_coupling_ratio
        )


class TestComparison:
    def test_graphene_barrier_taller_by_half_ev(self):
        assert barrier_advantage_ev() == pytest.approx(0.51, abs=0.02)

    def test_silicon_programs_faster_at_same_bias(self):
        """The ~0.5 eV lower Si/SiO2 barrier passes more FN current at
        the same 15 V condition, so the baseline saturates sooner."""
        si = simulate_transient(
            silicon_baseline_fgt(), PROGRAM_BIAS, duration_s=1e-2
        )
        gnr = simulate_transient(
            mlgnr_reference_fgt(), PROGRAM_BIAS, duration_s=1e-2
        )
        assert si.t_sat_s < gnr.t_sat_s

    def test_both_devices_store_comparable_charge(self):
        """The stored charge is set by the capacitive balance, not the
        barrier, so the two devices end within ~2x of each other."""
        si = simulate_transient(
            silicon_baseline_fgt(), PROGRAM_BIAS, duration_s=1e-1
        )
        gnr = simulate_transient(
            mlgnr_reference_fgt(), PROGRAM_BIAS, duration_s=1e-1
        )
        ratio = abs(si.final_charge_c / gnr.final_charge_c)
        assert 0.5 < ratio < 2.0

    def test_graphene_retains_better(self):
        """The taller barrier suppresses retention leakage."""
        from repro.device import RetentionModel, equilibrium_charge

        si_device = silicon_baseline_fgt()
        gnr_device = mlgnr_reference_fgt()
        q_si = equilibrium_charge(si_device, PROGRAM_BIAS)
        q_gnr = equilibrium_charge(gnr_device, PROGRAM_BIAS)
        si_leak = RetentionModel(si_device).leakage_current_a(q_si)
        gnr_leak = RetentionModel(gnr_device).leakage_current_a(q_gnr)
        assert gnr_leak < si_leak
