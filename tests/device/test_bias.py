"""Bias conditions."""

import pytest

from repro.device import ERASE_BIAS, PROGRAM_BIAS, READ_BIAS


class TestPaperConditions:
    def test_program_is_plus_15(self):
        assert PROGRAM_BIAS.voltages.vgs == 15.0

    def test_program_drain_is_50mv_but_treated_as_ground(self):
        """Paper Section III: 50 mV drain raises channel electron
        density but is dropped from the electrostatic equations."""
        assert PROGRAM_BIAS.voltages.vds == pytest.approx(0.05)
        assert PROGRAM_BIAS.effective_voltages.vds == 0.0

    def test_erase_is_minus_15(self):
        assert ERASE_BIAS.voltages.vgs == -15.0

    def test_source_and_body_grounded(self):
        for bias in (PROGRAM_BIAS, ERASE_BIAS):
            assert bias.voltages.vs == 0.0
            assert bias.voltages.vb == 0.0

    def test_read_keeps_drain_bias(self):
        assert READ_BIAS.effective_voltages.vds == pytest.approx(0.5)


class TestSweepHelper:
    def test_with_gate_voltage_changes_only_vgs(self):
        swept = PROGRAM_BIAS.with_gate_voltage(12.0)
        assert swept.voltages.vgs == 12.0
        assert swept.voltages.vds == PROGRAM_BIAS.voltages.vds
        assert swept.name == PROGRAM_BIAS.name

    def test_original_unmodified(self):
        PROGRAM_BIAS.with_gate_voltage(10.0)
        assert PROGRAM_BIAS.voltages.vgs == 15.0
