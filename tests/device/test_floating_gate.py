"""The lumped floating-gate transistor."""

import pytest

from repro.device import ERASE_BIAS, PROGRAM_BIAS, FloatingGateTransistor
from repro.errors import ConfigurationError
from repro.tunneling import TunnelingRegime


class TestConstruction:
    def test_default_gcr_is_paper_value(self, paper_device):
        assert paper_device.gate_coupling_ratio == pytest.approx(0.6)

    def test_barrier_heights_from_materials(self, paper_device):
        tunnel, control = paper_device.barrier_heights_ev()
        assert tunnel == pytest.approx(3.61)  # graphene on SiO2
        assert control == pytest.approx(3.61)

    def test_with_gcr_retunes_wrap_area(self, paper_device):
        for target in (0.4, 0.55, 0.7):
            retuned = paper_device.with_gate_coupling_ratio(target)
            assert retuned.gate_coupling_ratio == pytest.approx(target)

    def test_with_gcr_rejects_out_of_range(self, paper_device):
        with pytest.raises(ConfigurationError):
            paper_device.with_gate_coupling_ratio(1.0)


class TestFloatingGateVoltage:
    def test_paper_operating_point(self, paper_device):
        assert paper_device.floating_gate_voltage(
            PROGRAM_BIAS
        ) == pytest.approx(9.0, abs=1e-9)

    def test_erase_mirrors_program(self, paper_device):
        assert paper_device.floating_gate_voltage(
            ERASE_BIAS
        ) == pytest.approx(-9.0, abs=1e-9)

    def test_stored_charge_shifts_vfg(self, paper_device):
        v0 = paper_device.floating_gate_voltage(PROGRAM_BIAS, 0.0)
        v1 = paper_device.floating_gate_voltage(PROGRAM_BIAS, -1e-16)
        assert v1 < v0


class TestTunnelingState:
    def test_programming_jin_dominates_at_t0(self, paper_device):
        state = paper_device.tunneling_state(PROGRAM_BIAS, 0.0)
        assert state.jin_a_m2 > 1e6 * state.jout_a_m2
        assert state.net_current_a < 0.0  # charging with electrons

    def test_erase_reverses_current_directions(self, paper_device):
        state = paper_device.tunneling_state(ERASE_BIAS, 0.0)
        assert state.jin_a_m2 < 0.0  # electrons leave via tunnel oxide
        assert state.net_current_a > 0.0

    def test_stored_charge_reduces_net_programming_current(
        self, paper_device
    ):
        fresh = paper_device.tunneling_state(PROGRAM_BIAS, 0.0)
        charged = paper_device.tunneling_state(PROGRAM_BIAS, -1.2e-16)
        assert abs(charged.net_current_a) < abs(fresh.net_current_a)

    def test_charge_derivative_is_net_current(self, paper_device):
        state = paper_device.tunneling_state(PROGRAM_BIAS, -5e-17)
        assert paper_device.charge_derivative(
            PROGRAM_BIAS, -5e-17
        ) == pytest.approx(state.net_current_a)


class TestRegime:
    def test_paper_point_is_triangular(self, paper_device):
        assessment = paper_device.assess_regime(PROGRAM_BIAS)
        assert assessment.triangular
        # 5 nm oxide: the paper's contested FN/direct boundary zone.
        assert assessment.regime in (
            TunnelingRegime.FOWLER_NORDHEIM,
            TunnelingRegime.TRANSITIONAL,
        )

    def test_low_bias_not_triangular(self, paper_device):
        low = PROGRAM_BIAS.with_gate_voltage(3.0)
        assert not paper_device.assess_regime(low).triangular


class TestOxideThicknessEffect:
    def test_thinner_tunnel_oxide_programs_faster(self, paper_device):
        from dataclasses import replace

        thin = replace(
            paper_device,
            geometry=paper_device.geometry.with_tunnel_oxide_nm(4.0),
        ).with_gate_coupling_ratio(0.6)  # hold coupling fixed (Figure 7)
        j_thin = thin.tunneling_state(PROGRAM_BIAS).jin_a_m2
        j_ref = paper_device.tunneling_state(PROGRAM_BIAS).jin_a_m2
        assert j_thin > 10.0 * j_ref
