"""Retention: charge loss of the idle programmed cell."""

import pytest

from repro.device import (
    PROGRAM_BIAS,
    RetentionModel,
    TEN_YEARS_S,
    equilibrium_charge,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def programmed_charge(paper_device):
    return equilibrium_charge(paper_device, PROGRAM_BIAS)


class TestLeakage:
    def test_leakage_positive_for_stored_charge(
        self, paper_device, programmed_charge
    ):
        model = RetentionModel(paper_device)
        assert model.leakage_current_a(programmed_charge) > 0.0

    def test_leakage_grows_with_stored_charge(self, paper_device):
        model = RetentionModel(paper_device)
        assert model.leakage_current_a(-2e-16) > model.leakage_current_a(
            -1e-16
        )

    def test_traps_increase_leakage(self, paper_device, programmed_charge):
        clean = RetentionModel(paper_device, trap_density_m2=0.0)
        stressed = RetentionModel(paper_device, trap_density_m2=1e16)
        assert stressed.leakage_current_a(
            programmed_charge
        ) > clean.leakage_current_a(programmed_charge)


class TestRetentionSimulation:
    @pytest.fixture(scope="class")
    def result(self, paper_device, programmed_charge):
        return RetentionModel(paper_device).simulate(
            programmed_charge, duration_s=TEN_YEARS_S
        )

    def test_charge_decays_monotonically(self, result):
        import numpy as np

        magnitudes = np.abs(result.charge_c)
        assert np.all(np.diff(magnitudes) <= 1e-30)

    def test_charge_never_reverses_sign(self, result):
        import numpy as np

        assert np.all(result.charge_c <= 0.0)

    def test_ten_year_fraction_between_zero_and_one(self, result):
        assert 0.0 <= result.charge_after_10y_fraction <= 1.0

    def test_nonvolatile_for_thick_fresh_oxide(self, result):
        """A fresh 5 nm SiO2 stack retains most charge for 10 years --
        the nonvolatility premise of the paper's device."""
        assert result.charge_after_10y_fraction > 0.5

    def test_half_life_extrapolated(self, result):
        assert result.time_to_half_s is None or result.time_to_half_s > 0.0


class TestTrappedOxideRetention:
    def test_cycled_oxide_retains_less(self, paper_device, programmed_charge):
        fresh = RetentionModel(paper_device).simulate(
            programmed_charge, duration_s=TEN_YEARS_S, n_samples=80
        )
        worn = RetentionModel(
            paper_device, trap_density_m2=3e16
        ).simulate(programmed_charge, duration_s=TEN_YEARS_S, n_samples=80)
        assert (
            worn.charge_after_10y_fraction
            < fresh.charge_after_10y_fraction
        )


class TestValidation:
    def test_rejects_zero_charge(self, paper_device):
        with pytest.raises(ConfigurationError):
            RetentionModel(paper_device).simulate(0.0)

    def test_rejects_nonpositive_duration(
        self, paper_device, programmed_charge
    ):
        with pytest.raises(ConfigurationError):
            RetentionModel(paper_device).simulate(
                programmed_charge, duration_s=-1.0
            )


class TestBatchRetention:
    """The array-valued leakage integrator vs the scalar reference."""

    def test_single_lane_is_bit_identical(self, paper_device, programmed_charge):
        import numpy as np

        model = RetentionModel(paper_device)
        solo = model.simulate(
            programmed_charge, duration_s=TEN_YEARS_S, n_samples=40
        )
        lane = model.simulate_batch(
            [programmed_charge], duration_s=TEN_YEARS_S, n_samples=40
        )[0]
        np.testing.assert_array_equal(lane.t_s, solo.t_s)
        np.testing.assert_array_equal(lane.charge_c, solo.charge_c)
        assert lane.charge_after_10y_fraction == solo.charge_after_10y_fraction
        assert lane.time_to_half_s == solo.time_to_half_s

    def test_leakage_batch_matches_scalar(self, paper_device):
        import numpy as np

        model = RetentionModel(paper_device, trap_density_m2=1e14)
        charges = np.linspace(-2e-16, -0.5e-16, 7)
        batch = model.leakage_current_batch(charges)
        scalar = np.array(
            [model.leakage_current_a(float(q)) for q in charges]
        )
        np.testing.assert_allclose(batch, scalar, rtol=1e-9, atol=0.0)

    def test_lanes_match_scalar_runs(self, paper_device, programmed_charge):
        import numpy as np

        model = RetentionModel(paper_device)
        charges = np.array(
            [programmed_charge, 0.5 * programmed_charge]
        )
        batch = model.simulate_batch(
            charges, duration_s=TEN_YEARS_S, n_samples=40
        )
        for lane, q0 in zip(batch, charges):
            solo = model.simulate(
                float(q0), duration_s=TEN_YEARS_S, n_samples=40
            )
            assert lane.charge_after_10y_fraction == pytest.approx(
                solo.charge_after_10y_fraction, rel=1e-5, abs=1e-8
            )

    def test_trapped_lanes_drain(self, paper_device, programmed_charge):
        """Heavily trapped lanes fully discharge without stalling the
        shared adaptive solve (the zero crossings are event-segmented)."""
        import numpy as np

        model = RetentionModel(paper_device, trap_density_m2=1e15)
        charges = np.array(
            [programmed_charge, 0.7 * programmed_charge, 0.4 * programmed_charge]
        )
        batch = model.simulate_batch(
            charges, duration_s=TEN_YEARS_S, n_samples=40
        )
        for lane in batch:
            assert abs(lane.charge_after_10y_fraction) < 1e-3

    def test_rejects_zero_lane(self, paper_device, programmed_charge):
        import numpy as np

        with pytest.raises(ConfigurationError):
            RetentionModel(paper_device).simulate_batch(
                np.array([programmed_charge, 0.0])
            )
