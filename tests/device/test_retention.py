"""Retention: charge loss of the idle programmed cell."""

import pytest

from repro.device import (
    PROGRAM_BIAS,
    RetentionModel,
    TEN_YEARS_S,
    equilibrium_charge,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def programmed_charge(paper_device):
    return equilibrium_charge(paper_device, PROGRAM_BIAS)


class TestLeakage:
    def test_leakage_positive_for_stored_charge(
        self, paper_device, programmed_charge
    ):
        model = RetentionModel(paper_device)
        assert model.leakage_current_a(programmed_charge) > 0.0

    def test_leakage_grows_with_stored_charge(self, paper_device):
        model = RetentionModel(paper_device)
        assert model.leakage_current_a(-2e-16) > model.leakage_current_a(
            -1e-16
        )

    def test_traps_increase_leakage(self, paper_device, programmed_charge):
        clean = RetentionModel(paper_device, trap_density_m2=0.0)
        stressed = RetentionModel(paper_device, trap_density_m2=1e16)
        assert stressed.leakage_current_a(
            programmed_charge
        ) > clean.leakage_current_a(programmed_charge)


class TestRetentionSimulation:
    @pytest.fixture(scope="class")
    def result(self, paper_device, programmed_charge):
        return RetentionModel(paper_device).simulate(
            programmed_charge, duration_s=TEN_YEARS_S
        )

    def test_charge_decays_monotonically(self, result):
        import numpy as np

        magnitudes = np.abs(result.charge_c)
        assert np.all(np.diff(magnitudes) <= 1e-30)

    def test_charge_never_reverses_sign(self, result):
        import numpy as np

        assert np.all(result.charge_c <= 0.0)

    def test_ten_year_fraction_between_zero_and_one(self, result):
        assert 0.0 <= result.charge_after_10y_fraction <= 1.0

    def test_nonvolatile_for_thick_fresh_oxide(self, result):
        """A fresh 5 nm SiO2 stack retains most charge for 10 years --
        the nonvolatility premise of the paper's device."""
        assert result.charge_after_10y_fraction > 0.5

    def test_half_life_extrapolated(self, result):
        assert result.time_to_half_s is None or result.time_to_half_s > 0.0


class TestTrappedOxideRetention:
    def test_cycled_oxide_retains_less(self, paper_device, programmed_charge):
        fresh = RetentionModel(paper_device).simulate(
            programmed_charge, duration_s=TEN_YEARS_S, n_samples=80
        )
        worn = RetentionModel(
            paper_device, trap_density_m2=3e16
        ).simulate(programmed_charge, duration_s=TEN_YEARS_S, n_samples=80)
        assert (
            worn.charge_after_10y_fraction
            < fresh.charge_after_10y_fraction
        )


class TestValidation:
    def test_rejects_zero_charge(self, paper_device):
        with pytest.raises(ConfigurationError):
            RetentionModel(paper_device).simulate(0.0)

    def test_rejects_nonpositive_duration(
        self, paper_device, programmed_charge
    ):
        with pytest.raises(ConfigurationError):
            RetentionModel(paper_device).simulate(
                programmed_charge, duration_s=-1.0
            )
