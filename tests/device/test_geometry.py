"""Device geometry."""

import pytest

from repro.device import DeviceGeometry
from repro.errors import ConfigurationError
from repro.units import nm_to_m


class TestDefaults:
    def test_paper_reference_stack(self):
        g = DeviceGeometry()
        assert g.tunnel_oxide_thickness_m == pytest.approx(nm_to_m(5.0))
        assert g.control_oxide_thickness_m == pytest.approx(nm_to_m(8.0))
        assert g.control_oxide_thickness_m > g.tunnel_oxide_thickness_m

    def test_channel_area(self):
        g = DeviceGeometry()
        assert g.channel_area_m2 == pytest.approx(
            g.channel_length_m * g.channel_width_m
        )


class TestCopies:
    def test_with_tunnel_oxide(self):
        g = DeviceGeometry().with_tunnel_oxide_nm(6.0)
        assert g.tunnel_oxide_thickness_m == pytest.approx(nm_to_m(6.0))
        # Everything else preserved.
        assert g.control_oxide_thickness_m == pytest.approx(nm_to_m(8.0))

    def test_with_control_oxide(self):
        g = DeviceGeometry().with_control_oxide_nm(10.0)
        assert g.control_oxide_thickness_m == pytest.approx(nm_to_m(10.0))

    def test_copy_validation_still_applies(self):
        with pytest.raises(ConfigurationError):
            DeviceGeometry().with_tunnel_oxide_nm(9.0)  # > control oxide


class TestValidation:
    def test_rejects_control_thinner_than_tunnel(self):
        with pytest.raises(ConfigurationError):
            DeviceGeometry(
                tunnel_oxide_thickness_m=nm_to_m(8.0),
                control_oxide_thickness_m=nm_to_m(5.0),
            )

    def test_rejects_nonpositive_dimension(self):
        with pytest.raises(ConfigurationError):
            DeviceGeometry(channel_length_m=0.0)

    def test_rejects_negative_overlap(self):
        with pytest.raises(ConfigurationError):
            DeviceGeometry(source_overlap_fraction=-0.1)
