"""Program/erase transients (paper Figures 4-5 dynamics)."""

import numpy as np
import pytest

from repro.device import (
    ERASE_BIAS,
    PROGRAM_BIAS,
    equilibrium_charge,
    equilibrium_floating_gate_voltage,
    simulate_transient,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def program_result(paper_device):
    return simulate_transient(
        paper_device, PROGRAM_BIAS, duration_s=1e-2, n_samples=200
    )


class TestEquilibrium:
    def test_balance_point_between_zero_and_gcr_vgs(self, paper_device):
        vfg_star = equilibrium_floating_gate_voltage(
            paper_device, PROGRAM_BIAS
        )
        assert 0.0 < vfg_star < 9.0

    def test_balance_currents_match_with_areas(self, paper_device):
        vfg_star = equilibrium_floating_gate_voltage(
            paper_device, PROGRAM_BIAS
        )
        area = paper_device.geometry.channel_area_m2
        mult = paper_device.geometry.control_gate_area_multiplier
        jin = paper_device.tunnel_fn_model.current_density_from_voltage(
            vfg_star
        )
        jout = paper_device.control_fn_model.current_density_from_voltage(
            15.0 - vfg_star
        )
        assert jin * area == pytest.approx(jout * area * mult, rel=1e-5)

    def test_equilibrium_charge_negative_for_programming(self, paper_device):
        assert equilibrium_charge(paper_device, PROGRAM_BIAS) < 0.0

    def test_equilibrium_charge_positive_for_erase(self, paper_device):
        assert equilibrium_charge(paper_device, ERASE_BIAS) > 0.0

    def test_zero_gate_voltage_rejected(self, paper_device):
        with pytest.raises(ConfigurationError):
            equilibrium_floating_gate_voltage(
                paper_device, PROGRAM_BIAS.with_gate_voltage(0.0)
            )


class TestProgrammingTransient:
    def test_charge_accumulates_monotonically(self, program_result):
        assert np.all(np.diff(program_result.charge_c) <= 1e-30)

    def test_vfg_decays_from_nine_volts(self, program_result):
        assert program_result.vfg_v[0] == pytest.approx(9.0, abs=1e-6)
        assert program_result.vfg_v[-1] < 9.0

    def test_jin_starts_many_decades_above_jout(self, program_result):
        ratio = program_result.jin_a_m2[0] / program_result.jout_a_m2[0]
        assert ratio > 1e6

    def test_reaches_saturation(self, program_result):
        assert program_result.saturation_fraction() > 0.99
        assert program_result.t_sat_s is not None

    def test_final_charge_matches_equilibrium(
        self, program_result, paper_device
    ):
        q_eq = equilibrium_charge(paper_device, PROGRAM_BIAS)
        assert program_result.final_charge_c == pytest.approx(
            q_eq, rel=1e-3
        )

    def test_stored_electron_count_reasonable(self, program_result):
        """A ~60x45 nm cell stores hundreds-to-thousands of electrons."""
        assert 100 < program_result.stored_electrons < 1e5


class TestEraseTransient:
    def test_erase_removes_programmed_charge(
        self, paper_device, program_result
    ):
        erase = simulate_transient(
            paper_device,
            ERASE_BIAS,
            initial_charge_c=program_result.final_charge_c,
            duration_s=1e-2,
        )
        # Ends at the positive (depleted) equilibrium, past zero.
        assert erase.final_charge_c > 0.0
        assert erase.t_sat_s is not None

    def test_program_erase_window_symmetric_for_symmetric_bias(
        self, paper_device
    ):
        q_prog = equilibrium_charge(paper_device, PROGRAM_BIAS)
        q_erase = equilibrium_charge(paper_device, ERASE_BIAS)
        assert q_prog == pytest.approx(-q_erase, rel=1e-6)


class TestHigherVoltageFasterProgramming:
    def test_tsat_shrinks_with_voltage(self, paper_device):
        slow = simulate_transient(
            paper_device,
            PROGRAM_BIAS.with_gate_voltage(13.0),
            duration_s=1.0,
        )
        fast = simulate_transient(
            paper_device,
            PROGRAM_BIAS.with_gate_voltage(17.0),
            duration_s=1.0,
        )
        assert fast.t_sat_s < slow.t_sat_s


class TestValidation:
    def test_rejects_nonpositive_duration(self, paper_device):
        with pytest.raises(ConfigurationError):
            simulate_transient(paper_device, PROGRAM_BIAS, duration_s=0.0)

    def test_rejects_bad_epsilon(self, paper_device):
        with pytest.raises(ConfigurationError):
            simulate_transient(
                paper_device,
                PROGRAM_BIAS,
                duration_s=1e-3,
                saturation_epsilon=1.5,
            )
