"""Pulse trains and ISPP waveforms."""

import numpy as np
import pytest

from repro.device import (
    PROGRAM_BIAS,
    PulseStep,
    PulseTrain,
    apply_pulse_train,
)
from repro.errors import ConfigurationError


class TestTrainConstruction:
    def test_square_single_step(self):
        train = PulseTrain.square(15.0, 1e-5)
        assert len(train.steps) == 1
        assert train.total_duration_s == pytest.approx(1e-5)

    def test_ispp_staircase_voltages(self):
        train = PulseTrain.ispp(12.0, 0.5, 4, 1e-5)
        voltages = [s.gate_voltage_v for s in train.steps]
        assert voltages == [12.0, 12.5, 13.0, 13.5]

    def test_rejects_empty_train(self):
        with pytest.raises(ConfigurationError):
            PulseTrain(steps=())

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ConfigurationError):
            PulseStep(15.0, 0.0)

    def test_rejects_nonpositive_ispp_step(self):
        with pytest.raises(ConfigurationError):
            PulseTrain.ispp(12.0, 0.0, 4, 1e-5)


class TestApplication:
    def test_charge_accumulates_across_pulses(self, paper_device):
        train = PulseTrain.ispp(12.0, 1.0, 4, 1e-5)
        result = apply_pulse_train(paper_device, PROGRAM_BIAS, train)
        charges = result.charge_after_each_c
        assert np.all(np.diff(charges) < 0.0)  # more electrons each pulse

    def test_final_charge_matches_last_pulse(self, paper_device):
        train = PulseTrain.ispp(12.0, 1.0, 3, 1e-5)
        result = apply_pulse_train(paper_device, PROGRAM_BIAS, train)
        assert result.final_charge_c == pytest.approx(
            result.charge_after_each_c[-1]
        )
        assert result.final_charge_c == pytest.approx(
            result.per_pulse[-1].final_charge_c
        )

    def test_chaining_preserves_continuity(self, paper_device):
        """Each pulse starts from the previous pulse's end charge."""
        train = PulseTrain.ispp(13.0, 0.5, 3, 1e-5)
        result = apply_pulse_train(paper_device, PROGRAM_BIAS, train)
        for previous, current in zip(result.per_pulse, result.per_pulse[1:]):
            assert current.charge_c[0] == pytest.approx(
                previous.final_charge_c, rel=1e-9
            )

    def test_two_short_pulses_beat_one(self, paper_device):
        """Two pulses at the same voltage store more than one of the
        same length (monotone approach to equilibrium)."""
        one = apply_pulse_train(
            paper_device, PROGRAM_BIAS, PulseTrain.square(15.0, 1e-5)
        )
        two = apply_pulse_train(
            paper_device,
            PROGRAM_BIAS,
            PulseTrain(
                steps=(PulseStep(15.0, 1e-5), PulseStep(15.0, 1e-5))
            ),
        )
        assert abs(two.final_charge_c) > abs(one.final_charge_c)
