"""Landauer transport through the GNR band structure."""

import numpy as np
import pytest

from repro.device import G0, LandauerChannel
from repro.errors import ConfigurationError
from repro.materials import GrapheneNanoribbon


@pytest.fixture(scope="module")
def channel():
    return LandauerChannel(
        ribbon=GrapheneNanoribbon("armchair", 13),
        temperature_k=300.0,
        gate_efficiency=0.5,
    )


@pytest.fixture(scope="module")
def cold_channel():
    """Low temperature sharpens the conductance steps."""
    return LandauerChannel(
        ribbon=GrapheneNanoribbon("armchair", 13),
        temperature_k=30.0,
        gate_efficiency=1.0,
    )


class TestBasics:
    def test_zero_bias_zero_current(self, channel):
        assert channel.drain_current_a(2.0, 0.0) == 0.0

    def test_off_state_in_gap(self, channel):
        """No overdrive: the Fermi level sits midgap, current tiny."""
        i_off = channel.drain_current_a(0.0, 0.1)
        i_on = channel.drain_current_a(3.0, 0.1)
        assert i_on > 1e3 * i_off

    def test_current_monotonic_in_gate(self, channel):
        currents = [
            channel.drain_current_a(v, 0.1) for v in (0.5, 1.5, 2.5, 3.5)
        ]
        assert all(a < b for a, b in zip(currents, currents[1:]))

    def test_current_monotonic_in_drain_bias(self, channel):
        assert channel.drain_current_a(2.0, 0.2) > channel.drain_current_a(
            2.0, 0.1
        )

    def test_rejects_negative_drain(self, channel):
        with pytest.raises(ConfigurationError):
            channel.drain_current_a(1.0, -0.1)


class TestQuantisedConductance:
    def test_first_plateau_at_g0(self, cold_channel):
        """Once the first subband pair conducts, G ~= 1 G0 (per the
        band-structure mode count) before the next subband opens."""
        onsets = cold_channel.subband_onsets_ev()
        assert len(onsets) >= 2
        mid_plateau = 0.5 * (onsets[0] + onsets[1])
        g = cold_channel.conductance_s(mid_plateau) / G0
        modes = cold_channel.mode_count(mid_plateau)
        assert g == pytest.approx(modes, rel=0.1)

    def test_staircase_monotonic(self, cold_channel):
        sweep = np.linspace(0.0, 2.5, 26)
        staircase = cold_channel.conductance_staircase(sweep)
        assert np.all(np.diff(staircase) >= -1e-6)

    def test_staircase_reaches_higher_plateaus(self, cold_channel):
        sweep = np.linspace(0.0, 3.0, 31)
        staircase = cold_channel.conductance_staircase(sweep)
        assert staircase[-1] > 1.5  # beyond the first plateau

    def test_warm_staircase_smoother(self, channel, cold_channel):
        """Thermal smearing rounds the steps: at the first onset the
        warm channel already conducts appreciably."""
        onset = cold_channel.subband_onsets_ev()[0]
        g_cold = cold_channel.conductance_s(onset - 0.15) / G0
        warm = LandauerChannel(
            ribbon=channel.ribbon,
            temperature_k=300.0,
            gate_efficiency=1.0,
        )
        g_warm = warm.conductance_s(onset - 0.15) / G0
        assert g_warm > g_cold


class TestBandStructureConsistency:
    def test_onsets_match_half_gap(self, channel):
        """The first subband onset is the conduction band edge."""
        onsets = channel.subband_onsets_ev()
        half_gap = channel.ribbon.band_gap_ev / 2.0
        assert onsets[0] == pytest.approx(half_gap, abs=0.05)

    def test_transmission_scales_current(self):
        ribbon = GrapheneNanoribbon("armchair", 13)
        full = LandauerChannel(ribbon=ribbon, transmission=1.0)
        half = LandauerChannel(ribbon=ribbon, transmission=0.5)
        assert half.drain_current_a(2.0, 0.1) == pytest.approx(
            0.5 * full.drain_current_a(2.0, 0.1), rel=1e-9
        )

    def test_rejects_bad_parameters(self):
        ribbon = GrapheneNanoribbon("armchair", 13)
        with pytest.raises(ConfigurationError):
            LandauerChannel(ribbon=ribbon, transmission=0.0)
        with pytest.raises(ConfigurationError):
            LandauerChannel(ribbon=ribbon, gate_efficiency=1.5)

    def test_vectorised_modes_match_band_structure(self, channel):
        """The channel's internal vectorised M(E) must agree with the
        band-structure package's scalar mode_count everywhere."""
        energies = np.linspace(-2.5, 2.5, 41)
        vec = channel._modes_at(energies)
        scalar = [
            channel.ribbon.band_structure.mode_count(float(e))
            for e in energies
        ]
        assert np.array_equal(vec, np.array(scalar, dtype=float))
