"""Ballistic channel I-V model."""

import math

import pytest

from repro.device import ChannelIVModel, ThresholdModel
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def iv(paper_device):
    return ChannelIVModel(ThresholdModel(paper_device))


class TestModeOpening:
    def test_modes_grow_with_overdrive(self, iv):
        vt = iv.threshold.neutral_threshold_v
        assert iv.effective_modes(vt + 2.0, 0.0) > iv.effective_modes(
            vt + 0.5, 0.0
        )

    def test_subthreshold_modes_exponentially_small(self, iv):
        vt = iv.threshold.neutral_threshold_v
        below = iv.effective_modes(vt - 0.5, 0.0)
        above = iv.effective_modes(vt + 0.5, 0.0)
        assert below < 1e-4 * above

    def test_stored_charge_closes_modes(self, iv):
        vgs = iv.threshold.neutral_threshold_v + 1.0
        open_modes = iv.effective_modes(vgs, 0.0)
        closed_modes = iv.effective_modes(vgs, -3e-16)
        assert closed_modes < open_modes


class TestDrainCurrent:
    def test_linear_region_proportional_to_vds(self, iv):
        vgs = iv.threshold.neutral_threshold_v + 2.0
        i1 = iv.drain_current_a(vgs, 0.05)
        i2 = iv.drain_current_a(vgs, 0.10)
        assert i2 == pytest.approx(2.0 * i1, rel=1e-6)

    def test_saturates_beyond_overdrive(self, iv):
        vgs = iv.threshold.neutral_threshold_v + 0.5
        i_sat1 = iv.drain_current_a(vgs, 1.0)
        i_sat2 = iv.drain_current_a(vgs, 3.0)
        assert i_sat2 == pytest.approx(i_sat1, rel=1e-9)

    def test_magnitude_is_conductance_quantum_scale(self, iv):
        """A few modes at ~0.5 V: microamp-scale ballistic currents."""
        vgs = iv.threshold.neutral_threshold_v + 1.0
        i = iv.drain_current_a(vgs, 0.5)
        assert 1e-7 < i < 1e-3

    def test_rejects_negative_vds(self, iv):
        with pytest.raises(ConfigurationError):
            iv.drain_current_a(2.0, -0.1)


class TestOnOffRatio:
    def test_programmed_cell_reads_off(self, iv, paper_device):
        from repro.device import PROGRAM_BIAS, equilibrium_charge

        q_prog = equilibrium_charge(paper_device, PROGRAM_BIAS)
        read_v = iv.threshold.neutral_threshold_v + 1.0
        ratio = iv.on_off_ratio(read_v, 0.5, q_prog, 0.0)
        assert ratio > 1e3

    def test_infinite_ratio_handled(self, iv):
        ratio = iv.on_off_ratio(
            iv.threshold.neutral_threshold_v + 1.0, 0.5, -1e-12, 0.0
        )
        assert ratio > 0.0 or math.isinf(ratio)


class TestValidation:
    def test_rejects_bad_transmission(self, paper_device):
        with pytest.raises(ConfigurationError):
            ChannelIVModel(ThresholdModel(paper_device), transmission=1.5)

    def test_rejects_bad_modes_per_volt(self, paper_device):
        with pytest.raises(ConfigurationError):
            ChannelIVModel(ThresholdModel(paper_device), modes_per_volt=0.0)


class TestDrainCurrentBatch:
    def test_matches_scalar_grid(self, iv):
        import numpy as np

        rng = np.random.default_rng(2)
        vgs = rng.uniform(0.0, 6.0, size=5)
        vds = rng.uniform(0.0, 1.5, size=5)
        charges = rng.uniform(-2e-16, 0.0, size=5)
        batch = iv.drain_current_batch(vgs, vds, charges)
        scalar = np.array(
            [
                iv.drain_current_a(float(g), float(d), float(q))
                for g, d, q in zip(vgs, vds, charges)
            ]
        )
        np.testing.assert_allclose(batch, scalar, rtol=1e-9, atol=0.0)

    def test_broadcasts_read_grid(self, iv):
        import numpy as np

        vgs = np.linspace(1.0, 4.0, 4)[:, np.newaxis]
        charges = np.array([0.0, -1e-16])
        grid = iv.drain_current_batch(vgs, 0.5, charges)
        assert grid.shape == (4, 2)

    def test_rejects_negative_vds(self, iv):
        import numpy as np

        with pytest.raises(ConfigurationError):
            iv.drain_current_batch(2.0, np.array([-0.1]), 0.0)
