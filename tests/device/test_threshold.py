"""Threshold model and charge-to-Vt mapping."""

import pytest

from repro.device import PROGRAM_BIAS, ThresholdModel, equilibrium_charge
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def threshold(paper_device):
    return ThresholdModel(paper_device)


class TestNeutralThreshold:
    def test_positive_for_cnt_gate_on_gnr_channel(self, threshold):
        """CNT work function (4.8) above graphene (4.56) plus half-gap
        over GCR: a positive neutral threshold."""
        assert threshold.neutral_threshold_v > 0.0

    def test_offset_adds_linearly(self, paper_device):
        base = ThresholdModel(paper_device).neutral_threshold_v
        shifted = ThresholdModel(
            paper_device, neutral_threshold_offset_v=0.5
        ).neutral_threshold_v
        assert shifted == pytest.approx(base + 0.5)

    def test_bigger_gap_raises_threshold(self, paper_device):
        small = ThresholdModel(paper_device, channel_band_gap_ev=0.3)
        large = ThresholdModel(paper_device, channel_band_gap_ev=1.0)
        assert large.neutral_threshold_v > small.neutral_threshold_v

    def test_rejects_negative_gap(self, paper_device):
        with pytest.raises(ConfigurationError):
            ThresholdModel(paper_device, channel_band_gap_ev=-0.1)


class TestChargeShift:
    def test_stored_electrons_raise_vt(self, threshold):
        assert threshold.threshold_v(-1e-16) > threshold.neutral_threshold_v

    def test_depletion_lowers_vt(self, threshold):
        assert threshold.threshold_v(+1e-16) < threshold.neutral_threshold_v

    def test_shift_is_q_over_cfc(self, threshold, paper_device):
        q = -2e-16
        shift = threshold.threshold_v(q) - threshold.neutral_threshold_v
        assert shift == pytest.approx(-q / paper_device.capacitances.cfc)

    def test_charge_for_threshold_round_trip(self, threshold):
        target = threshold.neutral_threshold_v + 2.0
        q = threshold.charge_for_threshold(target)
        assert threshold.threshold_v(q) == pytest.approx(target)


class TestLogicStates:
    def test_programmed_state_above_erased(self, threshold, paper_device):
        q_prog = equilibrium_charge(paper_device, PROGRAM_BIAS)
        vt_prog, vt_erased = threshold.state_thresholds(q_prog, 0.0)
        assert vt_prog > vt_erased
