"""Memory window between logic states."""

import pytest

from repro.device import (
    ThresholdModel,
    pulsed_memory_window,
    saturated_memory_window,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def threshold(paper_device):
    return ThresholdModel(paper_device)


@pytest.fixture(scope="module")
def saturated(threshold):
    return saturated_memory_window(threshold)


class TestSaturatedWindow:
    def test_programmed_above_erased(self, saturated):
        assert saturated.programmed_vt_v > saturated.erased_vt_v

    def test_window_is_difference(self, saturated):
        assert saturated.window_v == pytest.approx(
            saturated.programmed_vt_v - saturated.erased_vt_v
        )

    def test_window_usable_at_paper_voltages(self, saturated):
        """+/-15 V with GCR 0.6: a multi-volt window."""
        assert saturated.is_usable(min_window_v=2.0)
        assert saturated.window_v > 5.0

    def test_charges_signed_correctly(self, saturated):
        assert saturated.programmed_charge_c < 0.0  # electrons stored
        assert saturated.erased_charge_c > 0.0  # electrons depleted


class TestPulsedWindow:
    def test_short_pulse_smaller_window(self, threshold, saturated):
        short = pulsed_memory_window(threshold, pulse_duration_s=1e-6)
        assert short.window_v < saturated.window_v

    def test_long_pulse_approaches_saturation(self, threshold, saturated):
        long = pulsed_memory_window(threshold, pulse_duration_s=1e-1)
        assert long.window_v == pytest.approx(
            saturated.window_v, rel=0.05
        )

    def test_window_grows_with_pulse_length(self, threshold):
        w1 = pulsed_memory_window(threshold, 1e-6).window_v
        w2 = pulsed_memory_window(threshold, 1e-4).window_v
        assert w2 > w1

    def test_rejects_nonpositive_duration(self, threshold):
        with pytest.raises(ConfigurationError):
            pulsed_memory_window(threshold, 0.0)
