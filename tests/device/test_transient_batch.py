"""The array-valued transient integrator vs the scalar reference.

Three contracts:

* **Golden parity** -- a single lane through ``simulate_transient`` (and
  therefore through the batch integrator's one-lane path) is
  bit-identical to the historical scalar integration; the golden
  snapshot suite depends on it.
* **Vector accuracy** -- many lanes advanced as one adaptive vector
  state agree with the per-lane solves to the ODE tolerance.
* **RK4 bit-stability** -- fixed-step lanes are bit-identical no matter
  how the batch is composed.
"""

import numpy as np
import pytest

from repro.device import PROGRAM_BIAS, FloatingGateTransistor
from repro.device.floating_gate import CompiledCellBank
from repro.device.transient import (
    simulate_transient,
    simulate_transient_batch,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def device():
    return FloatingGateTransistor()


def _biases(voltages):
    return tuple(
        PROGRAM_BIAS.with_gate_voltage(float(v)) for v in voltages
    )


class TestCompiledCellBank:
    def test_charge_derivative_matches_scalar_cells(self, device):
        rng = np.random.default_rng(0)
        voltages = rng.uniform(12.0, 18.0, size=6)
        cells = [device.compiled(b) for b in _biases(voltages)]
        bank = CompiledCellBank.from_cells(cells)
        charges = rng.uniform(-2e-16, 1e-16, size=6)
        vector = bank.charge_derivative(charges)
        for i, cell in enumerate(cells):
            assert vector[i] == pytest.approx(
                cell.charge_derivative(float(charges[i])), rel=1e-9
            )

    def test_zero_voltage_lane_is_zero(self, device):
        cell = device.compiled(PROGRAM_BIAS.with_gate_voltage(0.0))
        bank = CompiledCellBank.from_cells([cell])
        state = bank.tunneling_state_batch(np.array([0.0]))
        assert state.jin_a_m2[0] == 0.0
        assert state.jout_a_m2[0] == 0.0

    def test_trajectory_broadcast(self, device):
        cells = [device.compiled(b) for b in _biases([14.0, 16.0])]
        bank = CompiledCellBank.from_cells(cells)
        trajectory = np.zeros((5, 2))  # (n_samples, n_lanes)
        state = bank.tunneling_state_batch(trajectory)
        assert state.jin_a_m2.shape == (5, 2)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            CompiledCellBank.from_cells([])


class TestGoldenParity:
    def test_single_lane_is_bit_identical(self, device):
        """One batch lane == the scalar simulate_transient, bit for bit."""
        solo = simulate_transient(
            device, PROGRAM_BIAS, duration_s=1e-3, n_samples=48
        )
        batch = simulate_transient_batch(
            device, (PROGRAM_BIAS,), duration_s=1e-3, n_samples=48
        )
        lane = batch.results[0]
        np.testing.assert_array_equal(lane.t_s, solo.t_s)
        np.testing.assert_array_equal(lane.charge_c, solo.charge_c)
        np.testing.assert_array_equal(lane.vfg_v, solo.vfg_v)
        np.testing.assert_array_equal(lane.jin_a_m2, solo.jin_a_m2)
        np.testing.assert_array_equal(lane.jout_a_m2, solo.jout_a_m2)
        assert lane.q_equilibrium_c == solo.q_equilibrium_c
        assert lane.t_sat_s == solo.t_sat_s


class TestVectorAccuracy:
    def test_lanes_match_per_lane_solves(self, device):
        voltages = [14.0, 15.0, 16.0, 17.0]
        batch = simulate_transient_batch(
            device, _biases(voltages), duration_s=1e-3, n_samples=32
        )
        assert batch.n_lanes == 4
        for i, bias in enumerate(_biases(voltages)):
            solo = simulate_transient(
                device, bias, duration_s=1e-3, n_samples=32
            )
            assert batch.results[i].final_charge_c == pytest.approx(
                solo.final_charge_c, rel=1e-6
            )
            assert batch.q_equilibrium_c[i] == pytest.approx(
                solo.q_equilibrium_c, rel=1e-12
            )

    def test_initial_charges_broadcast(self, device):
        q0 = -1e-16
        batch = simulate_transient_batch(
            device,
            _biases([15.0, 16.0]),
            initial_charges_c=q0,
            duration_s=1e-4,
            n_samples=16,
        )
        np.testing.assert_allclose(batch.charge_c[:, 0], q0, rtol=0.0)

    def test_per_lane_initial_charges(self, device):
        q0 = np.array([-1e-16, -2e-16])
        batch = simulate_transient_batch(
            device,
            _biases([15.0, 15.0]),
            initial_charges_c=q0,
            duration_s=1e-4,
            n_samples=16,
        )
        np.testing.assert_allclose(batch.charge_c[:, 0], q0, rtol=0.0)

    def test_t_sat_monotone_in_voltage(self, device):
        batch = simulate_transient_batch(
            device, _biases([15.0, 17.0]), duration_s=1e-2, n_samples=64
        )
        assert np.all(np.isfinite(batch.t_sat_s))
        assert batch.t_sat_s[1] < batch.t_sat_s[0]


class TestRk4:
    def test_lane_composition_bit_stable(self, device):
        """An RK4 lane is bit-identical alone or inside any batch."""
        voltages = [14.0, 15.5, 17.0]
        full = simulate_transient_batch(
            device,
            _biases(voltages),
            duration_s=1e-3,
            n_samples=24,
            method="rk4",
        )
        for i, v in enumerate(voltages):
            alone = simulate_transient_batch(
                device,
                _biases([v]),
                duration_s=1e-3,
                n_samples=24,
                method="rk4",
            )
            np.testing.assert_array_equal(
                full.charge_c[i], alone.charge_c[0]
            )

    def test_rk4_tracks_adaptive_result(self, device):
        biases = _biases([15.0, 16.0])
        adaptive = simulate_transient_batch(
            device, biases, duration_s=1e-3, n_samples=24
        )
        fixed = simulate_transient_batch(
            device, biases, duration_s=1e-3, n_samples=24, method="rk4"
        )
        np.testing.assert_allclose(
            fixed.charge_c[:, -1], adaptive.charge_c[:, -1], rtol=1e-4
        )


class TestValidation:
    def test_rejects_empty_biases(self, device):
        with pytest.raises(ConfigurationError):
            simulate_transient_batch(device, ())

    def test_rejects_unknown_method(self, device):
        with pytest.raises(ConfigurationError):
            simulate_transient_batch(
                device, (PROGRAM_BIAS,), method="euler"
            )

    def test_rejects_too_few_rk4_steps(self, device):
        with pytest.raises(ConfigurationError):
            simulate_transient_batch(
                device, (PROGRAM_BIAS,), method="rk4", rk4_steps=4
            )
