"""Design points and grids."""

import pytest

from repro.errors import ConfigurationError
from repro.optimization import DesignPoint, grid


class TestDesignPoint:
    def test_default_is_paper_operating_point(self):
        p = DesignPoint()
        assert p.program_voltage_v == 15.0
        assert p.tunnel_oxide_nm == 5.0
        assert p.gate_coupling_ratio == 0.6

    def test_build_device_honours_parameters(self):
        p = DesignPoint(
            program_voltage_v=13.0,
            tunnel_oxide_nm=6.0,
            control_oxide_nm=9.0,
            gate_coupling_ratio=0.5,
        )
        device = p.build_device()
        assert device.geometry.tunnel_oxide_thickness_m == pytest.approx(
            6e-9
        )
        assert device.gate_coupling_ratio == pytest.approx(0.5)

    def test_rejects_control_thinner_than_tunnel(self):
        with pytest.raises(ConfigurationError):
            DesignPoint(tunnel_oxide_nm=8.0, control_oxide_nm=6.0)

    def test_rejects_bad_gcr(self):
        with pytest.raises(ConfigurationError):
            DesignPoint(gate_coupling_ratio=0.0)

    def test_rejects_nonpositive_voltage(self):
        with pytest.raises(ConfigurationError):
            DesignPoint(program_voltage_v=-15.0)


class TestGrid:
    def test_cartesian_product_size(self):
        points = list(grid([13.0, 15.0], [5.0, 6.0], [9.0], [0.5, 0.6]))
        assert len(points) == 8

    def test_invalid_combinations_skipped(self):
        """XCO <= XTO combinations silently dropped."""
        points = list(grid([15.0], [5.0, 8.0, 10.0], [9.0]))
        oxides = {p.tunnel_oxide_nm for p in points}
        assert oxides == {5.0, 8.0}

    def test_empty_grid_for_all_invalid(self):
        assert list(grid([15.0], [10.0], [9.0])) == []
