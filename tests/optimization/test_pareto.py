"""Pareto-front extraction."""

import pytest

from repro.errors import ConfigurationError
from repro.optimization import DesignMetrics, DesignPoint, pareto_front


def design(t_prog, cycles):
    return DesignMetrics(
        point=DesignPoint(),
        initial_current_density_a_m2=1.0,
        peak_tunnel_field_v_per_m=1e9,
        program_time_s=t_prog,
        memory_window_v=8.0,
        cycles_to_breakdown=cycles,
    )


OBJECTIVES = [
    (lambda m: m.program_time_s, "min"),
    (lambda m: m.cycles_to_breakdown, "max"),
]


class TestDominance:
    def test_dominated_point_removed(self):
        better = design(1e-5, 1e7)
        worse = design(1e-4, 1e6)  # slower AND shorter-lived
        front = pareto_front([better, worse], OBJECTIVES)
        assert front == [better]

    def test_tradeoff_points_both_kept(self):
        fast_fragile = design(1e-5, 1e4)
        slow_tough = design(1e-3, 1e8)
        front = pareto_front([fast_fragile, slow_tough], OBJECTIVES)
        assert len(front) == 2

    def test_duplicate_points_both_survive(self):
        a = design(1e-4, 1e6)
        b = design(1e-4, 1e6)
        front = pareto_front([a, b], OBJECTIVES)
        assert len(front) == 2  # equal points do not dominate each other

    def test_none_objective_treated_as_worst(self):
        saturated = design(1e-4, 1e6)
        never = design(None, 1e9)
        front = pareto_front([saturated, never], OBJECTIVES)
        # 'never' survives on endurance; 'saturated' on speed.
        assert len(front) == 2

    def test_chain_of_dominated_points(self):
        designs = [design(10.0**-k, 1e6) for k in range(3, 7)]
        front = pareto_front(designs, OBJECTIVES)
        assert front == [designs[-1]]


class TestValidation:
    def test_rejects_no_objectives(self):
        with pytest.raises(ConfigurationError):
            pareto_front([design(1e-4, 1e6)], [])

    def test_rejects_unknown_direction(self):
        with pytest.raises(ConfigurationError):
            pareto_front(
                [design(1e-4, 1e6)],
                [(lambda m: m.memory_window_v, "sideways")],
            )
