"""Constraint evaluation."""

import pytest

from repro.errors import ConfigurationError
from repro.optimization import ConstraintSet, DesignMetrics, DesignPoint


def metrics(
    field=1.8e9, t_prog=1e-4, window=8.0, cycles=1e6
) -> DesignMetrics:
    return DesignMetrics(
        point=DesignPoint(),
        initial_current_density_a_m2=1e5,
        peak_tunnel_field_v_per_m=field,
        program_time_s=t_prog,
        memory_window_v=window,
        cycles_to_breakdown=cycles,
    )


class TestFeasibility:
    def test_good_design_feasible(self):
        assert ConstraintSet().is_feasible(metrics())

    def test_field_violation_detected(self):
        c = ConstraintSet(max_tunnel_field_v_per_m=1e9)
        violations = c.violations(metrics(field=1.8e9))
        assert len(violations) == 1
        assert "field" in violations[0]

    def test_slow_design_rejected(self):
        c = ConstraintSet(max_program_time_s=1e-5)
        assert not c.is_feasible(metrics(t_prog=1e-3))

    def test_unsaturated_counts_as_slow(self):
        assert not ConstraintSet().is_feasible(metrics(t_prog=None))

    def test_small_window_rejected(self):
        c = ConstraintSet(min_memory_window_v=10.0)
        assert not c.is_feasible(metrics(window=8.0))

    def test_low_endurance_rejected(self):
        c = ConstraintSet(min_cycles=1e7)
        assert not c.is_feasible(metrics(cycles=1e6))

    def test_multiple_violations_all_reported(self):
        c = ConstraintSet(
            max_tunnel_field_v_per_m=1e9,
            min_memory_window_v=10.0,
            min_cycles=1e7,
        )
        assert len(c.violations(metrics())) == 3


class TestValidation:
    def test_rejects_nonpositive_limits(self):
        with pytest.raises(ConfigurationError):
            ConstraintSet(max_tunnel_field_v_per_m=0.0)
        with pytest.raises(ConfigurationError):
            ConstraintSet(max_program_time_s=-1.0)
