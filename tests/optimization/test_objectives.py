"""Design evaluation metrics."""

import pytest

from repro.optimization import DesignPoint, evaluate_design


@pytest.fixture(scope="module")
def paper_metrics():
    return evaluate_design(DesignPoint(), pulse_duration_s=1e-2)


class TestPaperPoint:
    def test_initial_field_is_18_mv_per_cm(self, paper_metrics):
        assert paper_metrics.peak_tunnel_field_v_per_m == pytest.approx(
            1.8e9, rel=1e-3
        )

    def test_program_time_resolved(self, paper_metrics):
        assert paper_metrics.program_time_s is not None
        assert 1e-6 < paper_metrics.program_time_s < 1e-1

    def test_window_multivolt(self, paper_metrics):
        assert paper_metrics.memory_window_v > 5.0

    def test_endurance_positive(self, paper_metrics):
        assert paper_metrics.cycles_to_breakdown > 1e3


class TestTradeoffs:
    def test_higher_voltage_faster_but_shorter_lived(self, paper_metrics):
        hot = evaluate_design(
            DesignPoint(program_voltage_v=17.0), pulse_duration_s=1e-2
        )
        assert hot.program_time_s < paper_metrics.program_time_s
        assert hot.cycles_to_breakdown < paper_metrics.cycles_to_breakdown

    def test_thicker_oxide_slower_but_tougher(self, paper_metrics):
        thick = evaluate_design(
            DesignPoint(tunnel_oxide_nm=6.0), pulse_duration_s=1e-1
        )
        assert (
            thick.initial_current_density_a_m2
            < paper_metrics.initial_current_density_a_m2
        )
        assert (
            thick.cycles_to_breakdown > paper_metrics.cycles_to_breakdown
        )
