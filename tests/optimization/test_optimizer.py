"""Constrained design search."""

import pytest

from repro.errors import ConfigurationError, ConvergenceError
from repro.optimization import ConstraintSet, optimise_program_time


class TestSearch:
    @pytest.fixture(scope="class")
    def result(self):
        return optimise_program_time(
            constraints=ConstraintSet(
                max_tunnel_field_v_per_m=2.6e9,
                max_program_time_s=1e-2,
                min_memory_window_v=2.0,
                min_cycles=1e4,
            ),
            max_evaluations=25,
        )

    def test_finds_feasible_design(self, result):
        assert result.best.program_time_s is not None
        assert result.best.program_time_s < 1e-2

    def test_respects_field_ceiling(self, result):
        assert result.best.peak_tunnel_field_v_per_m <= 2.6e9

    def test_respects_endurance_floor(self, result):
        assert result.best.cycles_to_breakdown >= 1e4

    def test_evaluation_budget_respected(self, result):
        assert result.evaluations <= 30  # small Nelder-Mead overshoot ok


class TestTightConstraints:
    def test_example_constraint_set_stays_solvable(self):
        # The design_optimization example's stricter set (window >= 4 V,
        # endurance >= 3e4): the engine screen must seed inside the
        # feasible region, not on the field ceiling where endurance
        # collapses (regression guard for the PR 1 screen seeding).
        result = optimise_program_time(
            constraints=ConstraintSet(
                max_tunnel_field_v_per_m=2.6e9,
                max_program_time_s=1e-2,
                min_memory_window_v=4.0,
                min_cycles=3e4,
            ),
            max_evaluations=30,
        )
        assert result.best.program_time_s is not None
        assert result.best.cycles_to_breakdown >= 3e4


class TestFailureModes:
    def test_impossible_constraints_raise(self):
        with pytest.raises(ConvergenceError):
            optimise_program_time(
                constraints=ConstraintSet(
                    max_tunnel_field_v_per_m=1e8,  # nothing can pass
                    max_program_time_s=1e-9,
                ),
                max_evaluations=6,
            )

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            optimise_program_time(voltage_bounds_v=(20.0, 10.0))
        with pytest.raises(ConfigurationError):
            optimise_program_time(tunnel_oxide_bounds_nm=(8.0, 4.0))
