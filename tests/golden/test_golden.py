"""Golden regression suite: pinned snapshots of every experiment.

Each registered experiment's zero-argument (default-parameter) result
is committed as a JSON snapshot under ``snapshots/`` in the
:mod:`repro.io` export format. The comparison test reruns the
experiment and diffs it against the snapshot -- structure exactly,
numerics to 1e-9 relative tolerance -- so a refactor that silently
shifts any curve, check verdict or parameter fails loudly here even
when every qualitative shape check still passes.

Regenerate deliberately with::

    pytest tests/golden --update-golden

and commit the snapshot diff as the record of the intentional change.
(Check ``detail`` strings are display formatting, not data, and are
excluded from the comparison; the series comparison at 1e-9 is far
stricter than anything a formatted digit could show.)
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.api import SimulationSession
from repro.experiments.registry import available_experiments
from repro.io import experiment_result_to_dict

SNAPSHOT_DIR = Path(__file__).resolve().parent / "snapshots"
RTOL = 1e-9


@pytest.fixture(scope="module")
def session():
    """One session for the whole suite; results are cache-independent."""
    return SimulationSession(seed=0)


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _assert_matches(got, want, path: str) -> None:
    """Recursive compare: exact structure, numerics to RTOL."""
    if _numeric(got) and _numeric(want):
        assert np.isclose(got, want, rtol=RTOL, atol=0.0), (
            f"{path}: {got!r} drifted from golden {want!r}"
        )
    elif isinstance(want, dict):
        assert isinstance(got, dict) and set(got) == set(want), (
            f"{path}: keys {sorted(got)} != golden {sorted(want)}"
        )
        for key in want:
            _assert_matches(got[key], want[key], f"{path}.{key}")
    elif isinstance(want, list):
        assert isinstance(got, list) and len(got) == len(want), (
            f"{path}: length {len(got)} != golden {len(want)}"
        )
        for i, (a, b) in enumerate(zip(got, want)):
            _assert_matches(a, b, f"{path}[{i}]")
    else:
        assert got == want, f"{path}: {got!r} != golden {want!r}"


def _strip_details(record: dict) -> dict:
    """Drop the formatted ``detail`` strings from check records."""
    out = dict(record)
    out["checks"] = [
        {k: v for k, v in check.items() if k != "detail"}
        for check in record.get("checks", [])
    ]
    return out


@pytest.mark.parametrize("experiment_id", available_experiments())
def test_golden_snapshot(experiment_id, session, request):
    """The default run of every experiment matches its committed snapshot."""
    record = experiment_result_to_dict(session.run(experiment_id))
    path = SNAPSHOT_DIR / f"{experiment_id}.json"
    if request.config.getoption("--update-golden"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"rewrote {path.name}")
    assert path.is_file(), (
        f"no golden snapshot for {experiment_id!r}; run "
        f"`pytest tests/golden --update-golden` and commit the result"
    )
    golden = json.loads(path.read_text())
    _assert_matches(
        _strip_details(record), _strip_details(golden), experiment_id
    )


def test_every_snapshot_is_registered():
    """No orphan snapshots: each file maps to a registered experiment."""
    snapshots = {p.stem for p in SNAPSHOT_DIR.glob("*.json")}
    assert snapshots == set(available_experiments()), (
        "snapshots out of sync with the registry; regenerate with "
        "`pytest tests/golden --update-golden`"
    )
