"""Parity of the batched endurance kernel vs the retained scalar loop.

``simulate`` must match ``simulate_scalar_reference`` bit for bit (it
is the same arithmetic, vectorized), and randomized wear-law corner
batches must match one scalar run per corner at <= 1e-9.
"""

import dataclasses

import numpy as np
import pytest

from repro.device.floating_gate import FloatingGateTransistor
from repro.engine import endurance_sweep
from repro.errors import ConfigurationError
from repro.reliability import EnduranceModel, sampled_cycle_counts

RTOL = 1e-9

OBSERVABLES = (
    "cycle_counts",
    "trap_density_m2",
    "life_consumed",
    "window_closure_v",
)


@pytest.fixture(scope="module")
def device():
    return FloatingGateTransistor()


@pytest.fixture(scope="module")
def model(device):
    return EnduranceModel(device)


class TestVectorizedSimulate:
    def test_matches_scalar_reference_bitwise(self, model):
        new = model.simulate(5_000, n_samples=40)
        ref = model.simulate_scalar_reference(5_000, n_samples=40)
        for name in OBSERVABLES:
            np.testing.assert_array_equal(
                getattr(new, name), getattr(ref, name)
            )
        assert new.cycles_to_breakdown == ref.cycles_to_breakdown

    def test_sampled_counts_shared(self):
        counts = sampled_cycle_counts(1_000, 25)
        assert counts[0] == 1 and counts[-1] == 1_000
        assert np.all(np.diff(counts) > 0)
        with pytest.raises(ConfigurationError):
            sampled_cycle_counts(0, 10)


class TestBatchParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_corners_match_scalar(self, seed, model):
        rng = np.random.default_rng(seed)
        n_lanes = int(rng.integers(2, 6))
        fractions = rng.uniform(0.0, 0.2, size=n_lanes)
        alphas = rng.uniform(0.5, 0.9, size=n_lanes)
        coeffs = rng.uniform(5e12, 5e13, size=n_lanes)
        batch = model.simulate_batch(
            2_000,
            n_samples=30,
            trapped_charge_fractions=fractions,
            exponents_alpha=alphas,
            generation_coefficients=coeffs,
        )
        assert batch.n_lanes == n_lanes
        for i in range(n_lanes):
            corner = dataclasses.replace(
                model,
                trapped_charge_fraction=float(fractions[i]),
                trap_generation=dataclasses.replace(
                    model.trap_generation,
                    exponent_alpha=float(alphas[i]),
                    generation_coefficient=float(coeffs[i]),
                ),
            )
            ref = corner.simulate_scalar_reference(2_000, n_samples=30)
            lane = batch.lane(i)
            for name in OBSERVABLES:
                np.testing.assert_allclose(
                    getattr(lane, name), getattr(ref, name), rtol=RTOL
                )
            assert lane.cycles_to_breakdown == pytest.approx(
                ref.cycles_to_breakdown, rel=RTOL
            )

    def test_stress_override_lanes(self, model):
        """Precomputed stress lanes bypass the transients entirely."""
        fluences = np.array([0.5, 1.0, 2.0])
        fields = np.array([7e8, 8e8, 9e8])
        batch = model.simulate_batch(
            1_000,
            n_samples=20,
            fluences_per_cycle_c_per_m2=fluences,
            peak_fields_v_per_m=fields,
        )
        qbd = model.breakdown.charge_to_breakdown_c_per_m2(fields)
        np.testing.assert_allclose(
            batch.cycles_to_breakdown, qbd / fluences, rtol=RTOL
        )
        # Harsher stress burns the budget faster.
        assert np.all(np.diff(batch.cycles_to_breakdown) < 0.0)

    def test_cycles_until_batch(self, model):
        batch = model.simulate_batch(
            50_000,
            n_samples=40,
            trapped_charge_fractions=np.array([0.05, 0.5]),
        )
        budgets = batch.cycles_until(float(batch.window_closure_v[1, -1]))
        assert np.isnan(budgets[0]) or budgets[0] > budgets[1]
        assert budgets[1] == batch.cycle_counts[-1] or budgets[1] > 0

    def test_validation(self, model):
        with pytest.raises(ConfigurationError):
            model.simulate_batch(
                100, trapped_charge_fractions=np.array([-0.1])
            )
        with pytest.raises(ConfigurationError):
            model.simulate_batch(100, exponents_alpha=np.array([1.5]))
        with pytest.raises(ConfigurationError):
            model.simulate_batch(
                100,
                fluences_per_cycle_c_per_m2=np.array([0.0]),
                peak_fields_v_per_m=np.array([8e8]),
            )


class TestEngineEntryPoint:
    def test_endurance_sweep_forwards(self, device, model):
        fractions = np.array([0.03, 0.08])
        via_engine = endurance_sweep(
            device, 1_000, n_samples=15,
            trapped_charge_fractions=fractions,
        )
        direct = model.simulate_batch(
            1_000, n_samples=15, trapped_charge_fractions=fractions
        )
        np.testing.assert_allclose(
            via_engine.window_closure_v,
            direct.window_closure_v,
            rtol=RTOL,
        )
