"""Arrhenius-accelerated retention (bake) model."""

import pytest

from repro.errors import ConfigurationError
from repro.reliability import ArrheniusAcceleration
from repro.reliability.bake import TEN_YEARS_S


@pytest.fixture()
def model():
    return ArrheniusAcceleration()  # Ea = 1.1 eV, use at 55 C


class TestAccelerationFactor:
    def test_unity_at_use_temperature(self, model):
        assert model.acceleration_factor(
            model.use_temperature_k
        ) == pytest.approx(1.0)

    def test_hot_bake_accelerates(self, model):
        assert model.acceleration_factor(398.15) > 100.0  # 125 C

    def test_cold_storage_decelerates(self, model):
        assert model.acceleration_factor(300.0) < 1.0

    def test_higher_ea_stronger_acceleration(self):
        weak = ArrheniusAcceleration(activation_energy_ev=0.6)
        strong = ArrheniusAcceleration(activation_energy_ev=1.1)
        assert strong.acceleration_factor(
            398.15
        ) > weak.acceleration_factor(398.15)

    def test_arrhenius_functional_form(self, model):
        """log AF linear in 1/T."""
        import math

        t1, t2 = 398.15, 448.15
        af1 = model.acceleration_factor(t1)
        af2 = model.acceleration_factor(t2)
        from repro.constants import BOLTZMANN, ELEMENTARY_CHARGE

        expected = (
            1.1
            * ELEMENTARY_CHARGE
            / BOLTZMANN
            * (1.0 / t1 - 1.0 / t2)
        )
        assert math.log(af2 / af1) == pytest.approx(expected, rel=1e-9)


class TestTimeConversion:
    def test_round_trip(self, model):
        bake_t = 448.15  # 175 C
        use_time = model.equivalent_use_time_s(3600.0, bake_t)
        assert model.bake_time_for_target_s(
            use_time, bake_t
        ) == pytest.approx(3600.0)

    def test_ten_year_bake_practical_at_250c(self, model):
        """At 250 C the ten-year bake must be qualification-practical
        (hours to weeks, not years)."""
        hours = model.ten_year_bake_hours(523.15)
        assert 0.01 < hours < 2000.0

    def test_ten_year_equivalence_consistent(self, model):
        bake_t = 523.15
        hours = model.ten_year_bake_hours(bake_t)
        recovered = model.equivalent_use_time_s(hours * 3600.0, bake_t)
        assert recovered == pytest.approx(TEN_YEARS_S, rel=1e-9)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ArrheniusAcceleration(activation_energy_ev=0.0)
        with pytest.raises(ConfigurationError):
            ArrheniusAcceleration(use_temperature_k=-1.0)

    def test_rejects_bad_arguments(self, model):
        with pytest.raises(ConfigurationError):
            model.acceleration_factor(0.0)
        with pytest.raises(ConfigurationError):
            model.equivalent_use_time_s(-1.0, 400.0)
        with pytest.raises(ConfigurationError):
            model.bake_time_for_target_s(0.0, 400.0)
