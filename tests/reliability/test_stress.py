"""Oxide stress bookkeeping."""

import pytest

from repro.device import PROGRAM_BIAS
from repro.errors import ConfigurationError
from repro.reliability import StressAccumulator, StressRecord, stress_of_pulse


class TestStressOfPulse:
    @pytest.fixture(scope="class")
    def record(self, paper_device):
        return stress_of_pulse(paper_device, PROGRAM_BIAS, 1e-4)

    def test_fluence_positive(self, record):
        assert record.injected_charge_c_per_m2 > 0.0

    def test_peak_field_is_initial_field(self, record):
        """The field is largest at t = 0 (V_FG = 9 V over 5 nm)."""
        assert record.peak_field_v_per_m == pytest.approx(1.8e9, rel=1e-3)

    def test_longer_pulse_more_fluence(self, paper_device):
        short = stress_of_pulse(paper_device, PROGRAM_BIAS, 1e-6)
        long = stress_of_pulse(paper_device, PROGRAM_BIAS, 1e-4)
        assert (
            long.injected_charge_c_per_m2
            > short.injected_charge_c_per_m2
        )

    def test_higher_voltage_more_stress(self, paper_device):
        mild = stress_of_pulse(
            paper_device, PROGRAM_BIAS.with_gate_voltage(13.0), 1e-5
        )
        harsh = stress_of_pulse(
            paper_device, PROGRAM_BIAS.with_gate_voltage(17.0), 1e-5
        )
        # The gain is sub-exponential because the 17 V transient
        # saturates within the pulse (charge feedback self-limits J).
        assert (
            harsh.injected_charge_c_per_m2
            > 2.0 * mild.injected_charge_c_per_m2
        )
        assert harsh.peak_field_v_per_m > mild.peak_field_v_per_m


class TestAccumulator:
    def test_accumulates_records(self):
        acc = StressAccumulator()
        acc.add(StressRecord(1.0, 1e9, 1e-4))
        acc.add(StressRecord(2.5, 8e8, 1e-4))
        assert acc.total_fluence_c_per_m2 == pytest.approx(3.5)
        assert acc.worst_field_v_per_m == pytest.approx(1e9)
        assert acc.n_pulses == 2

    def test_analytic_cycle_fast_path(self):
        acc = StressAccumulator()
        acc.add_analytic_cycle(1e4, 1e-4)
        assert acc.total_fluence_c_per_m2 == pytest.approx(1.0)

    def test_analytic_rejects_bad_inputs(self):
        acc = StressAccumulator()
        with pytest.raises(ConfigurationError):
            acc.add_analytic_cycle(-1.0, 1e-4)
        with pytest.raises(ConfigurationError):
            acc.add_analytic_cycle(1.0, 0.0)


class TestRecordValidation:
    def test_rejects_negative_fluence(self):
        with pytest.raises(ConfigurationError):
            StressRecord(-1.0, 1e9, 1e-4)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ConfigurationError):
            StressRecord(1.0, 1e9, 0.0)
