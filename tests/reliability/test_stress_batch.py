"""Parity of the batched pulse-stress integrator vs the scalar path."""

import numpy as np
import pytest

from repro.device.bias import ERASE_BIAS, PROGRAM_BIAS
from repro.device.floating_gate import FloatingGateTransistor
from repro.reliability import (
    StressRecord,
    stress_of_pulse,
    stress_of_pulse_batch,
)

RTOL = 1e-9


@pytest.fixture(scope="module")
def device():
    return FloatingGateTransistor()


class TestSingleLaneParity:
    def test_program_pulse_matches_scalar(self, device):
        scalar = stress_of_pulse(device, PROGRAM_BIAS, 1e-4)
        batch = stress_of_pulse_batch(device, (PROGRAM_BIAS,), 1e-4)
        assert batch.n_lanes == 1
        assert batch.injected_charge_c_per_m2[0] == pytest.approx(
            scalar.injected_charge_c_per_m2, rel=RTOL
        )
        assert batch.peak_field_v_per_m[0] == pytest.approx(
            scalar.peak_field_v_per_m, rel=RTOL
        )
        lane = batch.lane(0)
        assert isinstance(lane, StressRecord)
        assert lane.duration_s == 1e-4

    def test_erase_pulse_with_initial_charge(self, device):
        programmed = -2e-16
        scalar = stress_of_pulse(
            device, ERASE_BIAS, 1e-4, initial_charge_c=programmed
        )
        batch = stress_of_pulse_batch(
            device, (ERASE_BIAS,), 1e-4, initial_charges_c=programmed
        )
        assert batch.injected_charge_c_per_m2[0] == pytest.approx(
            scalar.injected_charge_c_per_m2, rel=RTOL
        )
        # Erasing removes stored electrons: the final charge moved up.
        assert batch.final_charges_c[0] > programmed


class TestBatchComposition:
    def test_rk4_lanes_are_composition_stable(self, device):
        """Each rk4 lane is bit-stable against its batch neighbours."""
        biases = tuple(
            PROGRAM_BIAS.with_gate_voltage(v)
            for v in np.linspace(13.0, 17.0, 5)
        )
        full = stress_of_pulse_batch(device, biases, 1e-4, method="rk4")
        assert full.n_lanes == 5
        for i, bias in enumerate(biases):
            alone = stress_of_pulse_batch(
                device, (bias,), 1e-4, method="rk4"
            )
            np.testing.assert_allclose(
                full.injected_charge_c_per_m2[i],
                alone.injected_charge_c_per_m2[0],
                rtol=RTOL,
            )
            np.testing.assert_allclose(
                full.peak_field_v_per_m[i],
                alone.peak_field_v_per_m[0],
                rtol=RTOL,
            )

    def test_harder_program_bias_stresses_more(self, device):
        biases = tuple(
            PROGRAM_BIAS.with_gate_voltage(v) for v in (13.0, 15.0, 17.0)
        )
        batch = stress_of_pulse_batch(device, biases, 1e-4, method="rk4")
        assert np.all(np.diff(batch.injected_charge_c_per_m2) > 0.0)
        assert np.all(np.diff(batch.peak_field_v_per_m) > 0.0)
