"""Breakdown laws."""

import pytest

from repro.errors import ConfigurationError
from repro.reliability import BreakdownModel


@pytest.fixture()
def model():
    return BreakdownModel()


class TestChargeToBreakdown:
    def test_reference_point(self, model):
        qbd = model.charge_to_breakdown_c_per_m2(
            model.qbd_reference_field_v_per_m
        )
        assert qbd == pytest.approx(model.qbd_reference_c_per_m2)

    def test_higher_field_lower_budget(self, model):
        assert model.charge_to_breakdown_c_per_m2(
            1.5e9
        ) < model.charge_to_breakdown_c_per_m2(8e8)

    def test_exponential_field_acceleration(self, model):
        """One decade lost per 1/slope of field increase."""
        delta = 1.0 / model.qbd_field_slope_decades_per_v_per_m
        ref = model.qbd_reference_field_v_per_m
        ratio = model.charge_to_breakdown_c_per_m2(
            ref
        ) / model.charge_to_breakdown_c_per_m2(ref + delta)
        assert ratio == pytest.approx(10.0, rel=1e-9)

    def test_rejects_nonpositive_field(self, model):
        with pytest.raises(ConfigurationError):
            model.charge_to_breakdown_c_per_m2(0.0)


class TestTimeToBreakdown:
    def test_one_over_e_model_monotonic(self, model):
        assert model.time_to_breakdown_s(1.5e9) < model.time_to_breakdown_s(
            1.0e9
        )

    def test_long_life_at_operating_field(self, model):
        """At a 5 MV/cm retention-scale field the oxide outlives 10 years."""
        ten_years = 3.2e8
        assert model.time_to_breakdown_s(5e8) > ten_years


class TestBudgets:
    def test_life_consumed_linear_in_fluence(self, model):
        f = 1.2e9
        assert model.life_consumed_fraction(10.0, f) == pytest.approx(
            2.0 * model.life_consumed_fraction(5.0, f)
        )

    def test_cycles_to_breakdown_inverse_in_per_cycle_fluence(self, model):
        f = 1.2e9
        assert model.cycles_to_breakdown(1.0, f) == pytest.approx(
            2.0 * model.cycles_to_breakdown(2.0, f)
        )

    def test_flashlike_endurance_at_program_field(self, model):
        """At the paper's 1.8e9 V/m programming field with ~1 mC/m^2 per
        cycle, endurance lands in the classic 1e4-1e7 window."""
        cycles = model.cycles_to_breakdown(1e-3, 1.8e9)
        assert 1e4 < cycles < 1e9

    def test_rejects_bad_inputs(self, model):
        with pytest.raises(ConfigurationError):
            model.life_consumed_fraction(-1.0, 1e9)
        with pytest.raises(ConfigurationError):
            model.cycles_to_breakdown(0.0, 1e9)
