"""Parity of the batched SILC grid vs the scalar per-point path."""

import numpy as np
import pytest

from repro.reliability import (
    TrapGenerationModel,
    silc_current_density,
    silc_current_density_batch,
)
from repro.tunneling.barriers import TunnelBarrier
from repro.units import nm_to_m

RTOL = 1e-9

BARRIER = TunnelBarrier(
    barrier_height_ev=3.61, thickness_m=nm_to_m(5.0), mass_ratio=0.42
)


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_grid_matches_scalar_points(self, seed):
        rng = np.random.default_rng(seed)
        fields = rng.uniform(3e8, 9e8, size=3)
        fluences = 10.0 ** rng.uniform(-1.0, 5.0, size=4)
        generation = TrapGenerationModel(
            generation_coefficient=float(rng.uniform(5e12, 5e13)),
            exponent_alpha=float(rng.uniform(0.55, 0.85)),
        )
        grid = silc_current_density_batch(
            BARRIER,
            fields[np.newaxis, :],
            fluences[:, np.newaxis],
            generation=generation,
        )
        assert grid.shape == (4, 3)
        for i, fluence in enumerate(fluences):
            for j, field in enumerate(fields):
                scalar = silc_current_density(
                    BARRIER, float(field), float(fluence), generation
                )
                np.testing.assert_allclose(grid[i, j], scalar, rtol=RTOL)

    def test_trap_density_grid_matches_scalar(self):
        model = TrapGenerationModel()
        fluences = np.geomspace(1e-2, 1e6, 9)
        grid = model.trap_density_m2(fluences)
        for i, fluence in enumerate(fluences):
            assert grid[i] == model.trap_density_m2(float(fluence))
        assert isinstance(model.trap_density_m2(1.0), float)

    def test_default_generation_model(self):
        grid = silc_current_density_batch(
            BARRIER, np.array([6e8]), np.array([10.0])
        )
        scalar = silc_current_density(BARRIER, 6e8, 10.0)
        np.testing.assert_allclose(grid[0], scalar, rtol=RTOL)
