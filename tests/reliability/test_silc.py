"""SILC trap generation and leakage."""

import pytest

from repro.errors import ConfigurationError
from repro.reliability import TrapGenerationModel, silc_current_density
from repro.tunneling import TunnelBarrier
from repro.units import nm_to_m


@pytest.fixture()
def barrier():
    return TunnelBarrier(3.61, nm_to_m(5.0), 0.42)


class TestTrapGeneration:
    def test_fresh_oxide_has_preexisting_traps(self):
        model = TrapGenerationModel(pre_existing_density_m2=5e11)
        assert model.trap_density_m2(0.0) == pytest.approx(5e11)

    def test_density_grows_with_fluence(self):
        model = TrapGenerationModel()
        assert model.trap_density_m2(10.0) > model.trap_density_m2(1.0)

    def test_power_law_exponent(self):
        model = TrapGenerationModel(
            exponent_alpha=0.5, pre_existing_density_m2=0.0
        )
        assert model.trap_density_m2(4.0) == pytest.approx(
            2.0 * model.trap_density_m2(1.0)
        )

    def test_sublinear_generation(self):
        """alpha < 1: doubling the stress less than doubles the traps."""
        model = TrapGenerationModel(pre_existing_density_m2=0.0)
        assert model.trap_density_m2(2.0) < 2.0 * model.trap_density_m2(1.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            TrapGenerationModel(exponent_alpha=1.5)

    def test_rejects_negative_fluence(self):
        with pytest.raises(ConfigurationError):
            TrapGenerationModel().trap_density_m2(-1.0)


class TestSilcCurrent:
    def test_stressed_oxide_leaks_more(self, barrier):
        fresh = silc_current_density(barrier, 4e8, 0.0)
        stressed = silc_current_density(barrier, 4e8, 100.0)
        assert stressed > fresh

    def test_grows_with_field(self, barrier):
        assert silc_current_density(barrier, 6e8, 10.0) > silc_current_density(
            barrier, 3e8, 10.0
        )

    def test_custom_generation_model_used(self, barrier):
        aggressive = TrapGenerationModel(generation_coefficient=1e15)
        mild = TrapGenerationModel(generation_coefficient=1e12)
        assert silc_current_density(
            barrier, 4e8, 10.0, aggressive
        ) > silc_current_density(barrier, 4e8, 10.0, mild)
