"""Endurance cycling model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.reliability import EnduranceModel


@pytest.fixture(scope="module")
def result(paper_device):
    return EnduranceModel(paper_device, pulse_duration_s=1e-4).simulate(
        100_000, n_samples=25
    )


class TestWearTrajectory:
    def test_trap_density_monotonic(self, result):
        assert np.all(np.diff(result.trap_density_m2) > 0.0)

    def test_life_consumed_monotonic(self, result):
        assert np.all(np.diff(result.life_consumed) > 0.0)

    def test_window_closure_monotonic_nonnegative(self, result):
        assert np.all(result.window_closure_v >= 0.0)
        assert np.all(np.diff(result.window_closure_v) >= 0.0)

    def test_life_consumed_linear_in_cycles(self, result):
        ratio = result.life_consumed[-1] / result.life_consumed[0]
        cycles_ratio = result.cycle_counts[-1] / result.cycle_counts[0]
        assert ratio == pytest.approx(cycles_ratio, rel=1e-6)

    def test_cycles_to_breakdown_flashlike(self, result):
        assert 1e3 < result.cycles_to_breakdown < 1e10


class TestQueries:
    def test_cycles_until_budget(self, result):
        tiny_budget = result.window_closure_v[2]
        cycles = result.cycles_until(tiny_budget)
        assert cycles is not None
        assert cycles <= result.cycle_counts[2]

    def test_cycles_until_never_reached(self, result):
        assert result.cycles_until(1e6) is None


class TestConfiguration:
    def test_longer_pulses_wear_faster(self, paper_device):
        short = EnduranceModel(
            paper_device, pulse_duration_s=1e-6
        ).simulate(1000, n_samples=5)
        long = EnduranceModel(
            paper_device, pulse_duration_s=1e-4
        ).simulate(1000, n_samples=5)
        assert long.life_consumed[-1] > short.life_consumed[-1]

    def test_rejects_bad_trapped_fraction(self, paper_device):
        with pytest.raises(ConfigurationError):
            EnduranceModel(paper_device, trapped_charge_fraction=1.5)

    def test_rejects_zero_cycles(self, paper_device):
        with pytest.raises(ConfigurationError):
            EnduranceModel(paper_device).simulate(0)
