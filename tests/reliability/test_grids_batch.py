"""Array-grid parity of the bake and breakdown laws vs scalar calls.

The Arrhenius and breakdown laws follow the scalar-or-array
convention: grids broadcast elementwise and must match a loop of
scalar calls at <= 1e-9, while all-scalar calls keep returning floats.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.reliability import ArrheniusAcceleration, BreakdownModel

RTOL = 1e-9


class TestBakeGrids:
    @pytest.mark.parametrize("seed", range(3))
    def test_acceleration_grid_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        model = ArrheniusAcceleration(
            activation_energy_ev=float(rng.uniform(0.8, 1.5))
        )
        temps = rng.uniform(360.0, 540.0, size=7)
        afs = model.acceleration_factor(temps)
        hours = model.ten_year_bake_hours(temps)
        for i, temp in enumerate(temps):
            assert afs[i] == pytest.approx(
                model.acceleration_factor(float(temp)), rel=RTOL
            )
            assert hours[i] == pytest.approx(
                model.ten_year_bake_hours(float(temp)), rel=RTOL
            )

    def test_time_temperature_grid_broadcasts(self):
        model = ArrheniusAcceleration()
        times = np.array([3600.0, 7200.0])
        temps = np.array([423.15, 473.15, 523.15])
        grid = model.equivalent_use_time_s(
            times[:, np.newaxis], temps[np.newaxis, :]
        )
        assert grid.shape == (2, 3)
        assert grid[1, 0] == pytest.approx(2.0 * grid[0, 0], rel=RTOL)

    def test_scalar_calls_return_floats(self):
        model = ArrheniusAcceleration()
        assert isinstance(model.acceleration_factor(423.15), float)
        assert isinstance(model.equivalent_use_time_s(60.0, 423.15), float)
        assert isinstance(model.bake_time_for_target_s(1e8, 423.15), float)
        assert isinstance(model.ten_year_bake_hours(423.15), float)

    def test_invalid_temperature_anywhere_rejected(self):
        model = ArrheniusAcceleration()
        with pytest.raises(ConfigurationError):
            model.acceleration_factor(np.array([400.0, -1.0]))


class TestBreakdownGrids:
    @pytest.mark.parametrize("seed", range(3))
    def test_grids_match_scalar(self, seed):
        rng = np.random.default_rng(100 + seed)
        model = BreakdownModel()
        fields = rng.uniform(5e8, 1.2e9, size=5)
        fluences = 10.0 ** rng.uniform(2.0, 7.0, size=4)
        qbd = model.charge_to_breakdown_c_per_m2(fields)
        tbd = model.time_to_breakdown_s(fields)
        life = model.life_consumed_fraction(
            fluences[:, np.newaxis], fields[np.newaxis, :]
        )
        cycles = model.cycles_to_breakdown(
            fluences[:, np.newaxis], fields[np.newaxis, :]
        )
        assert life.shape == (4, 5) and cycles.shape == (4, 5)
        for j, field in enumerate(fields):
            assert qbd[j] == pytest.approx(
                model.charge_to_breakdown_c_per_m2(float(field)), rel=RTOL
            )
            assert tbd[j] == pytest.approx(
                model.time_to_breakdown_s(float(field)), rel=RTOL
            )
            for i, fluence in enumerate(fluences):
                assert life[i, j] == pytest.approx(
                    model.life_consumed_fraction(
                        float(fluence), float(field)
                    ),
                    rel=RTOL,
                )
                assert cycles[i, j] == pytest.approx(
                    model.cycles_to_breakdown(float(fluence), float(field)),
                    rel=RTOL,
                )

    def test_scalar_calls_return_floats(self):
        model = BreakdownModel()
        assert isinstance(model.charge_to_breakdown_c_per_m2(8e8), float)
        assert isinstance(model.time_to_breakdown_s(8e8), float)
        assert isinstance(model.life_consumed_fraction(1e3, 8e8), float)
        assert isinstance(model.cycles_to_breakdown(1.0, 8e8), float)

    def test_invalid_field_anywhere_rejected(self):
        model = BreakdownModel()
        with pytest.raises(ConfigurationError):
            model.charge_to_breakdown_c_per_m2(np.array([8e8, 0.0]))
        with pytest.raises(ConfigurationError):
            model.life_consumed_fraction(np.array([-1.0]), 8e8)
