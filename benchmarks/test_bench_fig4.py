"""Benchmark: regenerate paper Figure 4 (Jin vs Jout at t = 0).

Workload: the early programming transient of the reference cell
(VGS = 15 V, GCR = 0.6, X_TO = 5 nm), sampling Jin and Jout.
"""

from conftest import assert_reproduced

from repro.experiments import run_experiment


def test_fig4_reproduction(benchmark):
    result = benchmark(run_experiment, "fig4")
    assert_reproduced(result)
    # The figure's defining feature: decades between Jin(0) and Jout(0).
    assert result.series[0].y[0] > 1e6 * result.series[1].y[0]
