"""Future-work benchmark: design-space sweep and Pareto extraction
(DESIGN.md opt-pareto).

Workload: a 3x3 voltage/thickness grid evaluated with full transients,
followed by Pareto-front extraction on (program time, endurance) -- the
optimisation the paper's conclusion calls for.
"""

from repro.optimization import evaluate_design, grid, pareto_front


def test_design_grid_sweep_and_pareto(benchmark):
    def sweep():
        points = list(grid([13.0, 15.0, 17.0], [5.0, 6.0, 7.0]))
        evaluated = [
            evaluate_design(p, pulse_duration_s=1e-2) for p in points
        ]
        front = pareto_front(
            evaluated,
            [
                (lambda m: m.program_time_s, "min"),
                (lambda m: m.cycles_to_breakdown, "max"),
            ],
        )
        return evaluated, front

    evaluated, front = benchmark.pedantic(sweep, rounds=2, iterations=1)
    assert len(evaluated) == 9
    assert 1 <= len(front) <= 9
    # The paper's tradeoff must be visible: the fastest design is not
    # the most durable one.
    resolved = [m for m in evaluated if m.program_time_s is not None]
    fastest = min(resolved, key=lambda m: m.program_time_s)
    toughest = max(evaluated, key=lambda m: m.cycles_to_breakdown)
    assert fastest.point != toughest.point
