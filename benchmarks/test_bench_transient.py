"""Core-kernel benchmarks: the charge-transient ODE and FN evaluation.

These time the primitives every experiment is built from: a full
program transient (Figure 5 workload), a single erase, and the raw FN
current evaluation over a vectorised field sweep.
"""

import numpy as np

from repro.device import ERASE_BIAS, PROGRAM_BIAS, simulate_transient
from repro.tunneling import FowlerNordheimModel


def test_program_transient_speed(benchmark, paper_device):
    result = benchmark.pedantic(
        simulate_transient,
        args=(paper_device, PROGRAM_BIAS),
        kwargs={"duration_s": 1e-2, "n_samples": 200},
        rounds=3,
        iterations=1,
    )
    assert result.saturation_fraction() > 0.99


def test_erase_transient_speed(benchmark, paper_device):
    programmed = simulate_transient(
        paper_device, PROGRAM_BIAS, duration_s=1e-2
    ).final_charge_c

    result = benchmark.pedantic(
        simulate_transient,
        args=(paper_device, ERASE_BIAS),
        kwargs={"initial_charge_c": programmed, "duration_s": 1e-2},
        rounds=3,
        iterations=1,
    )
    assert result.final_charge_c > 0.0


def test_vectorised_fn_evaluation_speed(benchmark, paper_device):
    model = FowlerNordheimModel(paper_device.tunnel_barrier)
    fields = np.linspace(5e8, 2.5e9, 10_000)

    j = benchmark(model.current_density, fields)
    assert j.shape == fields.shape
    assert np.all(np.diff(j) > 0.0)
