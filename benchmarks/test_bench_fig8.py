"""Benchmark: regenerate paper Figure 8 (erase J_FN vs V_GS, 4 GCRs).

Workload: the erase-polarity sweep (VGS = -8 to -17 V) for four GCR
values at X_TO = 5 nm, including the program/erase mirror check.
"""

from conftest import assert_reproduced

from repro.experiments import run_experiment


def test_fig8_reproduction(benchmark):
    result = benchmark(run_experiment, "fig8")
    assert_reproduced(result)
