"""Benchmark: regenerate paper Figure 5 (transient to saturation).

Workload: the full programming transient integrated to Jin/Jout balance,
including the t_sat and maximum-charge extraction.
"""

from conftest import assert_reproduced

from repro.experiments import run_experiment


def test_fig5_reproduction(benchmark):
    result = benchmark(run_experiment, "fig5")
    assert_reproduced(result)
    assert result.parameters["t_sat_s"] is not None
