"""Benchmark: sharded parallel plan execution vs the serial session.

The acceptance workload of the executor PR: a 32-scenario ``abl-wkb``
sweep (8 barrier heights x 2 tunneling masses x 2 oxide thicknesses,
one Tsu-Esaki transfer-matrix solve each -- real CPU work per scenario)
run

* serially through one :class:`~repro.api.session.SimulationSession`
  via ``run_plan``, and
* through :func:`~repro.api.executor.run_plan_parallel` with 4
  process-pool workers.

``test_parallel_bit_identical_to_serial`` asserts the executor's core
contract -- byte-equal experiment results and conserved lookup totals
-- on every machine. ``test_parallel_speedup`` pins the >=1.5x speedup
at 4 workers; it needs actual hardware parallelism, so it skips on
single-CPU containers (the contract tests still run there) and is
informative-only in CI's non-blocking benchmarks job.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.api import RunPlan, Scenario, SimulationSession, run_plan_parallel
from repro.io import experiment_result_to_dict

SEED = 2014
WORKERS = 4

_BARRIERS = (3.0, 3.2, 3.4, 3.5, 3.61, 3.8, 4.0, 4.2)
_MASSES = (0.36, 0.42)
_OXIDES = (4.5, 5.0)


def _plan() -> RunPlan:
    """The 32-scenario transfer-matrix sweep both paths execute."""
    return RunPlan(
        name="parallel-bench",
        scenarios=(
            Scenario(
                "abl-wkb",
                overrides={"n_points": 1},
                sweep={
                    "barrier_height_ev": _BARRIERS,
                    "mass_ratio": _MASSES,
                    "tunnel_oxide_nm": _OXIDES,
                },
            ),
        ),
    )


def _canonical(result) -> str:
    """Byte-stable JSON rendering of one experiment result."""
    return json.dumps(experiment_result_to_dict(result), sort_keys=True)


def test_plan_is_big_enough():
    """The acceptance floor: at least 32 concrete scenarios."""
    assert len(_plan().expanded()) >= 32


def test_parallel_bit_identical_to_serial():
    """4-worker process execution reproduces the serial run exactly."""
    plan = _plan()
    serial = SimulationSession(seed=SEED).run_plan(plan)
    parallel = run_plan_parallel(
        plan, workers=WORKERS, shard_by="round-robin", seed=SEED
    )
    assert len(parallel.scenario_results) == len(serial.scenario_results)
    for ours, theirs in zip(
        serial.scenario_results, parallel.scenario_results
    ):
        assert ours.scenario == theirs.scenario
        assert _canonical(ours.result) == _canonical(theirs.result)
    # The conserved totals: every scenario performs the same lookups
    # however the plan is sharded.
    assert parallel.cache_stats.hits + parallel.cache_stats.misses == (
        serial.cache_stats.hits + serial.cache_stats.misses
    )


def _available_cpus() -> int:
    """CPUs this process may use (affinity-aware where supported)."""
    if hasattr(os, "sched_getaffinity"):  # Linux; absent on macOS/Windows
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


@pytest.mark.skipif(
    _available_cpus() < 2,
    reason="speedup needs >=2 CPUs; single-CPU container cannot "
    "parallelize CPU-bound shards (the bit-identity contract above "
    "still runs)",
)
def test_parallel_speedup():
    """>= 1.5x over serial at 4 workers on the 32-scenario plan."""
    plan = _plan()
    # Warm-up outside the timed windows: resolve experiment modules and
    # JIT the import costs once so both paths time pure execution.
    SimulationSession(seed=SEED).run_scenario(plan.expanded()[0])

    start = time.perf_counter()
    serial = SimulationSession(seed=SEED).run_plan(plan)
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_plan_parallel(
        plan, workers=WORKERS, shard_by="by-cost", seed=SEED
    )
    t_parallel = time.perf_counter() - start

    assert len(serial.scenario_results) == len(parallel.scenario_results)
    speedup = t_serial / t_parallel
    assert speedup >= 1.5, (
        f"parallel plan only {speedup:.2f}x faster than serial "
        f"({t_serial:.2f}s vs {t_parallel:.2f}s for "
        f"{len(plan.expanded())} scenarios on {WORKERS} workers)"
    )
