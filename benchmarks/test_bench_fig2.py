"""Benchmark: regenerate paper Figure 2 (the FN band diagram).

Workload: two Poisson solves of the five-layer stack (unbiased and at
the programming bias) plus the apparent-thinning extraction.
"""

from conftest import assert_reproduced

from repro.experiments import run_experiment


def test_fig2_reproduction(benchmark):
    result = benchmark(run_experiment, "fig2")
    assert_reproduced(result)
    # The triangular-barrier thinning: ~2 nm forbidden region at 15 V.
    biased = result.series[1]
    assert biased.y[0] > 3.5  # barrier peak at the channel interface
