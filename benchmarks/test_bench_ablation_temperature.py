"""Ablation benchmark: finite-temperature FN correction, 200-400 K.

Verifies (and times) the claim that tunneling is only weakly
temperature dependent at the paper's programming field (DESIGN.md
abl-temp).
"""

from conftest import assert_reproduced

from repro.experiments.ablations import run_temperature


def test_ablation_temperature(benchmark):
    result = benchmark(run_temperature, n_points=9)
    assert_reproduced(result)
    factors = result.series[0].y
    assert factors.max() < 1.6
