"""Benchmarks: baseline comparisons (DESIGN.md cmp-si, cmp-che).

Times the two comparison experiments -- the proposed MLGNR-CNT device
against the conventional silicon FGT, and FN against channel-hot-
electron programming -- and re-verifies their claims.
"""

from conftest import assert_reproduced

from repro.experiments import run_experiment


def test_silicon_baseline_comparison(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("cmp-si",), rounds=2, iterations=1
    )
    assert_reproduced(result)
    gnr, si = result.series
    # The defining asymmetry: silicon out-conducts graphene at equal bias.
    assert (si.y > gnr.y).all()


def test_che_vs_fn_comparison(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("cmp-che",), rounds=2, iterations=1
    )
    assert_reproduced(result)
