"""Benchmark: recurrence-based endurance kernel vs the per-cycle loop.

An endurance corner sweep asks the same question -- how fast does the
memory window close? -- for many wear-law corners (here 32 Monte-Carlo
style trapped-charge fractions) sampled at up to every cycle of a
10k-cycle life. The seed path pays, per corner, two exact stress
transients plus a per-sampled-cycle Python loop through the scalar
wear laws. The batched backend runs the shared stress transients
*once* and evaluates all (lane x cycle-count) wear observables in one
closed-form NumPy kernel.

``test_endurance_sweep_speedup`` gates the kernel at >= 10x over the
retained scalar loop on the 10k-cycle x 32-lane sweep while pinning
agreement at 1e-9; the ``benchmark`` tests record the absolute wall
times of both paths.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from conftest import best_of, record_speedup

from repro.reliability import EnduranceModel

N_CYCLES = 10_000
#: Per-cycle wear sampling: every distinct sampled count of a 10k life.
N_SAMPLES = 10_000
#: 32 trapped-charge-fraction corners (the reliability Monte Carlo).
FRACTIONS = np.linspace(0.02, 0.12, 32)

SPEEDUP_GATE = 10.0


def _model(device):
    return EnduranceModel(device)


def _scalar_sweep(device):
    """The seed path: one scalar simulate per corner, stress re-paid."""
    return [
        dataclasses.replace(
            _model(device), trapped_charge_fraction=float(f)
        ).simulate_scalar_reference(N_CYCLES, n_samples=N_SAMPLES)
        for f in FRACTIONS
    ]


def _batch_sweep(device):
    return _model(device).simulate_batch(
        N_CYCLES,
        n_samples=N_SAMPLES,
        trapped_charge_fractions=FRACTIONS,
    )


def test_endurance_sweep_speedup(paper_device):
    """The batched wear kernel is >= 10x the scalar corner loop."""
    scalar = _scalar_sweep(paper_device)
    batch = _batch_sweep(paper_device)

    assert batch.n_lanes == FRACTIONS.size
    for i, lane in enumerate(scalar):
        np.testing.assert_allclose(
            batch.cycle_counts, lane.cycle_counts, rtol=1e-9
        )
        np.testing.assert_allclose(
            batch.trap_density_m2[i], lane.trap_density_m2, rtol=1e-9
        )
        np.testing.assert_allclose(
            batch.life_consumed[i], lane.life_consumed, rtol=1e-9
        )
        np.testing.assert_allclose(
            batch.window_closure_v[i], lane.window_closure_v, rtol=1e-9
        )
        np.testing.assert_allclose(
            batch.cycles_to_breakdown[i],
            lane.cycles_to_breakdown,
            rtol=1e-9,
        )

    t_scalar = best_of(lambda: _scalar_sweep(paper_device), repeats=2)
    t_batch = best_of(lambda: _batch_sweep(paper_device))
    speedup = t_scalar / t_batch
    record_speedup(
        "endurance_corner_sweep",
        speedup,
        t_scalar,
        t_batch,
        gate=SPEEDUP_GATE,
        detail=(
            f"{N_CYCLES} cycles x {FRACTIONS.size} corners at "
            f"{batch.cycle_counts.size} sampled counts, shared stress "
            "transients + closed-form wear kernel vs per-corner loop"
        ),
    )
    assert speedup >= SPEEDUP_GATE, (
        f"batched endurance sweep only {speedup:.1f}x faster than the "
        f"scalar corner loop ({t_scalar * 1e3:.0f} ms vs "
        f"{t_batch * 1e3:.1f} ms for {FRACTIONS.size} lanes)"
    )


def test_endurance_scalar_reference_speed(benchmark, paper_device):
    """Absolute wall time of the retained per-corner scalar loop."""
    benchmark.pedantic(
        _scalar_sweep, args=(paper_device,), rounds=2, iterations=1
    )


def test_endurance_batch_speed(benchmark, paper_device):
    """Absolute wall time of the batched corner sweep."""
    benchmark.pedantic(
        _batch_sweep, args=(paper_device,), rounds=2, iterations=1
    )
