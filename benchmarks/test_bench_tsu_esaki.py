"""Benchmark: vectorized Tsu-Esaki energy integral vs the scalar loop.

The quantum-accuracy reference of the ablation experiments evaluates

    J(V) = C * integral T(E) N(E, V) dE

over ``n_energy`` longitudinal energies. The seed implementation walked
that grid in Python -- one scalar WKB action (a 501-point list
comprehension) or one scalar transfer-matrix product (60 slabs of 2x2
complex matmuls) per energy. The vectorized solver backend evaluates
the whole energy grid in one batched kernel call and closes the
integral with a single ``np.trapezoid``.

``test_tsu_esaki_energy_sweep_speedup`` gates the backend at >= 10x
over the retained scalar reference for *both* transmission methods
while pinning agreement at 1e-9 relative tolerance; the ``benchmark``
tests put the absolute wall times of the two paths in the
pytest-benchmark table (and therefore in BENCH_results.json).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import best_of, record_speedup

from repro.tunneling import TsuEsakiModel, TunnelBarrier
from repro.units import nm_to_m

#: The ablation barrier: graphene emitter on 5 nm SiO2.
BARRIER = TunnelBarrier(
    barrier_height_ev=3.61, thickness_m=nm_to_m(5.0), mass_ratio=0.42
)

#: The abl-wkb programming window.
VOLTAGES = np.linspace(6.0, 10.5, 10)

SPEEDUP_GATE = 10.0


def _scalar_sweep(model: TsuEsakiModel) -> np.ndarray:
    """The seed path: per-energy Python loop inside each voltage point."""
    return np.array(
        [
            model.current_density_scalar_reference(float(v))
            for v in VOLTAGES
        ]
    )


@pytest.mark.parametrize("method", ["wkb", "transfer_matrix"])
def test_tsu_esaki_energy_sweep_speedup(method):
    """The vectorized energy integral is >= 10x the scalar loop at 1e-9."""
    model = TsuEsakiModel(BARRIER, method=method)

    j_scalar = _scalar_sweep(model)  # warm + correctness baseline
    j_vector = model.current_density_batch(VOLTAGES)
    np.testing.assert_allclose(j_vector, j_scalar, rtol=1e-9)

    t_scalar = best_of(lambda: _scalar_sweep(model))
    t_vector = best_of(lambda: model.current_density_batch(VOLTAGES))
    speedup = t_scalar / t_vector
    record_speedup(
        f"tsu_esaki_energy_sweep[{method}]",
        speedup,
        t_scalar,
        t_vector,
        gate=SPEEDUP_GATE,
        detail=(
            f"{VOLTAGES.size} voltages x {model.n_energy} energies, "
            f"method={method}"
        ),
    )
    assert speedup >= SPEEDUP_GATE, (
        f"vectorized Tsu-Esaki ({method}) only {speedup:.1f}x faster than "
        f"the scalar energy loop ({t_scalar * 1e3:.1f} ms vs "
        f"{t_vector * 1e3:.1f} ms for {VOLTAGES.size} voltage points)"
    )


def test_tsu_esaki_scalar_reference_speed(benchmark):
    """Absolute wall time of the retained per-energy scalar loop."""
    model = TsuEsakiModel(BARRIER, method="wkb")
    benchmark(_scalar_sweep, model)


def test_tsu_esaki_vectorized_speed(benchmark):
    """Absolute wall time of the batched (bias x energy) integral."""
    model = TsuEsakiModel(BARRIER, method="wkb")
    benchmark(model.current_density_batch, VOLTAGES)
