"""Shared fixtures for the benchmark harness.

Each ``test_bench_fig*.py`` regenerates one figure of the paper through
pytest-benchmark, so the harness both times the reproduction and
re-verifies the shape checks (a benchmark run that silently produced
wrong curves would be useless).
"""

from __future__ import annotations

import pytest

from repro.device import FloatingGateTransistor
from repro.memory import calibrate_kernel


@pytest.fixture(scope="session")
def paper_device():
    return FloatingGateTransistor()


@pytest.fixture(scope="session")
def cell_kernel(paper_device):
    return calibrate_kernel(paper_device)


def assert_reproduced(result):
    """Fail the benchmark if any of the paper's shape checks fail."""
    failing = [c for c in result.checks if not c.passed]
    assert not failing, "\n".join(
        f"{c.claim}: {c.detail}" for c in failing
    )
