"""Shared fixtures for the benchmark harness.

Each ``test_bench_fig*.py`` regenerates one figure of the paper through
pytest-benchmark, so the harness both times the reproduction and
re-verifies the shape checks (a benchmark run that silently produced
wrong curves would be useless). Since the :mod:`repro.api` redesign the
harness owns one :class:`~repro.api.session.SimulationSession`: devices
and the array cell kernel come from it, so the calibration transients
run once per session on the session's private cache set instead of
rebuilding ad hoc globals.
"""

from __future__ import annotations

import pytest

from repro.api import SimulationSession


@pytest.fixture(scope="session")
def sim_session():
    """The one SimulationSession every benchmark shares."""
    return SimulationSession(seed=2014)


@pytest.fixture(scope="session")
def paper_device(sim_session):
    return sim_session.device()


@pytest.fixture(scope="session")
def cell_kernel(sim_session):
    return sim_session.cell_kernel()


def assert_reproduced(result):
    """Fail the benchmark if any of the paper's shape checks fail."""
    failing = [c for c in result.checks if not c.passed]
    assert not failing, "\n".join(
        f"{c.claim}: {c.detail}" for c in failing
    )
