"""Shared fixtures and result recording for the benchmark harness.

Each ``test_bench_fig*.py`` regenerates one figure of the paper through
pytest-benchmark, so the harness both times the reproduction and
re-verifies the shape checks (a benchmark run that silently produced
wrong curves would be useless). Since the :mod:`repro.api` redesign the
harness owns one :class:`~repro.api.session.SimulationSession`: devices
and the array cell kernel come from it, so the calibration transients
run once per session on the session's private cache set instead of
rebuilding ad hoc globals.

The harness also persists machine-readable results: after every run,
``pytest_sessionfinish`` appends one record -- per-test wall times from
pytest-benchmark, every speedup gate recorded through
:func:`record_speedup`, the current commit and a timestamp -- to
``BENCH_results.json`` at the repository root, so the performance
trajectory accumulates across PRs instead of evaporating with the
terminal output.
"""

from __future__ import annotations

import datetime
import json
import subprocess
import time
from pathlib import Path

import pytest

from repro.api import SimulationSession

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_results.json"

#: How many historical runs BENCH_results.json retains (newest last).
MAX_RUNS = 200

#: Speedup records registered by the gating benchmarks during this run.
_SPEEDUPS: "dict[str, dict]" = {}


@pytest.fixture(scope="session")
def sim_session():
    """The one SimulationSession every benchmark shares."""
    return SimulationSession(seed=2014)


@pytest.fixture(scope="session")
def paper_device(sim_session):
    return sim_session.device()


@pytest.fixture(scope="session")
def cell_kernel(sim_session):
    return sim_session.cell_kernel()


def assert_reproduced(result):
    """Fail the benchmark if any of the paper's shape checks fail."""
    failing = [c for c in result.checks if not c.passed]
    assert not failing, "\n".join(
        f"{c.claim}: {c.detail}" for c in failing
    )


def best_of(fn, repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn()`` [s] -- the shared timing policy.

    Best-of (rather than mean-of) guards speedup ratios against
    scheduler noise on shared CI runners; every gated benchmark times
    both paths through this one helper so the policy cannot drift
    between files.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def record_speedup(
    name: str,
    speedup: float,
    reference_s: float,
    optimized_s: float,
    gate: "float | None" = None,
    detail: str = "",
) -> None:
    """Register one measured speedup for the BENCH_results.json record.

    Speedup-gated benchmarks call this right before asserting their
    floor, so the measured ratio survives the run whether or not the
    gate holds.
    """
    _SPEEDUPS[name] = {
        "speedup": float(speedup),
        "reference_s": float(reference_s),
        "optimized_s": float(optimized_s),
        "gate": None if gate is None else float(gate),
        "detail": detail,
    }


def _current_commit() -> str:
    """The HEAD commit hash, or 'unknown' outside a usable git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def _benchmark_timings(session) -> "dict[str, dict]":
    """Harvest per-test wall-time stats from pytest-benchmark, if active."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    timings: "dict[str, dict]" = {}
    if bench_session is None:
        return timings
    for bench in getattr(bench_session, "benchmarks", []):
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        try:
            timings[bench.fullname] = {
                "mean_s": float(stats.mean),
                "min_s": float(stats.min),
                "rounds": int(stats.rounds),
            }
        except (AttributeError, TypeError, ValueError):
            continue
    return timings


def pytest_sessionfinish(session, exitstatus):
    """Record this run in BENCH_results.json (deduped, history capped).

    Two hygiene rules keep the perf trajectory honest:

    * runs with an empty ``timings`` table are never appended -- a
      selection that collected no pytest-benchmark rows (e.g. a lone
      speedup-gate invocation) would otherwise pollute the history
      with partial records;
    * re-runs on the same commit *merge into* the earlier record
      instead of stacking next to it (fresh measurements win per test
      / per gate, tests the re-run did not touch keep their earlier
      numbers), so each commit contributes exactly one data point to
      the trajectory and a partial local re-run can never erase a full
      CI record.
    """
    timings = _benchmark_timings(session)
    if not timings:
        return
    record = {
        "commit": _current_commit(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "exitstatus": int(exitstatus),
        "timings": timings,
        "speedups": dict(sorted(_SPEEDUPS.items())),
    }
    history = {"runs": []}
    if RESULTS_PATH.is_file():
        try:
            loaded = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
            if isinstance(loaded, dict) and isinstance(
                loaded.get("runs"), list
            ):
                history = loaded
        except (OSError, json.JSONDecodeError):
            pass
    kept = []
    same_commit = []
    for run in history["runs"]:
        if (
            isinstance(run, dict)
            and run.get("commit") == record["commit"]
            and record["commit"] != "unknown"
        ):
            same_commit.append(run)
        else:
            kept.append(run)
    # Merge newest-last so fresher numbers always win: earlier records
    # for this commit (oldest first, then this run's measurements).
    for table in ("timings", "speedups"):
        merged: dict = {}
        for run in same_commit:
            merged.update(run.get(table) or {})
        merged.update(record[table])
        record[table] = dict(sorted(merged.items()))
    history["runs"] = (kept + [record])[-MAX_RUNS:]
    RESULTS_PATH.write_text(
        json.dumps(history, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
