"""Benchmark: the erase transient (dynamic mirror of Figure 5).

Workload: full -15 V erase of the saturated programmed cell, including
the reversed Jin/Jout balance extraction.
"""

from conftest import assert_reproduced

from repro.experiments import run_experiment


def test_erase_transient_reproduction(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("erase-transient",), rounds=3, iterations=1
    )
    assert_reproduced(result)
