"""Benchmark: the erase transient (dynamic mirror of Figure 5).

Two workloads:

* the single-cell reproduction -- a full -15 V erase of the saturated
  programmed cell, including the reversed Jin/Jout balance extraction
  (this is the golden-parity path: one lane, bit-identical to the seed
  integrator), and
* the erase-voltage sweep -- many erase transients advanced as **one
  vector ODE state** by the array-valued integrator, gated at >= 3x
  over the historical one-adaptive-solve-per-lane path at matching
  physics (final charges within 1e-6 relative; the two paths differ
  only by adaptive step placement, not by model).
"""

from __future__ import annotations

import numpy as np

from conftest import assert_reproduced, best_of, record_speedup

from repro.engine import clear_caches, transient_sweep
from repro.experiments import run_experiment

#: Erase staircase: one lane per erase voltage, programmed cell start.
ERASE_VOLTAGES = np.linspace(-13.0, -17.0, 48)
DURATION_S = 1e-2
N_SAMPLES = 64

SPEEDUP_GATE = 3.0


def test_erase_transient_reproduction(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("erase-transient",), rounds=3, iterations=1
    )
    assert_reproduced(result)


def _erase_sweep(device, bias, initial_charge_c: float, integrator: str):
    return transient_sweep(
        device,
        bias,
        ERASE_VOLTAGES,
        duration_s=DURATION_S,
        n_samples=N_SAMPLES,
        initial_charge_c=initial_charge_c,
        integrator=integrator,
    )


def _programmed_charge(sim_session, device) -> float:
    """Equilibrium charge of the +15 V programmed state (erase start)."""
    from repro.device.transient import equilibrium_charge

    program = sim_session.context().bias("program", vgs_v=15.0)
    return equilibrium_charge(device, program)


def test_erase_sweep_vector_speedup(sim_session, paper_device):
    """The vector integrator is >= 3x the per-lane adaptive path."""
    bias = sim_session.context().bias("erase", vgs_v=-15.0)
    q0 = _programmed_charge(sim_session, paper_device)
    clear_caches()

    per_lane = _erase_sweep(paper_device, bias, q0, "per-lane")
    vector = _erase_sweep(paper_device, bias, q0, "vector")
    np.testing.assert_allclose(
        vector.final_charge_c, per_lane.final_charge_c, rtol=1e-6
    )
    np.testing.assert_allclose(
        vector.q_equilibrium_c, per_lane.q_equilibrium_c, rtol=1e-9
    )

    # Warm caches for both paths, then race them.
    t_per_lane = best_of(
        lambda: _erase_sweep(paper_device, bias, q0, "per-lane")
    )
    t_vector = best_of(
        lambda: _erase_sweep(paper_device, bias, q0, "vector")
    )
    speedup = t_per_lane / t_vector
    record_speedup(
        "erase_transient_vector_sweep",
        speedup,
        t_per_lane,
        t_vector,
        gate=SPEEDUP_GATE,
        detail=(
            f"{ERASE_VOLTAGES.size} erase lanes x {N_SAMPLES} samples, "
            f"duration {DURATION_S:g} s, single solve_ivp vs per-lane"
        ),
    )
    assert speedup >= SPEEDUP_GATE, (
        f"vector erase sweep only {speedup:.1f}x faster than the per-lane "
        f"path ({t_per_lane * 1e3:.1f} ms vs {t_vector * 1e3:.1f} ms for "
        f"{ERASE_VOLTAGES.size} lanes)"
    )


def test_erase_sweep_per_lane_speed(benchmark, sim_session, paper_device):
    """Absolute wall time of the historical per-lane erase sweep."""
    bias = sim_session.context().bias("erase", vgs_v=-15.0)
    q0 = _programmed_charge(sim_session, paper_device)
    benchmark(_erase_sweep, paper_device, bias, q0, "per-lane")


def test_erase_sweep_vector_speed(benchmark, sim_session, paper_device):
    """Absolute wall time of the vector-state erase sweep."""
    bias = sim_session.context().bias("erase", vgs_v=-15.0)
    q0 = _programmed_charge(sim_session, paper_device)
    benchmark(_erase_sweep, paper_device, bias, q0, "vector")
