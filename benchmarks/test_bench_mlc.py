"""System benchmark: multi-level cell page programming and readout.

Workload: a 64-cell page programmed to a four-level Gray-coded pattern
(2 bits/cell) with per-level ISPP verify, then read back through three
references. Extends the paper's single-bit cell to the density the
flash market actually ships.
"""

import numpy as np

from repro.memory import (
    MlcLevels,
    fresh_cells,
    level_to_bits,
    program_mlc_page,
    read_mlc_page,
)


def test_mlc_page_program_and_read(benchmark, cell_kernel):
    levels = MlcLevels.from_kernel(cell_kernel)
    targets = [i % 4 for i in range(64)]
    rng = np.random.default_rng(11)

    def setup():
        cells = fresh_cells(
            cell_kernel, 64, process_sigma_v=0.05, rng=rng
        )
        return (cells,), {}

    def program_and_read(cells):
        program_mlc_page(cells, levels, targets, rng=rng)
        return cells, read_mlc_page(cells, levels)

    cells, (msb, lsb) = benchmark.pedantic(
        program_and_read, setup=setup, rounds=3, iterations=1
    )
    for i, level in enumerate(targets):
        assert (int(msb[i]), int(lsb[i])) == level_to_bits(level)
