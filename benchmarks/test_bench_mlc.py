"""System benchmark: multi-level cell page programming and readout.

Workload: a 64-cell page programmed to a four-level Gray-coded pattern
(2 bits/cell) with per-level ISPP verify, then read back through three
references. Extends the paper's single-bit cell to the density the
flash market actually ships.

``test_mlc_staircase_speedup`` gates the vectorized staircase:
:func:`~repro.memory.mlc.program_mlc_page_batch` over a wide
``(pages, cells)`` matrix against its bit-exact per-cell
``scalar_reference`` twin on the same RNG stream, >= 5x.
"""

import numpy as np

from conftest import best_of, record_speedup

from repro.memory import (
    MlcLevels,
    fresh_cells,
    level_to_bits,
    program_mlc_page,
    program_mlc_page_batch,
    program_mlc_page_scalar_reference,
    read_mlc_page,
    read_mlc_page_batch,
)

#: Wide-page staircase workload of the gated comparison.
N_PAGES = 2
CELLS_PER_PAGE = 768

SPEEDUP_GATE = 5.0


def test_mlc_page_program_and_read(benchmark, cell_kernel):
    levels = MlcLevels.from_kernel(cell_kernel)
    targets = [i % 4 for i in range(64)]
    rng = np.random.default_rng(11)

    def setup():
        cells = fresh_cells(
            cell_kernel, 64, process_sigma_v=0.05, rng=rng
        )
        return (cells,), {}

    def program_and_read(cells):
        program_mlc_page(cells, levels, targets, rng=rng)
        return cells, read_mlc_page(cells, levels)

    cells, (msb, lsb) = benchmark.pedantic(
        program_and_read, setup=setup, rounds=3, iterations=1
    )
    for i, level in enumerate(targets):
        assert (int(msb[i]), int(lsb[i])) == level_to_bits(level)


def _staircase(cell_kernel, program):
    """Run one MLC staircase pass over the wide matrix in one mode."""
    levels = MlcLevels.from_kernel(cell_kernel)
    targets = np.random.default_rng(13).integers(
        0, 4, size=(N_PAGES, CELLS_PER_PAGE)
    )
    vt0 = np.full(targets.shape, cell_kernel.erased_vt_v)
    final_vt, pulses = program(
        vt0, levels, targets, rng=np.random.default_rng(37)
    )
    return levels, targets, final_vt, pulses


def test_mlc_staircase_speedup(cell_kernel):
    """The batched MLC staircase beats its per-cell twin >= 5x."""
    levels, targets, vt_batch, pulses_batch = _staircase(
        cell_kernel, program_mlc_page_batch
    )
    _, _, vt_scalar, pulses_scalar = _staircase(
        cell_kernel, program_mlc_page_scalar_reference
    )

    np.testing.assert_array_equal(vt_batch, vt_scalar)
    np.testing.assert_array_equal(pulses_batch, pulses_scalar)
    msb, lsb = read_mlc_page_batch(vt_batch, levels)
    for level in range(4):
        want_msb, want_lsb = level_to_bits(level)
        mask = targets == level
        assert (msb[mask] == want_msb).all()
        assert (lsb[mask] == want_lsb).all()

    t_scalar = best_of(
        lambda: _staircase(cell_kernel, program_mlc_page_scalar_reference),
        repeats=2,
    )
    t_batch = best_of(
        lambda: _staircase(cell_kernel, program_mlc_page_batch)
    )
    speedup = t_scalar / t_batch
    record_speedup(
        "mlc_staircase",
        speedup,
        t_scalar,
        t_batch,
        gate=SPEEDUP_GATE,
        detail=(
            f"four-level staircase over {N_PAGES} pages x "
            f"{CELLS_PER_PAGE} cells, vectorized ISPP passes vs the "
            "per-cell reference loop"
        ),
    )
    assert speedup >= SPEEDUP_GATE, (
        f"batched MLC staircase only {speedup:.1f}x faster than the "
        f"scalar reference ({t_scalar * 1e3:.0f} ms vs "
        f"{t_batch * 1e3:.1f} ms)"
    )
