"""Benchmark: batch engine vs the per-cell looped path.

The acceptance workload of PR 1: a 1000-point program-transient sweep
(the tunneling state -- V_FG, Jin, Jout, net current -- at 1000 stored
charges along the paper's programming transient) evaluated

* the seed way: one scalar ``tunneling_state`` call per point, and
* the engine way: one vectorized ``tunneling_states`` batch.

``test_engine_speedup_and_accuracy`` asserts the batch path is at least
5x faster while matching the looped results to 1e-9 relative tolerance;
the two ``benchmark`` tests put both paths in the pytest-benchmark
table. A third pair does the same for the Figure-6-style family sweep.
"""

from __future__ import annotations

import numpy as np

from conftest import best_of, record_speedup

from repro.device import PROGRAM_BIAS
from repro.engine import BatchSpec, clear_caches, fn_batch, tunneling_states

N_POINTS = 1000


def _transient_charges(device, n_points: int = N_POINTS) -> np.ndarray:
    """Charge samples spanning a full programming transient."""
    from repro.device import simulate_transient

    result = simulate_transient(
        device, PROGRAM_BIAS, duration_s=1e-3, n_samples=64
    )
    return np.linspace(0.0, result.final_charge_c, n_points)


def _looped_states(device, charges):
    """The seed's per-cell path: one scalar call per charge point."""
    states = [
        device.tunneling_state(PROGRAM_BIAS, float(q)) for q in charges
    ]
    return (
        np.array([s.vfg_v for s in states]),
        np.array([s.jin_a_m2 for s in states]),
        np.array([s.jout_a_m2 for s in states]),
        np.array([s.net_current_a for s in states]),
    )


def test_engine_speedup_and_accuracy(paper_device):
    """Batch path >= 5x faster than the loop, matching to 1e-9 rtol."""
    charges = _transient_charges(paper_device)
    clear_caches()

    vfg, jin, jout, net = _looped_states(paper_device, charges)
    batch = tunneling_states(paper_device, PROGRAM_BIAS, charges)

    for ref, got in (
        (vfg, batch.vfg_v),
        (jin, batch.jin_a_m2),
        (jout, batch.jout_a_m2),
        (net, batch.net_current_a),
    ):
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=0.0)

    # Best-of-N guards the ratio against scheduler noise on shared CI
    # runners; the measured margin (~three orders of magnitude over the
    # 5x bar) leaves the assertion far from the flake zone, and the
    # microsecond-scale batch path gets extra repeats to find a quiet
    # window.
    t_loop = best_of(lambda: _looped_states(paper_device, charges), repeats=5)
    t_batch = best_of(
        lambda: tunneling_states(paper_device, PROGRAM_BIAS, charges),
        repeats=15,
    )
    speedup = t_loop / t_batch
    record_speedup(
        "engine_tunneling_states",
        speedup,
        t_loop,
        t_batch,
        gate=5.0,
        detail=f"{N_POINTS}-point program-transient state sweep",
    )
    assert speedup >= 5.0, (
        f"batch engine only {speedup:.1f}x faster than the looped path "
        f"({t_loop * 1e3:.2f} ms vs {t_batch * 1e3:.2f} ms for "
        f"{N_POINTS} points)"
    )


def test_transient_sweep_loop_speed(benchmark, paper_device):
    charges = _transient_charges(paper_device)
    benchmark(_looped_states, paper_device, charges)


def test_transient_sweep_batch_speed(benchmark, paper_device):
    charges = _transient_charges(paper_device)
    benchmark(tunneling_states, paper_device, PROGRAM_BIAS, charges)


def _looped_family_sweep(vgs, gcrs):
    """Figure-6 family the seed way: scalar eq. (3) + (7) per point."""
    from repro.electrostatics import floating_gate_voltage_simple
    from repro.materials.graphene import GRAPHENE_WORK_FUNCTION_EV
    from repro.materials.oxides import SIO2
    from repro.tunneling import FowlerNordheimModel, TunnelBarrier
    from repro.units import nm_to_m

    barrier = TunnelBarrier(
        barrier_height_ev=GRAPHENE_WORK_FUNCTION_EV - SIO2.electron_affinity_ev,
        thickness_m=nm_to_m(5.0),
        mass_ratio=SIO2.tunneling_mass_ratio,
    )
    model = FowlerNordheimModel(barrier)
    return np.array(
        [
            [
                abs(
                    model.current_density_from_voltage(
                        floating_gate_voltage_simple(g, float(v))
                    )
                )
                for v in vgs
            ]
            for g in gcrs
        ]
    )


def _batched_family_sweep(vgs, gcrs):
    spec = BatchSpec.family_grid(vgs, gcrs=gcrs, tunnel_oxides_nm=(5.0,))
    return fn_batch(spec).j_magnitude_a_m2


def test_family_sweep_matches_loop():
    vgs = np.linspace(8.0, 17.0, 250)
    gcrs = (0.4, 0.5, 0.6, 0.7)
    np.testing.assert_allclose(
        _batched_family_sweep(vgs, gcrs),
        _looped_family_sweep(vgs, gcrs),
        rtol=1e-9,
        atol=0.0,
    )


def test_family_sweep_loop_speed(benchmark):
    vgs = np.linspace(8.0, 17.0, 250)
    benchmark(_looped_family_sweep, vgs, (0.4, 0.5, 0.6, 0.7))


def test_family_sweep_batch_speed(benchmark):
    vgs = np.linspace(8.0, 17.0, 250)
    benchmark(_batched_family_sweep, vgs, (0.4, 0.5, 0.6, 0.7))
