"""Benchmark: regenerate paper Figure 6 (program J_FN vs V_GS, 4 GCRs).

Workload: eqs. (3) + (7) swept over VGS = 8-17 V for GCR in
{40%, 50%, 60%, 70%} at X_TO = 5 nm.
"""

from conftest import assert_reproduced

from repro.experiments import run_experiment


def test_fig6_reproduction(benchmark):
    result = benchmark(run_experiment, "fig6")
    assert_reproduced(result)
    assert len(result.series) == 4
