"""System benchmark: FTL random-write throughput and backend speedup.

Workload: a page-mapped FTL churned with random host overwrites until
garbage collection cycles blocks. ``test_ftl_backend_speedup`` runs the
identical workload over the matrix-backed array in both backend modes
(vectorized page kernels vs the per-cell ``scalar_reference`` loops on
the same RNG stream), pins write amplification, wear and every live
page bit-exactly, and gates the batch path at >= 5x on wide pages.
"""

import numpy as np

from conftest import best_of, record_speedup

from repro.memory import (
    ArrayConfig,
    PageMappedFtl,
    WorkloadSpec,
    build_array,
    build_vector_array,
    build_workload,
)

#: Wide-page GC workload of the gated comparison.
FTL_CONFIG = ArrayConfig(
    n_blocks=4, wordlines_per_block=4, bitlines=2048
)
N_REQUESTS = 24

SPEEDUP_GATE = 5.0


def test_ftl_random_write_throughput(benchmark, sim_session, cell_kernel):
    def setup():
        array = build_array(
            cell_kernel,
            ArrayConfig(n_blocks=4, wordlines_per_block=8, bitlines=64),
            seed=23,
        )
        ftl = PageMappedFtl(array, overprovision_blocks=1)
        requests = list(
            sim_session.workload(
                WorkloadSpec(
                    kind="uniform",
                    n_requests=48,
                    capacity_pages=ftl.logical_capacity_pages,
                    page_bits=64,
                )
            )
        )
        return (ftl, requests), {}

    def churn(ftl, requests):
        for request in requests:
            ftl.write(request.logical_page, request.bits)
        return ftl

    ftl = benchmark.pedantic(churn, setup=setup, rounds=3, iterations=1)
    assert ftl.stats.write_amplification >= 1.0


def _ftl_churn(cell_kernel, scalar_reference):
    """The gated workload: GC-heavy overwrites in one backend mode."""
    ftl = PageMappedFtl(
        build_vector_array(
            cell_kernel,
            FTL_CONFIG,
            seed=23,
            scalar_reference=scalar_reference,
        ),
        overprovision_blocks=1,
    )
    requests = build_workload(
        WorkloadSpec(
            kind="uniform",
            n_requests=N_REQUESTS,
            capacity_pages=ftl.logical_capacity_pages,
            page_bits=FTL_CONFIG.bitlines,
            seed=19,
        )
    )
    written = {}
    for request in requests:
        ftl.write(request.logical_page, request.bits)
        written[request.logical_page] = request.bits
    return ftl, written


def test_ftl_backend_speedup(cell_kernel):
    """FTL over the matrix backend beats its per-cell twin >= 5x."""
    ftl_batch, written = _ftl_churn(cell_kernel, False)
    ftl_scalar, _ = _ftl_churn(cell_kernel, True)

    assert ftl_batch.stats.gc_invocations > 0
    assert (
        ftl_batch.stats.write_amplification
        == ftl_scalar.stats.write_amplification
    )
    assert ftl_batch.wear_spread() == ftl_scalar.wear_spread()
    np.testing.assert_array_equal(
        ftl_batch.array.state.vt_v, ftl_scalar.array.state.vt_v
    )
    for lpage, bits in sorted(written.items()):
        got = ftl_batch.read(lpage)
        np.testing.assert_array_equal(got, bits)
        np.testing.assert_array_equal(got, ftl_scalar.read(lpage))

    t_scalar = best_of(lambda: _ftl_churn(cell_kernel, True), repeats=2)
    t_batch = best_of(lambda: _ftl_churn(cell_kernel, False))
    speedup = t_scalar / t_batch
    record_speedup(
        "ftl_backend_churn",
        speedup,
        t_scalar,
        t_batch,
        gate=SPEEDUP_GATE,
        detail=(
            f"{N_REQUESTS} GC-heavy host writes over "
            f"{FTL_CONFIG.n_blocks} blocks x "
            f"{FTL_CONFIG.wordlines_per_block} pages x "
            f"{FTL_CONFIG.bitlines} bit lines, batch vs scalar backend"
        ),
    )
    assert speedup >= SPEEDUP_GATE, (
        f"FTL over the batch backend only {speedup:.1f}x faster than "
        f"the scalar reference ({t_scalar * 1e3:.0f} ms vs "
        f"{t_batch * 1e3:.1f} ms)"
    )
