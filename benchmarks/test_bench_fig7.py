"""Benchmark: regenerate paper Figure 7 (program J_FN vs V_GS, 5 X_TO).

Workload: eqs. (3) + (7) swept over VGS = 10-17 V for X_TO in
{4..8} nm at GCR = 60%, including the sub-7 nm knee check.
"""

from conftest import assert_reproduced

from repro.experiments import run_experiment


def test_fig7_reproduction(benchmark):
    result = benchmark(run_experiment, "fig7")
    assert_reproduced(result)
    assert len(result.series) == 5
