"""Benchmark: regenerate paper Figure 9 (erase J_FN vs V_GS, 5 X_TO).

Workload: the erase-polarity oxide-thickness family (VGS = -10 to
-17 V, X_TO in {4..8} nm, GCR = 60%).
"""

from conftest import assert_reproduced

from repro.experiments import run_experiment


def test_fig9_reproduction(benchmark):
    result = benchmark(run_experiment, "fig9")
    assert_reproduced(result)
