"""Measure the relative experiment costs behind the registry hints.

Runs every registered experiment with default parameters on a fresh
session, times the best of ``--repeats`` runs, and prints the cost
table normalized so the *median of the cheap vectorized figure sweeps*
(fig2/fig4/fig6-fig9) is 1.0 -- the convention of
``repro.experiments.registry._COST_HINTS``. Paste the rounded output
into the registry whenever a performance PR shifts the balance::

    PYTHONPATH=src python benchmarks/measure_costs.py

The numbers are machine-relative, not absolute: only the ratios feed
the ``by-cost`` shard packer.
"""

from __future__ import annotations

import argparse
import statistics
import time

from repro.api import SimulationSession
from repro.experiments.registry import available_experiments

#: Experiments whose median defines cost 1.0 (cheap vectorized sweeps).
BASELINE_IDS = ("fig2", "fig4", "fig6", "fig7", "fig8", "fig9")


def measure(repeats: int = 3) -> "dict[str, float]":
    """Best-of-N wall time per experiment, on one warmed session."""
    session = SimulationSession(seed=0)
    timings: "dict[str, float]" = {}
    for experiment_id in available_experiments():
        session.run(experiment_id)  # warm caches / imports
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            session.run(experiment_id)
            best = min(best, time.perf_counter() - start)
        timings[experiment_id] = best
    return timings


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    timings = measure(args.repeats)
    baseline = statistics.median(
        timings[i] for i in BASELINE_IDS if i in timings
    )
    print(f"baseline (median cheap figure sweep): {baseline * 1e3:.2f} ms\n")
    print(f"{'experiment':<16} {'wall [ms]':>10} {'relative':>9}")
    for experiment_id, wall in sorted(
        timings.items(), key=lambda kv: -kv[1]
    ):
        print(
            f"{experiment_id:<16} {wall * 1e3:>10.2f} "
            f"{wall / baseline:>9.1f}"
        )


if __name__ == "__main__":
    main()
