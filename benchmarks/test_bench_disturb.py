"""System benchmark: read-disturb accumulation (DESIGN.md sys-nand
companion).

Workload: hammer one page of a disturb-enabled block with reads and
measure the threshold drift of the unselected pages; asserts the
physics-calibrated budget (events to 0.1 V of drift) is consistent
with the per-event model.
"""

import numpy as np

from repro.device import FloatingGateTransistor
from repro.memory import ArrayConfig, DisturbModel, build_array


def test_read_disturb_accumulation(benchmark, cell_kernel):
    device = FloatingGateTransistor()
    disturb = DisturbModel(
        device, pass_voltage_v=8.0, event_duration_s=1e-3
    )

    def setup():
        array = build_array(
            cell_kernel,
            ArrayConfig(n_blocks=1, wordlines_per_block=4, bitlines=32),
            disturb=disturb,
            seed=29,
        )
        return (array,), {}

    def hammer(array):
        before = array.page_thresholds(0, 3).copy()
        for _ in range(50):
            array.read_page(0, 0)
        after = array.page_thresholds(0, 3)
        return float(np.mean(after - before))

    mean_drift = benchmark.pedantic(hammer, setup=setup, rounds=3, iterations=1)
    # Read disturb is scaled to 1% of the program-disturb drift.
    expected = 50 * 0.01 * disturb.drift_per_event_v()
    assert mean_drift >= 0.0
    assert mean_drift <= expected * 1.5 + 1e-12
