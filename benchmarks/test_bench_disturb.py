"""System benchmark: read-disturb accumulation (DESIGN.md sys-nand
companion).

Workload: hammer one page of a disturb-enabled block with reads and
measure the threshold drift of the unselected pages; asserts the
physics-calibrated budget (events to 0.1 V of drift) is consistent
with the per-event model.

Two speedup gates ride on the batched kernels:

* ``test_read_disturb_batch_speedup`` -- boolean-indexed whole-block
  disturb accumulation vs the per-cell reference loop, >= 5x.
* ``test_rtn_ensemble_speedup`` -- the vectorized RTN trajectory
  ensemble on derived independent streams vs the per-lane per-step
  loop, >= 5x, with every lane pinned bit-exactly.
"""

import numpy as np

from conftest import best_of, record_speedup

from repro.device import FloatingGateTransistor
from repro.memory import (
    ArrayConfig,
    DisturbModel,
    RtnTrap,
    apply_read_disturb_batch,
    apply_read_disturb_scalar_reference,
    build_array,
)

#: Wide block of the gated disturb comparison.
N_WORDLINES = 32
N_BITLINES = 2048
N_READS = 40

#: RTN ensemble of the gated trajectory comparison -- long lanes so the
#: per-lane stream derivation (paid identically by both paths) is
#: amortised and the per-step work dominates.
N_TRAJECTORIES = 256
N_STEPS = 8000

SPEEDUP_GATE = 5.0


def test_read_disturb_accumulation(benchmark, cell_kernel):
    device = FloatingGateTransistor()
    disturb = DisturbModel(
        device, pass_voltage_v=8.0, event_duration_s=1e-3
    )

    def setup():
        array = build_array(
            cell_kernel,
            ArrayConfig(n_blocks=1, wordlines_per_block=4, bitlines=32),
            disturb=disturb,
            seed=29,
        )
        return (array,), {}

    def hammer(array):
        before = array.page_thresholds(0, 3).copy()
        for _ in range(50):
            array.read_page(0, 0)
        after = array.page_thresholds(0, 3)
        return float(np.mean(after - before))

    mean_drift = benchmark.pedantic(hammer, setup=setup, rounds=3, iterations=1)
    # Read disturb is scaled to 1% of the program-disturb drift.
    expected = 50 * 0.01 * disturb.drift_per_event_v()
    assert mean_drift >= 0.0
    assert mean_drift <= expected * 1.5 + 1e-12


def _hammer_block(accumulate, drift_v):
    """Accumulate N_READS read disturbs over one wide block matrix."""
    vt = np.zeros((N_WORDLINES, N_BITLINES))
    for _ in range(N_READS):
        accumulate(vt, 0, drift_v)
    return vt


def test_read_disturb_batch_speedup():
    """Whole-block disturb accumulation beats the per-cell loop >= 5x."""
    device = FloatingGateTransistor()
    disturb = DisturbModel(
        device, pass_voltage_v=8.0, event_duration_s=1e-3
    )
    drift_v = disturb.drift_per_event_v()

    vt_batch = _hammer_block(apply_read_disturb_batch, drift_v)
    vt_scalar = _hammer_block(
        apply_read_disturb_scalar_reference, drift_v
    )
    np.testing.assert_array_equal(vt_batch, vt_scalar)
    assert (vt_batch[0] == 0.0).all()
    assert (vt_batch[1:] > 0.0).all()

    t_scalar = best_of(
        lambda: _hammer_block(
            apply_read_disturb_scalar_reference, drift_v
        ),
        repeats=2,
    )
    t_batch = best_of(
        lambda: _hammer_block(apply_read_disturb_batch, drift_v)
    )
    speedup = t_scalar / t_batch
    record_speedup(
        "read_disturb_accumulation",
        speedup,
        t_scalar,
        t_batch,
        gate=SPEEDUP_GATE,
        detail=(
            f"{N_READS} reads over a {N_WORDLINES} x {N_BITLINES} "
            "block, boolean-indexed accumulation vs per-cell loop"
        ),
    )
    assert speedup >= SPEEDUP_GATE, (
        f"batched read-disturb accumulation only {speedup:.1f}x faster "
        f"than the scalar reference ({t_scalar * 1e3:.0f} ms vs "
        f"{t_batch * 1e3:.1f} ms)"
    )


def _trap():
    return RtnTrap(
        amplitude_v=0.05, capture_time_s=1e-3, emission_time_s=2e-3
    )


def _ensemble_batch(trap):
    dt_s = trap.capture_time_s / 10.0
    return trap.sample_trajectory_batch(
        N_STEPS * dt_s, dt_s, N_TRAJECTORIES, seed=41
    )


def _ensemble_scalar(trap, n_trajectories=N_TRAJECTORIES):
    dt_s = trap.capture_time_s / 10.0
    return np.array(
        [
            trap.sample_trajectory_scalar_reference(
                N_STEPS * dt_s, dt_s, lane, seed=41
            )
            for lane in range(n_trajectories)
        ]
    )


def test_rtn_ensemble_speedup():
    """The vectorized RTN ensemble beats the per-lane loop >= 5x."""
    trap = _trap()
    batch = _ensemble_batch(trap)
    scalar = _ensemble_scalar(trap)
    np.testing.assert_array_equal(batch, scalar)
    occupancy = (batch > 0.0).mean()
    assert abs(occupancy - trap.occupancy) < 0.1

    t_scalar = best_of(lambda: _ensemble_scalar(trap), repeats=2)
    t_batch = best_of(lambda: _ensemble_batch(trap))
    speedup = t_scalar / t_batch
    record_speedup(
        "rtn_trajectory_ensemble",
        speedup,
        t_scalar,
        t_batch,
        gate=SPEEDUP_GATE,
        detail=(
            f"{N_TRAJECTORIES} trajectories x {N_STEPS} steps on "
            "derived independent streams, vectorized Markov recurrence "
            "vs per-lane loop"
        ),
    )
    assert speedup >= SPEEDUP_GATE, (
        f"batched RTN ensemble only {speedup:.1f}x faster than the "
        f"per-lane loop ({t_scalar * 1e3:.0f} ms vs "
        f"{t_batch * 1e3:.1f} ms)"
    )
