"""Benchmark: Landauer conductance staircase of the GNR channel.

Workload: a 26-point gate sweep of the band-structure-derived ballistic
conductance at 30 K; verifies the quantised plateaus (G = M * G0) that
tie the transport model back to the tight-binding substrate.
"""

import numpy as np
import pytest

from repro.device import LandauerChannel
from repro.materials import GrapheneNanoribbon


def test_conductance_staircase(benchmark):
    channel = LandauerChannel(
        ribbon=GrapheneNanoribbon("armchair", 13),
        temperature_k=30.0,
        gate_efficiency=1.0,
    )
    sweep = np.linspace(0.0, 2.5, 26)

    staircase = benchmark(channel.conductance_staircase, sweep)

    # Quantisation: away from subband onsets the conductance equals the
    # integer mode count to within thermal rounding.
    onsets = np.array(channel.subband_onsets_ev())
    for v, g in zip(sweep, staircase):
        if np.min(np.abs(onsets - v)) < 0.1:
            continue  # skip points on a step edge
        modes = channel.mode_count(float(v))
        assert g == pytest.approx(modes, abs=0.2)
