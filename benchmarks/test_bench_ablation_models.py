"""Ablation benchmark: FN closed form vs WKB vs transfer matrix.

Times the three tunneling models on the same barrier/bias sweep and
verifies they agree within a decade (DESIGN.md abl-wkb). The closed
form should be orders of magnitude faster than the numeric references
-- the justification for the paper's modelling choice.
"""

import numpy as np
from conftest import assert_reproduced

from repro.experiments.ablations import run_model_comparison
from repro.tunneling import FowlerNordheimModel, TsuEsakiModel, TunnelBarrier
from repro.units import nm_to_m

BARRIER = TunnelBarrier(3.61, nm_to_m(5.0), 0.42)
VOLTAGES = np.linspace(6.0, 10.5, 10)


def test_ablation_model_comparison(benchmark):
    result = benchmark.pedantic(
        run_model_comparison, kwargs={"n_points": 8}, rounds=3, iterations=1
    )
    assert_reproduced(result)


def test_fn_closed_form_speed(benchmark):
    model = FowlerNordheimModel(BARRIER)

    def sweep():
        return [model.current_density_from_voltage(float(v)) for v in VOLTAGES]

    values = benchmark(sweep)
    assert all(v > 0.0 for v in values)


def test_tsu_esaki_transfer_matrix_speed(benchmark):
    model = TsuEsakiModel(BARRIER, n_energy=60, n_slabs=30)

    def sweep():
        return [
            model.current_density_from_voltage(float(v))
            for v in VOLTAGES[:3]
        ]

    values = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert all(v > 0.0 for v in values)
