"""System benchmark: NAND array program/read throughput (DESIGN.md sys-nand).

Workload: a 2-block, 8-page, 64-bit-line array of device-calibrated
cells; one benchmark programs pages with ISPP + verify, the other reads
them back through the sense amplifier.

``test_array_backend_speedup`` gates the array-state backend: the same
program/read/erase sequence runs once through the vectorized page
kernels of :class:`~repro.memory.array.VectorMemoryArray` and once
through their per-cell ``scalar_reference`` loops on the identical RNG
stream, pins the two end states bit-exactly, and asserts the batch
path is >= 5x faster on a wide (2048-bit-line) page.
"""

import numpy as np

from conftest import best_of, record_speedup

from repro.memory import ArrayConfig, build_array, build_vector_array

#: Wide-page workload of the gated comparison: page width is what the
#: per-cell loops pay for and the matrix kernels amortise.
WIDE_CONFIG = ArrayConfig(
    n_blocks=1, wordlines_per_block=4, bitlines=2048
)

SPEEDUP_GATE = 5.0


def _fresh_array(cell_kernel, seed=21):
    return build_array(
        cell_kernel,
        ArrayConfig(n_blocks=2, wordlines_per_block=8, bitlines=64),
        seed=seed,
    )


def test_page_program_throughput(benchmark, cell_kernel):
    rng = np.random.default_rng(5)

    def setup():
        array = _fresh_array(cell_kernel)
        bits = rng.integers(0, 2, 64).astype(np.uint8)
        return (array, bits), {}

    def program(array, bits):
        for wl in range(8):
            array.program_page(0, wl, bits)
        return array

    array = benchmark.pedantic(program, setup=setup, rounds=3, iterations=1)
    assert len(array.blocks[0].programmed_pages) == 8


def test_page_read_throughput(benchmark, cell_kernel):
    rng = np.random.default_rng(6)
    array = _fresh_array(cell_kernel)
    patterns = {}
    for wl in range(8):
        bits = rng.integers(0, 2, 64).astype(np.uint8)
        array.program_page(0, wl, bits)
        patterns[wl] = bits

    def read_block():
        return [array.read_page(0, wl) for wl in range(8)]

    pages = benchmark(read_block)
    for wl, got in enumerate(pages):
        assert (got == patterns[wl]).all()


def _array_sequence(cell_kernel, scalar_reference):
    """Program/read/erase/re-program one wide block in one mode."""
    array = build_vector_array(
        cell_kernel,
        WIDE_CONFIG,
        seed=21,
        scalar_reference=scalar_reference,
    )
    patterns = np.random.default_rng(5).integers(
        0, 2, size=(WIDE_CONFIG.wordlines_per_block, WIDE_CONFIG.bitlines)
    )
    reads = []
    for wl in range(WIDE_CONFIG.wordlines_per_block):
        array.program_page(0, wl, patterns[wl])
        reads.append(array.read_page(0, wl))
    array.erase_block(0)
    array.program_page(0, 0, patterns[0])
    return array, np.array(reads), patterns


def test_array_backend_speedup(cell_kernel):
    """The matrix backend beats its per-cell twin >= 5x, bit-exactly."""
    array_batch, reads_batch, patterns = _array_sequence(cell_kernel, False)
    array_scalar, reads_scalar, _ = _array_sequence(cell_kernel, True)

    assert (reads_batch == patterns).all()
    np.testing.assert_array_equal(reads_batch, reads_scalar)
    np.testing.assert_array_equal(
        array_batch.state.vt_v, array_scalar.state.vt_v
    )
    np.testing.assert_array_equal(
        array_batch.state.programmed, array_scalar.state.programmed
    )
    assert array_batch.block_erase_counts() == (
        array_scalar.block_erase_counts()
    )

    t_scalar = best_of(lambda: _array_sequence(cell_kernel, True), repeats=2)
    t_batch = best_of(lambda: _array_sequence(cell_kernel, False))
    speedup = t_scalar / t_batch
    record_speedup(
        "nand_array_backend",
        speedup,
        t_scalar,
        t_batch,
        gate=SPEEDUP_GATE,
        detail=(
            f"program+read+erase of {WIDE_CONFIG.wordlines_per_block} "
            f"pages x {WIDE_CONFIG.bitlines} bit lines, vectorized page "
            "kernels vs per-cell reference loops"
        ),
    )
    assert speedup >= SPEEDUP_GATE, (
        f"array backend only {speedup:.1f}x faster than its scalar "
        f"reference ({t_scalar * 1e3:.0f} ms vs {t_batch * 1e3:.1f} ms)"
    )
