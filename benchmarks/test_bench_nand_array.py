"""System benchmark: NAND array program/read throughput (DESIGN.md sys-nand).

Workload: a 2-block, 8-page, 64-bit-line array of device-calibrated
cells; one benchmark programs pages with ISPP + verify, the other reads
them back through the sense amplifier.
"""

import numpy as np

from repro.memory import ArrayConfig, build_array


def _fresh_array(cell_kernel, seed=21):
    return build_array(
        cell_kernel,
        ArrayConfig(n_blocks=2, wordlines_per_block=8, bitlines=64),
        seed=seed,
    )


def test_page_program_throughput(benchmark, cell_kernel):
    rng = np.random.default_rng(5)

    def setup():
        array = _fresh_array(cell_kernel)
        bits = rng.integers(0, 2, 64).astype(np.uint8)
        return (array, bits), {}

    def program(array, bits):
        for wl in range(8):
            array.program_page(0, wl, bits)
        return array

    array = benchmark.pedantic(program, setup=setup, rounds=3, iterations=1)
    assert len(array.blocks[0].programmed_pages) == 8


def test_page_read_throughput(benchmark, cell_kernel):
    rng = np.random.default_rng(6)
    array = _fresh_array(cell_kernel)
    patterns = {}
    for wl in range(8):
        bits = rng.integers(0, 2, 64).astype(np.uint8)
        array.program_page(0, wl, bits)
        patterns[wl] = bits

    def read_block():
        return [array.read_page(0, wl) for wl in range(8)]

    pages = benchmark(read_block)
    for wl, got in enumerate(pages):
        assert (got == patterns[wl]).all()


def test_ftl_random_write_throughput(benchmark, sim_session, cell_kernel):
    from repro.memory import PageMappedFtl, WorkloadSpec

    def setup():
        array = build_array(
            cell_kernel,
            ArrayConfig(n_blocks=4, wordlines_per_block=8, bitlines=64),
            seed=23,
        )
        ftl = PageMappedFtl(array, overprovision_blocks=1)
        requests = list(
            sim_session.workload(
                WorkloadSpec(
                    kind="uniform",
                    n_requests=48,
                    capacity_pages=ftl.logical_capacity_pages,
                    page_bits=64,
                )
            )
        )
        return (ftl, requests), {}

    def churn(ftl, requests):
        for request in requests:
            ftl.write(request.logical_page, request.bits)
        return ftl

    ftl = benchmark.pedantic(churn, setup=setup, rounds=3, iterations=1)
    assert ftl.stats.write_amplification >= 1.0
