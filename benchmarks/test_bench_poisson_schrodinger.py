"""Benchmark: batched Poisson-Schrodinger channel-well bias sweep.

The channel quantum well behind the Tsu-Esaki emitter model is solved
self-consistently (Schrodinger -> Fermi bisection -> Poisson -> mix)
per bias point. The seed path pays, per lane and per damped iteration,
one LAPACK tridiagonal eigensolve, an 80-step scalar Fermi bisection
and a pure-Python Thomas solve. The batched backend advances the whole
bias sweep together: a cold stacked eigensolve on the first iteration,
machine-precision Rayleigh-quotient eigenlevel *tracking* (batched
block-tridiagonal inverse iterations) afterwards, one vectorized Fermi
bisection and one stacked-RHS banded Poisson solve per iteration, with
per-lane convergence masks retiring settled lanes.

``test_channel_well_sweep_speedup`` gates the backend at >= 5x over
the retained scalar loop on the 64-bias sweep while pinning agreement
at 1e-9; the ``benchmark`` tests put the absolute wall times of both
paths in the pytest-benchmark table (and BENCH_results.json).
"""

from __future__ import annotations

import numpy as np

from conftest import best_of, record_speedup

from repro.electrostatics import solve_channel_well
from repro.engine import channel_well_sweep

#: The 64-bias programming-window sweep of confining surface fields.
FIELDS = np.linspace(3e8, 9e8, 64)
SHEET_DENSITY = 5e16

SPEEDUP_GATE = 5.0

#: Smaller sweep for the absolute-wall-time benchmark rows (the scalar
#: path at 64 biases costs seconds per round).
FIELDS_SMALL = FIELDS[::8]


def _scalar_sweep(fields: np.ndarray):
    """The seed path: one full self-consistent solve per bias point."""
    return [solve_channel_well(float(f), SHEET_DENSITY) for f in fields]


def test_channel_well_sweep_speedup():
    """The batched sweep is >= 5x the scalar loop at 1e-9 agreement."""
    scalar = _scalar_sweep(FIELDS)
    batch = channel_well_sweep(FIELDS, SHEET_DENSITY)

    for i, lane in enumerate(scalar):
        assert int(batch.iterations[i]) == lane.iterations
        np.testing.assert_allclose(
            batch.subband_energies_ev[i],
            lane.subband_energies_ev,
            rtol=1e-9,
        )
        np.testing.assert_allclose(
            batch.subband_densities_m2[i],
            lane.subband_densities_m2,
            rtol=1e-9,
        )
        np.testing.assert_allclose(
            batch.potential_ev[i],
            lane.potential_ev,
            rtol=1e-9,
            atol=1e-12 * float(np.max(np.abs(lane.potential_ev))),
        )

    t_scalar = best_of(lambda: _scalar_sweep(FIELDS), repeats=2)
    t_batch = best_of(lambda: channel_well_sweep(FIELDS, SHEET_DENSITY))
    speedup = t_scalar / t_batch
    record_speedup(
        "poisson_schrodinger_channel_well_sweep",
        speedup,
        t_scalar,
        t_batch,
        gate=SPEEDUP_GATE,
        detail=(
            f"{FIELDS.size} bias lanes x 301 nodes, self-consistent to "
            "1e-5 eV, RQI-tracked batched eigensolves vs scalar loop"
        ),
    )
    assert speedup >= SPEEDUP_GATE, (
        f"batched channel-well sweep only {speedup:.1f}x faster than the "
        f"scalar loop ({t_scalar * 1e3:.0f} ms vs {t_batch * 1e3:.0f} ms "
        f"for {FIELDS.size} bias points)"
    )


def test_channel_well_scalar_reference_speed(benchmark):
    """Absolute wall time of the retained per-bias scalar solver."""
    benchmark.pedantic(
        _scalar_sweep, args=(FIELDS_SMALL,), rounds=2, iterations=1
    )


def test_channel_well_batch_speed(benchmark):
    """Absolute wall time of the batched sweep (same small sweep)."""
    benchmark.pedantic(
        channel_well_sweep,
        args=(FIELDS_SMALL, SHEET_DENSITY),
        rounds=2,
        iterations=1,
    )
