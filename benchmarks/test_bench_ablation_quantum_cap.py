"""Ablation benchmark: quantum-capacitance GCR correction vs layers.

Sweeps the MLGNR floating-gate layer count and quantifies how far the
effective coupling falls below the paper's geometric GCR = 0.6
(DESIGN.md abl-cq).
"""

from conftest import assert_reproduced

from repro.experiments.ablations import run_quantum_capacitance


def test_ablation_quantum_capacitance(benchmark):
    result = benchmark(run_quantum_capacitance, max_layers=10)
    assert_reproduced(result)
    effective = result.series[0].y
    # Monolayer penalty is visible; multilayer recovers toward 0.6.
    assert effective[0] < 0.6
    assert effective[-1] > effective[0]
